#!/usr/bin/env python
"""Multi-tenancy with conflicting memory requirements.

Reproduces the paper's §4.5 scenarios on one GPU:

1. *Intra-application swap* — a program whose three matrices exceed the
   device memory (the bare CUDA runtime fails at the third cudaMalloc)
   completes under the runtime because only the current kernel's working
   set must be resident.
2. *Inter-application swap* — two tenants whose aggregate footprint
   exceeds the device time-share it: when one tenant's launch cannot get
   memory, the other (sitting in a CPU phase) is swapped out to host.

Run:  python examples/multi_tenant_swapping.py
"""

from repro.sim import Environment
from repro.simcuda import (
    CudaDriver,
    CudaRuntimeAPI,
    CudaRuntimeError,
    FatBinary,
    GPUSpec,
    KernelDescriptor,
)
from repro.core import Frontend, NodeRuntime, RuntimeConfig

MIB = 1024**2

# A 1 GiB card makes the memory pressure easy to see.
GPU = GPUSpec(name="DemoGPU", sm_count=14, cores_per_sm=32, clock_ghz=1.15,
              memory_bytes=1024 * MIB)
MATRIX = 350 * MIB  # three matrices > usable device memory


def kernel(name, seconds=0.2):
    return KernelDescriptor(name=name, flops=seconds * GPU.effective_gflops * 1e9)


def part1_bare_cuda_fails(env, driver):
    """The same allocation sequence on the bare CUDA runtime: OOM."""
    api = CudaRuntimeAPI(driver, owner="bare")

    def app():
        yield from api.cuda_malloc(MATRIX)
        yield from api.cuda_malloc(MATRIX)
        try:
            yield from api.cuda_malloc(MATRIX)
        except CudaRuntimeError as exc:
            print(f"[bare CUDA]  third cudaMalloc fails as expected: {exc}")
        yield from api.cuda_thread_exit()

    proc = env.process(app())
    env.run(until=proc)


def oversized_tenant(env, runtime, name):
    """A_d, B_d, C_d of 350 MiB each on a ~1 GiB card (§4.5 example)."""
    fe = Frontend(env, runtime.listener, name=name)
    yield from fe.open()
    matmul = kernel(f"{name}.matmul")
    fb = FatBinary()
    handle = yield from fe.register_fat_binary(fb)
    yield from fe.register_function(handle, matmul)

    a = yield from fe.cuda_malloc(MATRIX)
    b = yield from fe.cuda_malloc(MATRIX)
    c = yield from fe.cuda_malloc(MATRIX)
    yield from fe.cuda_memcpy_h2d(a, MATRIX)
    yield from fe.launch_kernel(matmul, [a, b], read_only=[a])  # B = A*A
    yield from fe.launch_kernel(matmul, [b, c], read_only=[b])  # C = B*B
    yield from fe.cuda_memcpy_d2h(b, MATRIX)
    yield from fe.cuda_memcpy_d2h(c, MATRIX)
    for ptr in (a, b, c):
        yield from fe.cuda_free(ptr)
    yield from fe.cuda_thread_exit()
    print(f"[{env.now:7.3f}s] {name}: completed (footprint 3×350 MiB on a 1 GiB card)")


def phased_tenant(env, runtime, name):
    """A tenant alternating GPU kernels with CPU phases — an eligible
    inter-application swap victim while it thinks on the CPU."""
    fe = Frontend(env, runtime.listener, name=name)
    yield from fe.open()
    k = kernel(f"{name}.kernel")
    fb = FatBinary()
    handle = yield from fe.register_fat_binary(fb)
    yield from fe.register_function(handle, k)
    data = yield from fe.cuda_malloc(500 * MIB)
    yield from fe.cuda_memcpy_h2d(data, 500 * MIB)
    for _ in range(4):
        yield from fe.launch_kernel(k, [data])
        yield env.timeout(1.0)  # CPU phase
    yield from fe.cuda_memcpy_d2h(data, 500 * MIB)
    yield from fe.cuda_free(data)
    yield from fe.cuda_thread_exit()
    print(f"[{env.now:7.3f}s] {name}: completed")


def main():
    print("=== Part 1: bare CUDA runtime, one oversized application ===")
    env = Environment()
    driver = CudaDriver(env, [GPU])
    part1_bare_cuda_fails(env, driver)

    print("\n=== Part 2: the runtime's intra-application swap ===")
    env = Environment()
    runtime = NodeRuntime(env, CudaDriver(env, [GPU]),
                          RuntimeConfig(vgpus_per_device=1))
    env.process(runtime.start())
    env.process(oversized_tenant(env, runtime, "oversized"))
    env.run()
    print(f"intra-application swaps: {runtime.stats.swaps_intra}")

    print("\n=== Part 3: two tenants, inter-application swap ===")
    env = Environment()
    runtime = NodeRuntime(env, CudaDriver(env, [GPU]),
                          RuntimeConfig(vgpus_per_device=2))
    env.process(runtime.start())
    env.process(phased_tenant(env, runtime, "tenant-1"))
    env.process(phased_tenant(env, runtime, "tenant-2"))
    env.run()
    s = runtime.stats
    print(f"inter-application swaps: {s.swaps_inter}  "
          f"(bytes out {s.swap_bytes_out / MIB:.0f} MiB, "
          f"back in {s.swap_bytes_in / MIB:.0f} MiB)")


if __name__ == "__main__":
    main()
