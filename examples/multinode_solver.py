#!/usr/bin/env python
"""A multi-node (MPI-style) GPU application under the runtime.

A distributed iterative solver runs one rank per node, alternating GPU
kernels over a local shard with a cluster-wide all-reduce (the
bulk-synchronous structure of MPI+CUDA codes).  Each rank's GPU phases go
through its node's runtime daemon — so the solver coexists with local
single-node tenants on the same GPUs, and the strong-scaling curve shows
the all-reduce cost growing with rank count.

Run:  python examples/multinode_solver.py
"""

from repro.cluster.node import ComputeNode
from repro.core import RuntimeConfig
from repro.sim import Environment
from repro.simcuda import TESLA_C2050
from repro.workloads import make_job, workload
from repro.workloads.multinode import MultiNodeSpec, run_multinode_application

MIB = 1024**2

TOTAL_KERNEL_SECONDS = 12.0
ITERATIONS = 6


def run_at_scale(ranks, with_co_tenants=False):
    env = Environment()
    nodes = [
        ComputeNode(env, f"node{i}", [TESLA_C2050],
                    runtime_config=RuntimeConfig(vgpus_per_device=2))
        for i in range(ranks)
    ]
    for node in nodes:
        env.process(node.start())
    env.run(until=2.0)

    if with_co_tenants:
        for node in nodes:
            tenant = make_job(workload("BS-S"), name=f"tenant@{node.name}")
            env.process(tenant.execute(node, submitted_at=env.now))

    solver = MultiNodeSpec(
        name="jacobi",
        iterations=ITERATIONS,
        shard_bytes=max(1, 512 // ranks) * MIB,
        kernel_seconds=TOTAL_KERNEL_SECONDS / ITERATIONS / ranks,
        halo_bytes=32 * MIB,
        cpu_seconds=0.05,
    )
    p = env.process(run_multinode_application(env, solver, nodes))
    env.run(until=p)
    env.run()
    start, end = p.value
    return end - start


def main():
    print("strong scaling (fixed total GPU work, dedicated nodes):")
    t1 = run_at_scale(1)
    for ranks in (1, 2, 4, 8):
        t = run_at_scale(ranks)
        print(f"  {ranks} rank(s): {t:6.1f}s   speedup {t1 / t:4.2f}x")

    print("\nwith a Black-Scholes co-tenant sharing each node's GPU:")
    for ranks in (2, 4):
        alone = run_at_scale(ranks)
        shared = run_at_scale(ranks, with_co_tenants=True)
        print(
            f"  {ranks} ranks: dedicated {alone:5.1f}s | co-tenanted {shared:5.1f}s "
            f"(runtime time-shares the GPUs; lock-step survives)"
        )


if __name__ == "__main__":
    main()
