#!/usr/bin/env python
"""GPU failure, recovery, and dynamic hotplug.

An iterative solver runs on a two-GPU node; halfway through, its GPU
fails.  The runtime moves the context to the failed list, rebinds it to
the surviving device, replays the journaled kernels whose results lived
only in the dead GPU's memory, and the application finishes — it never
learns anything happened.  A third GPU is then hot-added and picks up
new work.

Run:  python examples/fault_tolerance.py
"""

from repro.core import Frontend, NodeRuntime, RuntimeConfig
from repro.core.fault import FailureInjector, HotplugEvent
from repro.sim import Environment
from repro.simcuda import (
    CudaDriver,
    FatBinary,
    KernelDescriptor,
    TESLA_C1060,
    TESLA_C2050,
)

MIB = 1024**2


def iterative_solver(env, runtime, name, iterations=8):
    fe = Frontend(env, runtime.listener, name=name)
    yield from fe.open()
    kernel = KernelDescriptor(
        name=f"{name}.step",
        flops=0.5 * TESLA_C2050.effective_gflops * 1e9,  # 0.5 s per step
    )
    fb = FatBinary()
    handle = yield from fe.register_fat_binary(fb)
    yield from fe.register_function(handle, kernel)

    state = yield from fe.cuda_malloc(128 * MIB)
    yield from fe.cuda_memcpy_h2d(state, 128 * MIB)
    for i in range(iterations):
        yield from fe.launch_kernel(kernel, [state])
        print(f"[{env.now:7.3f}s] {name}: iteration {i} complete")
        yield env.timeout(0.2)  # host-side convergence check
    yield from fe.cuda_memcpy_d2h(state, 128 * MIB)
    yield from fe.cuda_free(state)
    yield from fe.cuda_thread_exit()
    print(f"[{env.now:7.3f}s] {name}: converged — despite the GPU failure")


def main():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050, TESLA_C1060])
    runtime = NodeRuntime(
        env,
        driver,
        # Checkpoint automatically after kernels ≥ 0.4 s so the replay
        # after a failure stays short (§4.6).
        RuntimeConfig(vgpus_per_device=2, checkpoint_kernel_seconds=0.4),
    )
    env.process(runtime.start())

    env.process(iterative_solver(env, runtime, "solver"))

    injector = FailureInjector(
        runtime,
        [
            HotplugEvent(at_seconds=2.5, action="fail", device_index=0),
            HotplugEvent(at_seconds=5.0, action="add", spec=TESLA_C2050),
        ],
    )
    injector.start()

    def narrator():
        yield env.timeout(2.5)
        print(f"[{env.now:7.3f}s] !!! {driver.devices[0].name} FAILED")
        yield env.timeout(2.5)
        print(f"[{env.now:7.3f}s] +++ hot-adding a replacement GPU")

    env.process(narrator())
    env.run()

    s = runtime.stats
    print("\n--- recovery statistics ---")
    print(f"contexts recovered after failure: {s.failures_recovered}")
    print(f"kernels replayed from the journal: {s.replayed_kernels}")
    print(f"automatic checkpoints taken: {s.checkpoints}")


if __name__ == "__main__":
    main()
