#!/usr/bin/env python
"""Quickstart: share one GPU between two applications.

Boots the paper's runtime on a single-GPU node and runs two CUDA
applications concurrently through the intercept library.  With two
virtual GPUs, the applications time-share the device: one computes while
the other is in a CPU phase.

Run:  python examples/quickstart.py
"""

from repro.sim import Environment
from repro.simcuda import CudaDriver, FatBinary, KernelDescriptor, TESLA_C2050
from repro.core import Frontend, NodeRuntime, RuntimeConfig

MIB = 1024**2


def application(env, runtime, name, kernel_seconds, cpu_seconds):
    """A typical GPU application: allocate → upload → (kernel, CPU think,
    repeat) → download → free."""
    frontend = Frontend(env, runtime.listener, name=name)
    yield from frontend.open()

    # Host startup code registers the device binary and its kernels.
    fatbin = FatBinary()
    kernel = KernelDescriptor(
        name=f"{name}.kernel",
        flops=kernel_seconds * TESLA_C2050.effective_gflops * 1e9,
    )
    handle = yield from frontend.register_fat_binary(fatbin)
    yield from frontend.register_function(handle, kernel)

    data = yield from frontend.cuda_malloc(256 * MIB)  # a *virtual* pointer
    yield from frontend.cuda_memcpy_h2d(data, 256 * MIB)

    for phase in range(3):
        yield from frontend.launch_kernel(kernel, [data])
        print(f"[{env.now:7.3f}s] {name}: GPU phase {phase} done")
        yield env.timeout(cpu_seconds)  # CPU phase (post-processing)

    yield from frontend.cuda_memcpy_d2h(data, 256 * MIB)
    yield from frontend.cuda_free(data)
    yield from frontend.cuda_thread_exit()
    print(f"[{env.now:7.3f}s] {name}: finished")


def main():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    runtime = NodeRuntime(env, driver, RuntimeConfig(vgpus_per_device=2))
    env.process(runtime.start())

    env.process(application(env, runtime, "app-A", kernel_seconds=1.0, cpu_seconds=1.0))
    env.process(application(env, runtime, "app-B", kernel_seconds=1.0, cpu_seconds=1.0))
    env.run()

    stats = runtime.stats
    print("\n--- runtime statistics ---")
    print(f"connections: {stats.connections_accepted}")
    print(f"calls served: {stats.calls_served}")
    print(f"kernels launched: {stats.kernels_launched}")
    print(f"bindings/unbindings: {stats.bindings}/{stats.unbindings}")
    busy = driver.devices[0].busy_seconds
    print(f"GPU busy: {busy:.2f}s of {env.now:.2f}s ({busy / env.now:.0%} utilization)")


if __name__ == "__main__":
    main()
