#!/usr/bin/env python
"""VM-based GPU cloud (paper Figure 2a).

An Eucalyptus-like cloud manager places virtual machines on GPU nodes.
CUDA applications inside the guests reach the host-side runtime daemon
through VM sockets — the guests never see the GPUs, yet share them
through the runtime, across VM boundaries.

Run:  python examples/vm_cloud.py
"""

from repro.cluster import CloudManager, ComputeNode, VMSpec
from repro.core import RuntimeConfig
from repro.sim import Environment
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

MIB = 1024**2


def guest_workload(env, vm, name, phases=3):
    """A CUDA application inside a guest VM."""
    frontend = vm.frontend(name)
    yield from frontend.open()
    kernel = KernelDescriptor(
        name=f"{name}.kernel",
        flops=0.6 * TESLA_C2050.effective_gflops * 1e9,
    )
    fatbin = FatBinary()
    handle = yield from frontend.register_fat_binary(fatbin)
    yield from frontend.register_function(handle, kernel)

    data = yield from frontend.cuda_malloc(64 * MIB)
    yield from frontend.cuda_memcpy_h2d(data, 64 * MIB)
    for phase in range(phases):
        yield from frontend.launch_kernel(kernel, [data])
        yield from vm.cpu_phase(0.3)  # guest-side post-processing
        print(f"[{env.now:7.3f}s] {name}: phase {phase} done")
    yield from frontend.cuda_memcpy_d2h(data, 64 * MIB)
    yield from frontend.cuda_free(data)
    yield from frontend.cuda_thread_exit()
    print(f"[{env.now:7.3f}s] {name}: finished")


def main():
    env = Environment()
    nodes = [
        ComputeNode(env, f"host{i}", [TESLA_C2050], cpu_threads=8,
                    runtime_config=RuntimeConfig(vgpus_per_device=4))
        for i in range(2)
    ]
    for node in nodes:
        env.process(node.start())
    cloud = CloudManager(env, nodes)

    def orchestrate():
        # Three tenants rent VMs; the cloud places them first-fit.
        vms = []
        for i in range(3):
            vm = yield from cloud.launch_vm(VMSpec(f"tenant{i}-vm", vcpus=4))
            print(f"[{env.now:7.3f}s] {vm.spec.name} booted on {vm.node.name}")
            vms.append(vm)
        for i, vm in enumerate(vms):
            env.process(guest_workload(env, vm, f"tenant{i}.app"))

    env.process(orchestrate())
    env.run()

    print("\n--- per-host summary ---")
    for node in nodes:
        stats = node.runtime.stats
        gpu = node.driver.devices[0]
        print(
            f"{node.name}: VMs={len(cloud.vms_on(node))} "
            f"connections={stats.connections_accepted} "
            f"kernels={gpu.kernels_executed} "
            f"GPU busy={gpu.busy_seconds:.1f}s"
        )


if __name__ == "__main__":
    main()
