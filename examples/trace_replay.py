#!/usr/bin/env python
"""Record an application's call stream and replay it elsewhere.

The runtime sees applications purely as streams of intercepted CUDA
calls separated by CPU gaps.  This example records one MM-L run (on the
bare CUDA runtime), serializes the trace to JSON, and replays it:

1. on the same single-GPU node through the paper's runtime — same result,
   small interception overhead;
2. as three concurrent tenants on one GPU — the memory conflicts that
   motivate the virtual-memory design appear, and swapping resolves them.

Run:  python examples/trace_replay.py
"""

from repro.cluster.node import ComputeNode
from repro.core import Frontend, RuntimeConfig
from repro.sim import Environment
from repro.simcuda import TESLA_C2050
from repro.simcuda.runtime_api import CudaRuntimeAPI
from repro.workloads import workload
from repro.workloads.base import Application, BareCudaAdapter, FrontendAdapter
from repro.workloads.trace import CallTrace, TraceRecorder, replay_trace


def record():
    env = Environment()
    node = ComputeNode(env, "recorder", [TESLA_C2050])
    spec = workload("MM-L").with_cpu_fraction(0.5)
    app = Application(spec)
    recorder = TraceRecorder(
        BareCudaAdapter(CudaRuntimeAPI(node.driver, owner="rec")), env, name="MM-L"
    )
    p = env.process(app.run(recorder, cpu_phase=node.cpu_phase))
    env.run(until=p)
    print(f"recorded {spec.tag}: {recorder.trace.kernel_calls} kernels, "
          f"{len(recorder.trace.events)} events, {env.now:.1f}s wall")
    return recorder.trace


def replay_single(trace: CallTrace):
    env = Environment()
    node = ComputeNode(env, "replayer", [TESLA_C2050],
                       runtime_config=RuntimeConfig(vgpus_per_device=1))
    env.process(node.start())
    env.run(until=2.0)
    t0 = env.now
    api = FrontendAdapter(Frontend(env, node.runtime.listener, name="replay"))
    p = env.process(replay_trace(trace, api, cpu_phase=node.cpu_phase))
    env.run(until=p)
    print(f"replay through the runtime: {env.now - t0:.1f}s "
          f"(interception overhead included)")


def replay_multi_tenant(trace: CallTrace, tenants=3):
    env = Environment()
    node = ComputeNode(env, "shared", [TESLA_C2050],
                       runtime_config=RuntimeConfig(vgpus_per_device=4))
    env.process(node.start())
    env.run(until=2.0)
    t0 = env.now
    finished = []

    def tenant(i):
        api = FrontendAdapter(
            Frontend(env, node.runtime.listener, name=f"tenant{i}")
        )
        yield from replay_trace(trace, api, cpu_phase=node.cpu_phase)
        finished.append(env.now)

    for i in range(tenants):
        env.process(tenant(i))
    env.run()
    stats = node.runtime.stats
    print(f"{tenants} concurrent replays on one GPU: {max(finished) - t0:.1f}s, "
          f"swaps={stats.swaps_total} (3×1.2 GiB tenants on a 3 GiB card)")


def main():
    trace = record()
    # The trace is plain JSON: archive it, ship it, diff it.
    text = trace.dumps()
    trace = CallTrace.loads(text)
    print(f"serialized trace: {len(text)} bytes of JSON\n")
    replay_single(trace)
    replay_multi_tenant(trace)


if __name__ == "__main__":
    main()
