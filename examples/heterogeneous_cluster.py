#!/usr/bin/env python
"""A heterogeneous two-node cluster under a TORQUE-like batch scheduler.

Reproduces the paper's §5.4 deployment: a 3-GPU node and a 1-GPU node,
jobs submitted at the head node, GPUs hidden from TORQUE (it divides the
workload equally).  Compares three settings:

1. serialized execution (one vGPU per device),
2. GPU sharing (four vGPUs per device),
3. GPU sharing + inter-node offloading (the overloaded single-GPU node
   redirects excess connections to its peer over TCP).

Run:  python examples/heterogeneous_cluster.py
"""

from repro.cluster import Cluster, Torque, TorqueMode
from repro.core import RuntimeConfig
from repro.sim import Environment, RngStreams
from repro.simcuda import TESLA_C1060, TESLA_C2050
from repro.workloads import draw_short_jobs


def run_setting(label, config, n_jobs=24, seed=7):
    env = Environment()
    cluster = Cluster(env)
    cluster.add_node("big", [TESLA_C2050, TESLA_C2050, TESLA_C1060],
                     runtime_config=config)
    cluster.add_node("small", [TESLA_C1060], runtime_config=config)
    if config.offload_enabled:
        cluster.peer_runtimes()
    env.process(cluster.start())
    env.run(until=5.0)  # let the daemons boot

    rng = RngStreams(seed).stream("jobs")
    jobs = draw_short_jobs(rng, n_jobs)
    torque = Torque(env, cluster.nodes, mode=TorqueMode.OBLIVIOUS)
    done = env.process(torque.run_batch(jobs))
    env.run(until=done)

    offloads = sum(n.runtime.stats.offloads_out for n in cluster.nodes)
    print(
        f"{label:32s} total={torque.total_execution_time:7.1f}s  "
        f"avg={torque.average_turnaround:6.1f}s  offloaded={offloads}"
    )
    return torque.total_execution_time


def main():
    print(f"{'setting':32s} {'batch of 24 short jobs':>7s}")
    serialized = run_setting(
        "serialized (1 vGPU/device)", RuntimeConfig(vgpus_per_device=1)
    )
    sharing = run_setting(
        "GPU sharing (4 vGPUs/device)", RuntimeConfig(vgpus_per_device=4)
    )
    balanced = run_setting(
        "sharing + inter-node offloading",
        RuntimeConfig(vgpus_per_device=4, offload_enabled=True),
    )
    print(f"\nsharing gain over serialized: {(serialized - sharing) / serialized:.0%}")
    print(f"offloading gain over sharing: {(sharing - balanced) / sharing:.0%}")


if __name__ == "__main__":
    main()
