"""Runtime configuration.

Defaults match the configuration the paper uses for its headline results:
four vGPUs per device (§5.3.2 "four vGPUs per device provide a good
compromise"), FCFS round-robin scheduling with vGPU-count load balancing,
and full data-transfer deferral (§5 "the runtime is configured to defer
all data transfers").
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

__all__ = ["RuntimeConfig"]


@dataclasses.dataclass
class RuntimeConfig:
    """Knobs of :class:`~repro.core.runtime.NodeRuntime`.

    Attributes
    ----------
    vgpus_per_device:
        Degree of time-sharing per physical GPU.  ``1`` serializes jobs
        (the paper's "serialized execution" baseline configuration).
    defer_transfers:
        When True (paper default), host→device transfers are postponed to
        the next kernel launch that references the data; multiple copies
        into one allocation coalesce into a single bulk transfer.  When
        False, transfers are issued immediately once the context is bound
        (computation/communication overlap at the cost of more swap
        traffic).
    overlap_transfers:
        The paper's "overlap computation and communication" configuration
        (§4.5): route the memory manager's device traffic through the
        vGPU's in-order copy stream.  Bulk H2D transfers at launch are
        enqueued asynchronously and awaited only right before the kernel
        needs them; swap/checkpoint write-backs run asynchronously behind
        an explicit drain barrier, so a D2H can overlap another tenant's
        kernel on the device's exec engine.  Off by default — the deferred
        (fully synchronous) path is the paper's headline configuration.
    prefetch_enabled:
        Overlap-engine extension: during an application's CPU phase the
        dispatcher stages the journaled next-launch working set onto the
        device through the copy stream, so the following launch finds its
        data resident (a prefetch *hit*) instead of paying the bulk
        transfer.  Requires ``overlap_transfers`` to be useful; purely
        speculative — prefetch never evicts and swallows device errors.
    policy:
        Scheduling policy name registered in :mod:`repro.core.policies`
        ("fcfs", "sjf", "credit").
    enable_intra_swap / enable_inter_swap:
        The two memory-swapping modes of §4.5.
    swap_chunk_bytes:
        Demand-paging granularity: allocations larger than this are split
        into fixed-size chunks with per-chunk residency/dirty state, so a
        partially written buffer stages, faults in and writes back only
        the chunks that actually hold (or dirtied) data — and the overlap
        engine pipelines per-chunk transfers instead of whole entries.
        ``0`` (default) keeps the paper's whole-entry granularity,
        bit-for-bit identical in stats.
    eviction_mode:
        How inter-application memory pressure is resolved.  ``"context"``
        (default) is the paper's whole-context swap: one victim's entire
        device state is written back and the victim unbound.
        ``"partial"`` runs a device-wide eviction loop instead, freeing
        *only* the bytes the faulting launch needs, entry by entry across
        any number of victims (which stay bound), ordered by
        ``eviction_policy``.  Whole-context swap-out remains the
        correctness path for unbind/migration/checkpoint either way.
    eviction_policy:
        Victim ordering for partial eviction, registered in
        :mod:`repro.core.memory.eviction`: "lru", "lfu", "second_chance",
        or "cost_aware" (fewest dirty bytes written back per byte freed).
    swap_retry_backoff_s:
        Initial wait before a context that failed to obtain device memory
        (and found no swap victim) retries after unbinding.  Consecutive
        failures back off exponentially up to ``swap_retry_max_backoff_s``;
        any device-memory release wakes waiters immediately.
    migration_enabled:
        Dynamic binding from slower to faster GPUs when the latter become
        idle and no pending jobs exist (§5.3.4).
    migration_min_speedup:
        Only migrate when the destination device is at least this many
        times faster than the source.
    offload_enabled:
        Allow redirecting pending connections to peer nodes (§4.7).
    offload_load_margin:
        Offload a new connection when the local per-vGPU load exceeds the
        best peer's by more than this margin.
    checkpoint_kernel_seconds:
        When set, automatically checkpoint (write dirty data back to the
        swap area) after any kernel whose execution exceeded this many
        seconds — the §4.6 automatic checkpoint that bounds the replay
        penalty after GPU failures.
    unbind_on_cpu_phase_s:
        When set, a context sitting in a CPU phase for longer than this
        while others wait for a vGPU is unbound (swap-out) so the vGPU can
        be reassigned.  Off by default; exercised by the ablation benches.
    kernel_consolidation:
        Enable space-sharing of a device by kernels with partial SM demand
        (the Ravi et al. kernel-consolidation integration the paper's §6
        describes as enabled by delayed binding and transfer deferral).
    cuda4_semantics:
        CUDA 4.0 compatibility (paper §4.8): application threads carry an
        application identifier; threads of the same application are bound
        to the same device (they share data on the GPU), and dynamic
        binding uses direct GPU-to-GPU transfers instead of staging
        through host memory.
    dispatcher_overhead_s:
        Per-call software cost of interception/dispatch inside the
        runtime daemon.  A batched submission pays it once per *batch*
        (one scheduler round-trip), not once per call.
    launch_control_plane_s:
        Per-launch control-plane cost charged by the simulated driver
        (CPU-side submission work before the launch contends for an
        engine).  ``0.0`` (default) models it away entirely — simulated
        times stay bit-for-bit identical to previous releases; see
        ``repro.simcuda.timing.CONTROL_PLANE_SECONDS`` for a reference
        magnitude.  Graph replay re-issues an instantiated launch
        sequence for a *single* charge.
    batch_max_calls:
        Control-plane batching: the frontend journals asynchronous calls
        (configure/launch/h2d) and ships up to this many in one RPC
        frame, which the dispatcher executes in one scheduler
        round-trip.  ``1`` (default) disables batching — every call is
        its own RPC, behavior-identical to previous releases.
        Synchronizing calls (memcpy-back, sync, free, exit, …) act as
        flush barriers: they ride as the last call of the pending batch.
    batch_max_delay_s:
        Optional client-side flush timer: a non-empty batch older than
        this is shipped even if under ``batch_max_calls``.  ``None``
        (default) flushes only on a full batch or a barrier call.
    graph_replay_enabled:
        CUDA-Graph-style replay: the dispatcher recognizes a repeated
        launch-only batch signature (or an explicit frontend capture),
        instantiates it once, and re-issues the whole graph for a single
        control-plane charge with only parameter patching.  Off by
        default.
    graph_min_repeats:
        How many times an identical launch-only batch signature must be
        seen before the dispatcher instantiates a graph for it.
    macro_step:
        Macro-stepped model execution: collapse uninterruptible
        per-message machinery (the channel's delivery process, ghost
        transmitter-free events, uncontended sync-primitive grants) into
        single scheduled events or synchronous continuations.  Simulated
        timestamps are bit-identical either way — macro-stepping elides
        *heap events*, never simulated time — so the default is on; the
        ``REPRO_MACRO_STEP=0`` environment variable forces it off
        globally (the CI identity job) without touching call sites.
    tracing:
        Structured tracing (:mod:`repro.obs`): emit typed events (call
        spans, swaps, bindings, migrations, queue depths) on the node's
        event bus for Chrome-trace / JSON-lines export.  Off by default;
        when off the instrumentation hooks are single-attribute-check
        no-ops and simulated times are bit-identical to an untraced run.
    qos_enabled:
        Multi-tenant QoS (:mod:`repro.qos`): admission control, tenant
        memory quotas and the vGPU-share gate.  Off by default — the
        tenant registry still exists (connections may name a tenant for
        accounting) but nothing is enforced, so behavior is identical to
        a QoS-less runtime.
    slo_window_s:
        Width of the sliding window over which the per-tenant SLO monitor
        computes turnaround/queue-wait percentiles and burn rates.
    slo_turnaround_p99_s / slo_queue_wait_p99_s:
        Per-call latency targets for the SLO monitor.  A call (or queue
        wait) slower than the target consumes error budget; ``None``
        (default) disables the corresponding burn-rate gauge (it reads
        0.0).  Targets are monitoring-only — nothing is throttled.
    slo_error_budget:
        Fraction of calls in the window allowed to breach the target
        before the burn rate reaches 1.0.  Burn rate is the breaching
        fraction divided by this budget, the standard multi-window
        burn-rate alerting quantity.
    vgpu_quantum_s:
        Preemptive time-slicing: a bound context that has accumulated
        this many GPU seconds since binding is unbound at its next call
        boundary *if* other contexts are waiting for a vGPU (the §4.4
        dynamic-binding machinery makes the unbind cheap and safe).
        ``None`` (default) disables preemption.
    admission_mode:
        What happens when admission control refuses a connection:
        ``"queue"`` (default) blocks the handshake until a slot frees
        (backpressure); ``"reject"`` fails it immediately with a typed
        ``ADMISSION_REJECTED`` error.
    admission_max_contexts:
        Node-wide cap on concurrently admitted contexts (None = no cap).
    admission_max_footprint_bytes:
        Node-wide cap on the summed ``estimated_bytes`` handshake hints
        of admitted contexts (None = no cap).
    listener_backlog:
        Bound on the listener's accept backlog: a ``connect()`` arriving
        while this many connections are already queued un-accepted fails
        fast with ``ConnectionRefusedError`` instead of waiting forever.
        ``None`` (default) keeps the historic unbounded behavior.
    locality_binding:
        Locality-aware dynamic binding (§4.4 + the transfer-cost model in
        :mod:`repro.core.memory.costmodel`).  When enabled: (a) unbinds
        driven by the vGPU quantum or the CPU-phase reaper *retain* the
        context's device allocations as a clean residency cache instead
        of freeing them (write-back still happens, so the swap copy stays
        authoritative); (b) rebinding to the caching vGPU revives the
        cache in place and skips the fault-in, while binding anywhere
        else drops it; (c) other contexts under memory pressure reclaim
        idle caches before evicting live victims; (d) vGPU selection,
        migration, and ``cost_aware`` partial eviction all consult the
        modeled transfer cost.  Off by default — behavior (and simulated
        times) are identical to a cache-less runtime.
    migration_penalty_s:
        Sticky-affinity hysteresis for the cost model: the modeled extra
        cost charged to binding or migrating a context away from the
        device holding its residency cache.  Prevents ping-pong when two
        devices score nearly equal.
    allocator_placement:
        Device-memory placement strategy, applied to every device's
        :class:`~repro.simcuda.allocator.DeviceAllocator`: ``first_fit``
        (default, the historic behavior) or ``best_fit`` (smallest block
        that fits; reduces fragmentation on mixed-size churn).
    max_failed_rebind_attempts:
        How many times a failed context is rebound to another device
        before the error is propagated to the application.
    """

    vgpus_per_device: int = 4
    defer_transfers: bool = True
    overlap_transfers: bool = False
    prefetch_enabled: bool = False
    policy: str = "fcfs"
    enable_intra_swap: bool = True
    enable_inter_swap: bool = True
    swap_chunk_bytes: int = 0
    eviction_mode: str = "context"
    eviction_policy: str = "lru"
    swap_retry_backoff_s: float = 2e-3
    swap_retry_max_backoff_s: float = 1.0
    migration_enabled: bool = False
    migration_min_speedup: float = 1.25
    offload_enabled: bool = False
    offload_load_margin: float = 0.5
    checkpoint_kernel_seconds: Optional[float] = None
    unbind_on_cpu_phase_s: Optional[float] = None
    cuda4_semantics: bool = False
    kernel_consolidation: bool = False
    dispatcher_overhead_s: float = 30e-6
    launch_control_plane_s: float = 0.0
    batch_max_calls: int = 1
    batch_max_delay_s: Optional[float] = None
    graph_replay_enabled: bool = False
    graph_min_repeats: int = 2
    macro_step: bool = True
    tracing: bool = False
    qos_enabled: bool = False
    slo_window_s: float = 60.0
    slo_turnaround_p99_s: Optional[float] = None
    slo_queue_wait_p99_s: Optional[float] = None
    slo_error_budget: float = 0.01
    vgpu_quantum_s: Optional[float] = None
    admission_mode: str = "queue"
    admission_max_contexts: Optional[int] = None
    admission_max_footprint_bytes: Optional[int] = None
    listener_backlog: Optional[int] = None
    locality_binding: bool = False
    migration_penalty_s: float = 0.02
    allocator_placement: str = "first_fit"
    max_failed_rebind_attempts: int = 3
    #: The paper's nodes have 48 GB of host memory (§5.1); the swap area
    #: may use essentially all of it.
    host_swap_capacity_bytes: int = 46 * 1024**3
    host_memcpy_bps: float = 8e9

    def __post_init__(self) -> None:
        # Validate policy names against the live registries (imported
        # lazily to keep config import-cycle free) so a newly registered
        # policy can never silently diverge from a hand-maintained tuple.
        from repro.core.memory.eviction import EVICTION_POLICY_NAMES
        from repro.core.policies import POLICY_NAMES

        if os.environ.get("REPRO_MACRO_STEP") == "0":
            self.macro_step = False
        if self.vgpus_per_device < 1:
            raise ValueError("vgpus_per_device must be >= 1")
        if self.policy not in POLICY_NAMES:
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.swap_chunk_bytes < 0:
            raise ValueError("swap_chunk_bytes must be >= 0")
        if self.eviction_mode not in ("context", "partial"):
            raise ValueError(f"unknown eviction_mode {self.eviction_mode!r}")
        if self.eviction_policy not in EVICTION_POLICY_NAMES:
            raise ValueError(f"unknown eviction policy {self.eviction_policy!r}")
        if self.swap_retry_backoff_s < 0:
            raise ValueError("swap_retry_backoff_s must be >= 0")
        if self.max_failed_rebind_attempts < 0:
            raise ValueError("max_failed_rebind_attempts must be >= 0")
        if self.vgpu_quantum_s is not None and self.vgpu_quantum_s <= 0:
            raise ValueError("vgpu_quantum_s must be positive (or None)")
        if self.launch_control_plane_s < 0:
            raise ValueError("launch_control_plane_s must be >= 0")
        if self.batch_max_calls < 1:
            raise ValueError("batch_max_calls must be >= 1")
        if self.batch_max_delay_s is not None and self.batch_max_delay_s <= 0:
            raise ValueError("batch_max_delay_s must be positive (or None)")
        if self.graph_min_repeats < 1:
            raise ValueError("graph_min_repeats must be >= 1")
        if self.admission_mode not in ("queue", "reject"):
            raise ValueError(f"unknown admission_mode {self.admission_mode!r}")
        if self.listener_backlog is not None and self.listener_backlog < 1:
            raise ValueError("listener_backlog must be >= 1 (or None)")
        if self.migration_penalty_s < 0:
            raise ValueError("migration_penalty_s must be >= 0")
        if self.slo_window_s <= 0:
            raise ValueError("slo_window_s must be positive")
        if not 0 < self.slo_error_budget <= 1:
            raise ValueError("slo_error_budget must be in (0, 1]")
        from repro.simcuda.allocator import PLACEMENT_MODES

        if self.allocator_placement not in PLACEMENT_MODES:
            raise ValueError(
                f"unknown allocator_placement {self.allocator_placement!r}; "
                f"choose from {PLACEMENT_MODES}"
            )

    def serialized(self) -> "RuntimeConfig":
        """A copy configured for serialized execution (1 vGPU/device)."""
        return dataclasses.replace(self, vgpus_per_device=1)

    def overlapped(self) -> "RuntimeConfig":
        """A copy configured for the full overlap engine (§4.5 "overlap
        computation and communication"): pipelined stream transfers plus
        CPU-phase prefetch."""
        return dataclasses.replace(
            self, overlap_transfers=True, prefetch_enabled=True
        )
