"""Connection manager (paper §4.2).

The frontend library opens a separate connection for each application
thread, preserving the CUDA 3.2 one-context-per-thread semantics.  The
connection manager accepts incoming connections and enqueues them on the
pending-connections list, from which dispatcher threads (and the
inter-node offloader) dequeue them.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.sim import Environment, FifoQueue
from repro.net.socket import Listener, Socket

__all__ = ["ConnectionManager"]


class ConnectionManager:
    """Accepts connections and maintains the pending-connections list."""

    def __init__(
        self,
        env: Environment,
        name: str = "runtime",
        backlog_limit: Optional[int] = None,
    ):
        self.env = env
        self.listener = Listener(env, name=name, backlog_limit=backlog_limit)
        #: Pending connections (server-side sockets) awaiting a
        #: dispatcher thread.
        self.pending: FifoQueue = FifoQueue(env)
        self._accepting = False
        #: Tracing bus (repro.obs), injected by the runtime; pending-list
        #: depth changes are emitted as QueueDepthChanged events.
        self.obs = None

    @property
    def pending_count(self) -> int:
        return len(self.pending)

    def start(self) -> None:
        """Begin accepting (idempotent)."""
        if not self._accepting:
            self._accepting = True
            self.env.process(self._accept_loop(), name=f"connmgr-{self.listener.name}")

    def _accept_loop(self) -> Generator:
        while True:
            sock: Socket = yield self.listener.accept()
            self.pending.put(sock)
            if self.obs is not None and self.obs.enabled:
                self.obs.queue_depth("pending_connections", len(self.pending))

    def next_connection(self):
        """Event for the next pending connection (dispatcher side)."""
        return self.pending.get()
