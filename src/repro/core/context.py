"""Runtime contexts: the per-application-thread state the runtime tracks.

A :class:`Context` is the paper's ``Context`` structure (§4.6): it links
the connection, the page-table entries (held by the memory manager), the
binding to a virtual GPU, the last device call performed (for replay), and
the error code on failure.  Contexts move between the dispatcher's lists:
pending → waiting ⇄ assigned → done, with a failed list feeding recovery.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, List, Optional, TYPE_CHECKING

from repro.sim import Environment, Lock
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelLaunch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.vgpu import VirtualGPU

__all__ = ["Context", "ContextState"]

_context_ids = itertools.count(1)


class ContextState(enum.Enum):
    PENDING = "pending"      # connection accepted, not yet needing a GPU
    WAITING = "waiting"      # needs a vGPU, none granted yet
    ASSIGNED = "assigned"    # bound to a vGPU
    FAILED = "failed"        # device operation failed; awaiting recovery
    DONE = "done"            # application exited


class Context:
    """Per-application-thread runtime state."""

    def __init__(self, env: Environment, owner: str = ""):
        self.env = env
        self.context_id = next(_context_ids)
        self.owner = owner or f"ctx{self.context_id}"
        #: CUDA 4.0 semantics (§4.8): threads of one application share a
        #: CUDA context on the GPU, so they must bind to the same device.
        self.application_id: Optional[str] = None
        self.state = ContextState.PENDING
        #: Virtual GPU this context is bound to (None when unbound).
        self.vgpu: Optional["VirtualGPU"] = None
        #: Registered fat binaries.
        self.fatbins: List[FatBinary] = []
        #: Guards the context against concurrent access by its handler and
        #: by other vGPUs performing inter-application swap / migration.
        self.lock = Lock(env)
        #: True while the application is in a CPU phase (its handler is
        #: blocked waiting for the next call) — the window in which the
        #: context may honor swap requests (§4.5).
        self.in_cpu_phase = True
        #: Timestamp of entering the current CPU phase.
        self.cpu_phase_since = 0.0
        #: Last device call (for failure recovery, §4.6).
        self.last_call: Optional[Any] = None
        #: Error from the last failure.
        self.error: Optional[BaseException] = None
        #: Kernel launches executed since device state was last fully
        #: captured in the swap area; replayed on failure recovery.
        self.replay_journal: List[KernelLaunch] = []
        #: Virtual pointers of the most recent launch — the overlap
        #: engine's prediction of the *next* launch's working set (kernels
        #: overwhelmingly iterate on the same buffers).  Survives journal
        #: clearing, so prefetch keeps working across checkpoints.
        self.last_launch_vptrs: tuple = ()
        #: Estimated total GPU seconds (optional profiling hint used by
        #: the SJF policy).
        self.estimated_gpu_seconds: Optional[float] = None
        #: Absolute completion deadline (simulated seconds), for the EDF
        #: quality-of-service policy.
        self.deadline_s: Optional[float] = None
        #: GPU seconds consumed so far (credit-based policy).
        self.gpu_seconds_used = 0.0
        #: Tenant this connection belongs to (repro.qos); None for
        #: tenant-less connections — all QoS enforcement skips those.
        self.tenant: Optional[Any] = None
        #: Handshake hint: expected peak allocation footprint in bytes,
        #: consumed by the admission controller's node-wide budget.
        self.estimated_bytes: Optional[int] = None
        #: GPU seconds consumed since the current binding (reset by
        #: VirtualGPU.bind); drives quantum-expiry preemption.
        self.quantum_used_s = 0.0
        #: True when kernels use device-side dynamic allocation: the
        #: context is served but excluded from sharing/dynamic scheduling.
        self.excluded_from_sharing = False
        #: Locality retention (§4.4 cost-driven binding): the vGPU whose
        #: CUDA context still owns this context's device allocations
        #: after an unbind-with-retain.  Rebinding to this exact vGPU
        #: revives the cache; binding anywhere else must drop it first.
        self.cache_vgpu: Optional["VirtualGPU"] = None
        #: Consecutive times the locality policy passed this waiter over
        #: for a younger waiter with better locality (starvation guard).
        self.locality_skips = 0
        #: When the context last joined the scheduler's waiting list
        #: (stamped by ``request_binding``); the HRRN policy's aging
        #: clock reads ``env.now - wait_since``.
        self.wait_since = env.now
        #: Pending kernel configuration (cudaConfigureCall).
        self.pending_config: Optional[Any] = None
        #: Graph capture/replay (control-plane batching).  ``capture`` is
        #: the list of launches being recorded between begin/end capture
        #: (None when not capturing); ``graphs`` maps graph handle →
        #: GraphInstance; ``graph_candidates`` counts repeats of a batch
        #: signature until auto-instantiation, ``graph_by_signature``
        #: holds the instantiated graphs keyed by that signature.
        self.capture: Optional[List[KernelLaunch]] = None
        self.capture_config: Optional[Any] = None
        self.graphs: dict = {}
        self.graph_candidates: dict = {}
        self.graph_by_signature: dict = {}
        #: Live phase recorder of the call currently being served
        #: (repro.obs.span.CallSpan); None between calls and whenever
        #: tracing is off.  Only the process serving the call may touch
        #: it — work done *to* this context by another process accrues
        #: to that process's own span.
        self.span: Optional[Any] = None
        #: Counters.
        self.kernels_launched = 0
        self.swaps_suffered = 0
        self.migrations = 0
        self.rebind_attempts = 0
        self.connected_at = env.now
        self.finished_at: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def bound(self) -> bool:
        return self.vgpu is not None

    @property
    def device(self):
        """Physical device currently bound, or None."""
        return self.vgpu.device if self.vgpu is not None else None

    def cpu_phase_duration(self, now: float) -> float:
        """How long the context has been in its current CPU phase."""
        if not self.in_cpu_phase:
            return 0.0
        return now - self.cpu_phase_since

    def enter_cpu_phase(self, now: float) -> None:
        self.in_cpu_phase = True
        self.cpu_phase_since = now

    def leave_cpu_phase(self) -> None:
        self.in_cpu_phase = False

    def __repr__(self) -> str:
        where = f"on {self.vgpu.name}" if self.vgpu else "unbound"
        return f"<Context #{self.context_id} {self.owner!r} {self.state.value} {where}>"
