"""Wire protocol between the frontend (intercept library) and the runtime.

Every CUDA Runtime API call an application makes is marshalled into one
:class:`~repro.net.rpc.Request` whose ``method`` is a :class:`CallType`
value.  The set mirrors §3 of the paper: device targeting, memory
allocation/de-allocation, data transfers, code registration, kernel
configuration/launch — plus the runtime's own additions (nested-structure
registration, explicit checkpoint).
"""

from __future__ import annotations

import enum

__all__ = [
    "CallType",
    "DEVICE_MANAGEMENT_CALLS",
    "REGISTRATION_CALLS",
    "MEMORY_CALLS",
    "BATCHABLE_CALLS",
]


class CallType(str, enum.Enum):
    """Intercepted call kinds."""

    # internal registration routines (issued by host startup code)
    REGISTER_FATBIN = "__cudaRegisterFatBinary"
    REGISTER_FUNCTION = "__cudaRegisterFunction"
    REGISTER_VAR = "__cudaRegisterVar"
    REGISTER_SHARED = "__cudaRegisterShared"
    REGISTER_SHARED_VAR = "__cudaRegisterSharedVar"
    REGISTER_TEXTURE = "__cudaRegisterTexture"

    # device management (overridden/ignored by the runtime, §4.3)
    SET_DEVICE = "cudaSetDevice"
    GET_DEVICE_COUNT = "cudaGetDeviceCount"

    # memory
    MALLOC = "cudaMalloc"
    FREE = "cudaFree"
    MEMCPY_H2D = "cudaMemcpyHtoD"
    MEMCPY_D2H = "cudaMemcpyDtoH"

    # kernels
    CONFIGURE_CALL = "cudaConfigureCall"
    LAUNCH = "cudaLaunch"
    THREAD_SYNCHRONIZE = "cudaThreadSynchronize"

    # runtime-specific extensions
    REGISTER_NESTED = "reproRegisterNested"
    CHECKPOINT = "reproCheckpoint"
    EXIT = "cudaThreadExit"

    # CUDA-Graph-style capture/replay (runtime extension): record a
    # launch sequence once, instantiate it, then re-issue the whole graph
    # for a single control-plane charge.
    GRAPH_BEGIN_CAPTURE = "reproGraphBeginCapture"
    GRAPH_END_CAPTURE = "reproGraphEndCapture"
    GRAPH_LAUNCH = "reproGraphLaunch"


#: Calls the dispatcher services (and typically overrides) before any
#: application-to-GPU binding exists.
DEVICE_MANAGEMENT_CALLS = frozenset({CallType.SET_DEVICE, CallType.GET_DEVICE_COUNT})

REGISTRATION_CALLS = frozenset(
    {
        CallType.REGISTER_FATBIN,
        CallType.REGISTER_FUNCTION,
        CallType.REGISTER_VAR,
        CallType.REGISTER_SHARED,
        CallType.REGISTER_SHARED_VAR,
        CallType.REGISTER_TEXTURE,
    }
)

MEMORY_CALLS = frozenset(
    {CallType.MALLOC, CallType.FREE, CallType.MEMCPY_H2D, CallType.MEMCPY_D2H}
)

#: Calls the frontend may journal into a batch frame instead of issuing
#: immediately: asynchronous on real CUDA (no value to return, no
#: host-visible side effect the application could observe before its next
#: synchronizing call).  Everything else is a flush barrier.
BATCHABLE_CALLS = frozenset(
    {CallType.CONFIGURE_CALL, CallType.LAUNCH, CallType.MEMCPY_H2D}
)
