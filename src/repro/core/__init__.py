"""The paper's runtime: GPU abstraction, sharing, isolation and virtual
memory for multi-tenant heterogeneous nodes.

Composition (paper Figure 3):

- :class:`~repro.core.runtime.NodeRuntime` — the per-node daemon wiring
  everything together.
- :class:`~repro.core.connection.ConnectionManager` — accepts and enqueues
  application connections.
- :class:`~repro.core.dispatcher.Dispatcher` — schedules intercepted CUDA
  calls onto virtual GPUs; handles registration/device-management calls
  before binding; recovers failed contexts.
- :class:`~repro.core.vgpu.VirtualGPU` — worker bound to a physical GPU;
  one application thread at a time.
- :class:`~repro.core.memory.manager.MemoryManager` — virtual memory for
  GPUs: page table, host swap area, transfer deferral, intra-/inter-
  application swapping.
- :mod:`repro.core.policies` — pluggable scheduling policies.
- :mod:`repro.core.migration` — dynamic binding / slow→fast migration.
- :mod:`repro.core.offload` — inter-node offloading of pending
  connections.
- :class:`~repro.core.frontend.Frontend` — the client-side intercept
  library applications link against.
"""

from repro.core.config import RuntimeConfig
from repro.core.context import Context, ContextState
from repro.core.runtime import NodeRuntime
from repro.core.frontend import Frontend
from repro.core.errors import RuntimeApiError

__all__ = [
    "Context",
    "ContextState",
    "Frontend",
    "NodeRuntime",
    "RuntimeApiError",
    "RuntimeConfig",
]
