"""Pluggable scheduling policies (paper §2 "Configurable Scheduling").

A policy makes two decisions for the dispatcher:

- *placement*: given a context to bind and the currently idle vGPUs,
  which vGPU to use (:meth:`SchedulingPolicy.select_vgpu`);
- *ordering*: given the waiting-contexts list and a freed vGPU, which
  context to serve next (:meth:`SchedulingPolicy.pick_next`).

Three policies from the paper's discussion are provided:

``fcfs``
    First-come-first-served with round-robin placement that keeps the
    number of active vGPUs uniform across GPUs — the policy used for all
    of the paper's experiments (§5).
``sjf``
    Shortest-job-first, usable when profiling information (an estimated
    GPU time) accompanies the connection.
``credit``
    Credit-based fairness: the context that has consumed the least GPU
    time so far goes first.

Plus ``edf`` (deadline QoS), ``wfq`` (weighted-fair across tenants),
``locality`` (cost-model-driven: bind waiters where their data lives —
see :mod:`repro.core.memory.costmodel` and ``docs/scheduling.md``), and
the history-driven trio the trace-replay bake-off compares
(``docs/trace_replay.md``):

``sjf_est``
    Shortest-remaining-job-first on a *learned* runtime estimate: no
    profiling hints, just the per-user/per-group EWMA history of a
    :class:`~repro.core.estimator.RuntimeEstimator` — the key idea of
    production trace simulators.
``hrrn``
    Highest-response-ratio-next: serve the waiter maximizing
    ``(wait + est_service) / est_service`` — SJF's throughput with
    built-in aging, so long jobs cannot starve.
``fairshare``
    Unweighted fair share across users with a group level above them:
    the waiter whose group, then user, has consumed the least GPU time
    goes first (max-min on usage, the classic HPC fair-share tree).
``lottery``
    Ticket-weighted random draw (Waldspurger & Weihl, OSDI '94): each
    waiter holds tickets equal to its tenant's contract weight and the
    winner is drawn proportionally.  Probabilistically fair without any
    usage ledger, and starvation-free by construction.  Draws come from
    a named :class:`~repro.sim.rng.RngStreams` stream, so runs are
    reproducible and adding other randomness consumers does not perturb
    the schedule.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.context import Context
from repro.core.estimator import RuntimeEstimator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.vgpu import VirtualGPU

__all__ = [
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "CreditPolicy",
    "DeadlinePolicy",
    "WeightedFairPolicy",
    "LocalityPolicy",
    "EstimatorSjfPolicy",
    "HrrnPolicy",
    "FairSharePolicy",
    "LotteryPolicy",
    "POLICY_NAMES",
    "make_policy",
]


class SchedulingPolicy:
    """Interface for dispatcher scheduling decisions."""

    name = "abstract"

    def select_vgpu(
        self,
        ctx: Context,
        idle_vgpus: Sequence["VirtualGPU"],
        active_per_device: Dict[int, int],
        mem_needed: int = 0,
    ) -> Optional["VirtualGPU"]:
        """Choose a vGPU for ``ctx`` among ``idle_vgpus`` (None = decline).

        ``active_per_device`` maps device id → number of currently bound
        vGPUs on that device (for load balancing).
        """
        raise NotImplementedError

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        """Choose the next waiting context to serve."""
        raise NotImplementedError


class _BasePolicy(SchedulingPolicy):
    """Shared placement heuristic: keep active vGPU counts uniform across
    devices (the paper's load balancing), avoid devices that cannot hold
    the context's data right now, then favour faster devices."""

    def select_vgpu(
        self,
        ctx: Context,
        idle_vgpus: Sequence["VirtualGPU"],
        active_per_device: Dict[int, int],
        mem_needed: int = 0,
    ) -> Optional["VirtualGPU"]:
        if not idle_vgpus:
            return None

        def key(vgpu: "VirtualGPU"):
            device = vgpu.device
            memory_short = 1 if device.allocator.free_bytes < mem_needed else 0
            active = active_per_device.get(device.device_id, 0)
            # Load per unit of compute: on homogeneous devices this is the
            # paper's uniform-active-vGPU balancing; on heterogeneous
            # nodes it avoids oversubscribing the slow GPU.
            weighted_load = (active + 1) / device.spec.effective_gflops
            return (
                memory_short,
                weighted_load,
                -device.spec.effective_gflops,
                device.device_id,
                vgpu.index,
            )

        return min(idle_vgpus, key=key)


class FcfsPolicy(_BasePolicy):
    """First-come-first-served (paper's experimental policy)."""

    name = "fcfs"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        return waiting[0] if waiting else None


class SjfPolicy(_BasePolicy):
    """Shortest-job-first on the profiling hint; FCFS among unknowns."""

    name = "sjf"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(
            waiting,
            key=lambda c: (
                c.estimated_gpu_seconds
                if c.estimated_gpu_seconds is not None
                else float("inf"),
                c.context_id,
            ),
        )


class CreditPolicy(_BasePolicy):
    """Serve the context that has consumed the least GPU time so far."""

    name = "credit"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(waiting, key=lambda c: (c.gpu_seconds_used, c.context_id))


class DeadlinePolicy(_BasePolicy):
    """Earliest-deadline-first for QoS requirements (paper §2: "yet
    another scheduling policy may be adopted in the presence of expected
    quality of service requirements (e.g.: execution deadlines)").

    Contexts without a deadline are served after all deadlined ones, in
    FCFS order.
    """

    name = "edf"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(
            waiting,
            key=lambda c: (
                c.deadline_s if c.deadline_s is not None else float("inf"),
                c.context_id,
            ),
        )


class WeightedFairPolicy(_BasePolicy):
    """Weighted-fair queueing across *tenants* (repro.qos).

    Each tenant's accumulated GPU seconds are normalized by its weight
    (the wfq virtual time); the waiting context whose tenant has the
    smallest normalized usage goes first, so a weight-2 tenant receives
    twice the GPU time of a weight-1 tenant under contention.  Within a
    tenant (and for contexts with no tenant, which compete at weight
    1.0 on their own usage) the credit rule breaks ties: least GPU time
    consumed first, then FCFS.
    """

    name = "wfq"

    @staticmethod
    def _virtual_time(ctx: Context) -> float:
        tenant = getattr(ctx, "tenant", None)
        if tenant is not None:
            return tenant.normalized_gpu_seconds()
        return ctx.gpu_seconds_used

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(
            waiting,
            key=lambda c: (self._virtual_time(c), c.gpu_seconds_used, c.context_id),
        )


class LocalityPolicy(_BasePolicy):
    """Bind waiters where their data lives (§4.4 cost-driven binding).

    Ordering consults the node's :class:`TransferCostModel` (wired by the
    runtime after construction, like the eviction policies' hooks): when
    a vGPU frees, the waiter with the cheapest modeled time-to-first-
    kernel over the currently idle vGPUs goes next — typically the one
    whose retained working set is resident on the freed device.  Without
    the wiring (or with no idle vGPU) it degrades to FCFS.

    Starvation guard: each time the front (oldest) waiter is passed over
    for a younger waiter with better locality, its skip counter ticks;
    after :attr:`max_skips` consecutive skips the front waiter is served
    regardless of cost, so locality can reorder but never indefinitely
    delay.
    """

    name = "locality"

    #: Consecutive pass-overs before the oldest waiter is forced through.
    max_skips = 8

    def __init__(self) -> None:
        self.cost_model = None
        #: Wired by the runtime: () -> currently idle vGPUs.
        self.idle_vgpus_fn = None

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        front = waiting[0]
        if self.cost_model is None or self.idle_vgpus_fn is None:
            return front
        if front.locality_skips >= self.max_skips:
            front.locality_skips = 0
            return front
        idle = self.idle_vgpus_fn()
        if not idle:
            return front
        model = self.cost_model
        active = model.scheduler.active_per_device()

        def best_cost(ctx: Context) -> float:
            return min(model.bind_cost(ctx, v, active) for v in idle)

        chosen = min(waiting, key=lambda c: (best_cost(c), c.context_id))
        if chosen is front:
            front.locality_skips = 0
        else:
            front.locality_skips += 1
        chosen.locality_skips = 0
        return chosen


class EstimatorSjfPolicy(_BasePolicy):
    """Shortest-remaining-job-first on learned runtime estimates.

    Production traces carry no profiling hints, so plain ``sjf`` (which
    needs ``estimated_gpu_seconds`` on the handshake) degrades to FCFS
    on them.  This policy instead asks a
    :class:`~repro.core.estimator.RuntimeEstimator` — per-user EWMA
    history with group/global fallback — and orders waiters by
    *remaining* estimated work (estimate minus GPU seconds already
    consumed), so a preempted job near completion is not re-queued
    behind fresh short jobs.

    The estimator is wired like the locality policy's cost model: the
    node runtime supplies a node-local one fed by the dispatcher at
    context exit, and the trace-replay harness overrides it with a
    shared cluster-wide instance.  A handshake hint, when present,
    serves as the cold-start fallback; with neither, the waiter sorts
    last among estimated ones (FCFS among fully unknown).
    """

    name = "sjf_est"

    def __init__(self) -> None:
        #: Wired by the runtime / trace-replay harness.
        self.estimator: Optional[RuntimeEstimator] = None

    def _remaining(self, ctx: Context) -> float:
        est = None
        if self.estimator is not None:
            est = self.estimator.predict_for(ctx)
        if est is None:
            est = ctx.estimated_gpu_seconds
        if est is None:
            return float("inf")
        return max(est - ctx.gpu_seconds_used, 0.0)

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(waiting, key=lambda c: (self._remaining(c), c.context_id))


class HrrnPolicy(_BasePolicy):
    """Highest-response-ratio-next (Brinch Hansen's aging SJF).

    Serve the waiter with the largest ``(wait + s) / s`` where ``wait``
    is time spent on the waiting list (``ctx.wait_since``, stamped by
    the scheduler at enqueue) and ``s`` the estimated service time from
    the shared :class:`~repro.core.estimator.RuntimeEstimator` (same
    wiring and fallbacks as ``sjf_est``).  Short jobs win when waits are
    comparable — but every second queued inflates a long job's ratio,
    so nothing starves.  With no estimate anywhere the service time
    defaults to 1.0 modeled second, degrading to longest-wait-first
    (= FCFS order).
    """

    name = "hrrn"

    #: Service-time floor: keeps ratios finite for near-zero estimates.
    min_service_s = 1e-3

    def __init__(self) -> None:
        self.estimator: Optional[RuntimeEstimator] = None

    def _service(self, ctx: Context) -> float:
        est = None
        if self.estimator is not None:
            est = self.estimator.predict_for(ctx)
        if est is None:
            est = ctx.estimated_gpu_seconds
        if est is None:
            est = 1.0
        return max(max(est - ctx.gpu_seconds_used, 0.0), self.min_service_s)

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None

        def ratio(ctx: Context) -> float:
            wait = max(ctx.env.now - ctx.wait_since, 0.0)
            service = self._service(ctx)
            return (wait + service) / service

        return min(waiting, key=lambda c: (-ratio(c), c.context_id))


class FairSharePolicy(_BasePolicy):
    """Hierarchical unweighted fair share with usage decay: group, then
    user, then FCFS.

    The classic HPC fair-share tree (Slurm's multifactor priority)
    flattened to two levels: among the waiters, first equalize *group*
    GPU-time consumption, within the winning group equalize *user*
    (tenant) consumption, and break ties FCFS.  Unlike ``wfq`` this
    ignores contract weights — every user deserves the same slice,
    which is what the Jain's-fairness column of the trace bake-off
    measures — and it adds the group level that production traces
    (users belong to departments) need.

    Usage is **exponentially decayed** with ``half_life_s`` exactly as
    production fair-share schedulers do: a burst submitted an hour ago
    is forgiven, and ordering reflects *recent* consumption.  Without
    decay, cumulative usage turns into a strict priority inversion
    against heavy users — the top Zipf user in a production trace is
    starved for the whole run and its slowdown tail explodes, which is
    anti-fair by the very metric fair share exists to protect.  Decayed
    per-user fair share approximates per-user processor sharing, whose
    hallmark is *equalized slowdowns* across users regardless of their
    demand.

    Group aggregates sum over **all** tenants of the group, not just the
    currently waiting ones, via ``tenants_fn`` (wired by the runtime to
    the node's :class:`~repro.qos.TenantRegistry`); without the wiring
    the aggregate degrades to the waiter's own tenant usage.  Contexts
    with no tenant compete on their own (undecayed) consumed GPU
    seconds.
    """

    name = "fairshare"

    def __init__(self, half_life_s: float = 30.0) -> None:
        #: Wired by the runtime: () -> all registered tenants.
        self.tenants_fn: Optional[Callable[[], List]] = None
        #: Usage forgiveness half-life (simulated seconds); <= 0
        #: disables decay (pure cumulative fair share).
        self.half_life_s = half_life_s
        #: tenant name -> [decayed_usage, last_raw_usage, last_update_t]
        self._ledger: Dict[str, List[float]] = {}

    def _decayed_usage(self, tenant, now: float) -> float:
        """Incrementally maintained ``Σ Δusage·2^(-age/half_life)``."""
        entry = self._ledger.get(tenant.name)
        raw = tenant.gpu_seconds_used
        if entry is None:
            entry = [0.0, 0.0, now]
            self._ledger[tenant.name] = entry
        decayed, last_raw, last_t = entry
        if self.half_life_s > 0 and now > last_t:
            decayed *= 0.5 ** ((now - last_t) / self.half_life_s)
        decayed += max(raw - last_raw, 0.0)
        entry[0], entry[1], entry[2] = decayed, raw, now
        return decayed

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        now = waiting[0].env.now
        usage: Dict[str, float] = {}
        group_usage: Dict[str, float] = {}
        if self.tenants_fn is not None:
            for tenant in self.tenants_fn():
                used = self._decayed_usage(tenant, now)
                usage[tenant.name] = used
                group = getattr(tenant, "group", None)
                if group is not None:
                    group_usage[group] = group_usage.get(group, 0.0) + used

        def key(ctx: Context):
            tenant = getattr(ctx, "tenant", None)
            if tenant is None:
                return (ctx.gpu_seconds_used, ctx.gpu_seconds_used,
                        ctx.context_id)
            t_used = usage.get(tenant.name)
            if t_used is None:
                t_used = self._decayed_usage(tenant, now)
            group = getattr(tenant, "group", None)
            g_used = group_usage.get(group, t_used)
            return (g_used, t_used, ctx.context_id)

        return min(waiting, key=key)


class LotteryPolicy(_BasePolicy):
    """Ticket-weighted lottery scheduling (proportional-share).

    Every waiting context holds tickets equal to its tenant's contract
    ``weight`` (tenantless contexts hold 1.0), and the next context to
    serve is drawn with probability proportional to its tickets.  The
    expected GPU-time split matches ``wfq``'s deterministic one, but
    with no virtual-time ledger and no possibility of starvation: any
    waiter with nonzero tickets eventually wins.

    Draws are pulled from the ``"lottery"`` stream of an
    :class:`~repro.sim.rng.RngStreams` tree, so the schedule is a pure
    function of the seed — two runs with the same seed and workload
    make identical picks, and other randomness consumers (trace
    generators, failure injectors) cannot perturb it.
    """

    name = "lottery"

    def __init__(self, seed: int = 0) -> None:
        from repro.sim.rng import RngStreams

        #: Replaceable by the harness/runtime (wired like the other
        #: policy hooks): any object with ``random() -> [0, 1)``.
        self.rng = RngStreams(seed).stream("lottery")

    @staticmethod
    def _tickets(ctx: Context) -> float:
        tenant = getattr(ctx, "tenant", None)
        if tenant is None:
            return 1.0
        return tenant.weight

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        if len(waiting) == 1:
            return waiting[0]
        tickets = [self._tickets(c) for c in waiting]
        total = sum(tickets)
        draw = self.rng.random() * total
        acc = 0.0
        for ctx, t in zip(waiting, tickets):
            acc += t
            if draw < acc:
                return ctx
        return waiting[-1]  # draw == total edge (fp roundup)


_POLICIES = {
    p.name: p
    for p in (
        FcfsPolicy,
        SjfPolicy,
        CreditPolicy,
        DeadlinePolicy,
        WeightedFairPolicy,
        LocalityPolicy,
        EstimatorSjfPolicy,
        HrrnPolicy,
        FairSharePolicy,
        LotteryPolicy,
    )
}

#: Registered policy names — the single source for CLI choices and
#: config validation (do not hand-maintain copies of this tuple).
POLICY_NAMES: Tuple[str, ...] = tuple(sorted(_POLICIES))


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by its registered name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(_POLICIES)}") from None
