"""Pluggable scheduling policies (paper §2 "Configurable Scheduling").

A policy makes two decisions for the dispatcher:

- *placement*: given a context to bind and the currently idle vGPUs,
  which vGPU to use (:meth:`SchedulingPolicy.select_vgpu`);
- *ordering*: given the waiting-contexts list and a freed vGPU, which
  context to serve next (:meth:`SchedulingPolicy.pick_next`).

Three policies from the paper's discussion are provided:

``fcfs``
    First-come-first-served with round-robin placement that keeps the
    number of active vGPUs uniform across GPUs — the policy used for all
    of the paper's experiments (§5).
``sjf``
    Shortest-job-first, usable when profiling information (an estimated
    GPU time) accompanies the connection.
``credit``
    Credit-based fairness: the context that has consumed the least GPU
    time so far goes first.

Plus ``edf`` (deadline QoS), ``wfq`` (weighted-fair across tenants) and
``locality`` (cost-model-driven: bind waiters where their data lives —
see :mod:`repro.core.memory.costmodel` and ``docs/scheduling.md``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.context import Context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.vgpu import VirtualGPU

__all__ = [
    "SchedulingPolicy",
    "FcfsPolicy",
    "SjfPolicy",
    "CreditPolicy",
    "DeadlinePolicy",
    "WeightedFairPolicy",
    "LocalityPolicy",
    "POLICY_NAMES",
    "make_policy",
]


class SchedulingPolicy:
    """Interface for dispatcher scheduling decisions."""

    name = "abstract"

    def select_vgpu(
        self,
        ctx: Context,
        idle_vgpus: Sequence["VirtualGPU"],
        active_per_device: Dict[int, int],
        mem_needed: int = 0,
    ) -> Optional["VirtualGPU"]:
        """Choose a vGPU for ``ctx`` among ``idle_vgpus`` (None = decline).

        ``active_per_device`` maps device id → number of currently bound
        vGPUs on that device (for load balancing).
        """
        raise NotImplementedError

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        """Choose the next waiting context to serve."""
        raise NotImplementedError


class _BasePolicy(SchedulingPolicy):
    """Shared placement heuristic: keep active vGPU counts uniform across
    devices (the paper's load balancing), avoid devices that cannot hold
    the context's data right now, then favour faster devices."""

    def select_vgpu(
        self,
        ctx: Context,
        idle_vgpus: Sequence["VirtualGPU"],
        active_per_device: Dict[int, int],
        mem_needed: int = 0,
    ) -> Optional["VirtualGPU"]:
        if not idle_vgpus:
            return None

        def key(vgpu: "VirtualGPU"):
            device = vgpu.device
            memory_short = 1 if device.allocator.free_bytes < mem_needed else 0
            active = active_per_device.get(device.device_id, 0)
            # Load per unit of compute: on homogeneous devices this is the
            # paper's uniform-active-vGPU balancing; on heterogeneous
            # nodes it avoids oversubscribing the slow GPU.
            weighted_load = (active + 1) / device.spec.effective_gflops
            return (
                memory_short,
                weighted_load,
                -device.spec.effective_gflops,
                device.device_id,
                vgpu.index,
            )

        return min(idle_vgpus, key=key)


class FcfsPolicy(_BasePolicy):
    """First-come-first-served (paper's experimental policy)."""

    name = "fcfs"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        return waiting[0] if waiting else None


class SjfPolicy(_BasePolicy):
    """Shortest-job-first on the profiling hint; FCFS among unknowns."""

    name = "sjf"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(
            waiting,
            key=lambda c: (
                c.estimated_gpu_seconds
                if c.estimated_gpu_seconds is not None
                else float("inf"),
                c.context_id,
            ),
        )


class CreditPolicy(_BasePolicy):
    """Serve the context that has consumed the least GPU time so far."""

    name = "credit"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(waiting, key=lambda c: (c.gpu_seconds_used, c.context_id))


class DeadlinePolicy(_BasePolicy):
    """Earliest-deadline-first for QoS requirements (paper §2: "yet
    another scheduling policy may be adopted in the presence of expected
    quality of service requirements (e.g.: execution deadlines)").

    Contexts without a deadline are served after all deadlined ones, in
    FCFS order.
    """

    name = "edf"

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(
            waiting,
            key=lambda c: (
                c.deadline_s if c.deadline_s is not None else float("inf"),
                c.context_id,
            ),
        )


class WeightedFairPolicy(_BasePolicy):
    """Weighted-fair queueing across *tenants* (repro.qos).

    Each tenant's accumulated GPU seconds are normalized by its weight
    (the wfq virtual time); the waiting context whose tenant has the
    smallest normalized usage goes first, so a weight-2 tenant receives
    twice the GPU time of a weight-1 tenant under contention.  Within a
    tenant (and for contexts with no tenant, which compete at weight
    1.0 on their own usage) the credit rule breaks ties: least GPU time
    consumed first, then FCFS.
    """

    name = "wfq"

    @staticmethod
    def _virtual_time(ctx: Context) -> float:
        tenant = getattr(ctx, "tenant", None)
        if tenant is not None:
            return tenant.normalized_gpu_seconds()
        return ctx.gpu_seconds_used

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        return min(
            waiting,
            key=lambda c: (self._virtual_time(c), c.gpu_seconds_used, c.context_id),
        )


class LocalityPolicy(_BasePolicy):
    """Bind waiters where their data lives (§4.4 cost-driven binding).

    Ordering consults the node's :class:`TransferCostModel` (wired by the
    runtime after construction, like the eviction policies' hooks): when
    a vGPU frees, the waiter with the cheapest modeled time-to-first-
    kernel over the currently idle vGPUs goes next — typically the one
    whose retained working set is resident on the freed device.  Without
    the wiring (or with no idle vGPU) it degrades to FCFS.

    Starvation guard: each time the front (oldest) waiter is passed over
    for a younger waiter with better locality, its skip counter ticks;
    after :attr:`max_skips` consecutive skips the front waiter is served
    regardless of cost, so locality can reorder but never indefinitely
    delay.
    """

    name = "locality"

    #: Consecutive pass-overs before the oldest waiter is forced through.
    max_skips = 8

    def __init__(self) -> None:
        self.cost_model = None
        #: Wired by the runtime: () -> currently idle vGPUs.
        self.idle_vgpus_fn = None

    def pick_next(self, waiting: Sequence[Context]) -> Optional[Context]:
        if not waiting:
            return None
        front = waiting[0]
        if self.cost_model is None or self.idle_vgpus_fn is None:
            return front
        if front.locality_skips >= self.max_skips:
            front.locality_skips = 0
            return front
        idle = self.idle_vgpus_fn()
        if not idle:
            return front
        model = self.cost_model
        active = model.scheduler.active_per_device()

        def best_cost(ctx: Context) -> float:
            return min(model.bind_cost(ctx, v, active) for v in idle)

        chosen = min(waiting, key=lambda c: (best_cost(c), c.context_id))
        if chosen is front:
            front.locality_skips = 0
        else:
            front.locality_skips += 1
        chosen.locality_skips = 0
        return chosen


_POLICIES = {
    p.name: p
    for p in (
        FcfsPolicy,
        SjfPolicy,
        CreditPolicy,
        DeadlinePolicy,
        WeightedFairPolicy,
        LocalityPolicy,
    )
}

#: Registered policy names — the single source for CLI choices and
#: config validation (do not hand-maintain copies of this tuple).
POLICY_NAMES: Tuple[str, ...] = tuple(sorted(_POLICIES))


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by its registered name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(f"unknown policy {name!r}; known: {sorted(_POLICIES)}") from None
