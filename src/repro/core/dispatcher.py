"""The dispatcher (paper §4.3).

Dispatcher threads dequeue pending connections and serve their calls:

1. registration functions are issued to the CUDA runtime immediately —
   they always precede context creation, so they are safe to service
   before any application-to-GPU binding exists;
2. device-management functions are serviced and typically overridden
   (``cudaSetDevice`` is ignored; ``cudaGetDeviceCount`` returns the
   number of *virtual* GPUs);
3. memory operations are handled entirely in terms of virtual addresses
   by the memory manager — no CUDA runtime interaction;
4. binding to a virtual GPU is delayed until the first kernel launch,
   enabling informed scheduling decisions; if every vGPU is busy the
   context joins the waiting list;
5. failures move the context to the failed list, from which recovery
   rebinds it to a healthy device and replays its journal (§4.6).

The implementation is one handler process per connection — the paper's
"multithreaded dispatcher: each dispatcher thread processes a different
connection".
"""

from __future__ import annotations

from typing import Generator, List, TYPE_CHECKING

from repro.net.rpc import Request, Response
from repro.net.socket import Socket
from repro.simcuda import timing
from repro.simcuda.errors import CudaError, CudaRuntimeError

from repro.obs.span import CallSpan

from repro.core.context import Context, ContextState
from repro.core.errors import RuntimeApiError
from repro.core.memory.manager import NeedRetry
from repro.core.offload import OFFLOAD_TAG
from repro.core.protocol import CallType, REGISTRATION_CALLS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["Dispatcher"]

#: Non-CUDA handshake carrying the application's identity and optional
#: profiling hint (estimated GPU seconds, used by the SJF policy).
HELLO_METHOD = "reproHello"


class Dispatcher:
    """Schedules intercepted CUDA calls onto virtual GPUs."""

    def __init__(self, runtime: "NodeRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.config = runtime.config
        self.stats = runtime.stats
        self.memory = runtime.memory
        self.scheduler = runtime.scheduler
        self.obs = runtime.obs
        self._call_latency = runtime.metrics.histogram(
            "call_latency_seconds", "dispatcher time per intercepted call"
        )
        #: Failed contexts awaiting/undergoing recovery (paper Figure 3).
        self.failed_contexts: List[Context] = []
        #: All contexts ever served (experiment bookkeeping).
        self.contexts: List[Context] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.env.process(self._dispatch_loop(), name="dispatcher")

    def _dispatch_loop(self) -> Generator:
        """Dequeue pending connections; offload or serve locally."""
        while True:
            sock: Socket = yield self.runtime.connections.next_connection()
            self.stats.connections_accepted += 1
            if self.obs.enabled:
                self.obs.queue_depth(
                    "pending_connections", self.runtime.connections.pending_count
                )
                self._observe_socket(sock)
            peer = None
            already_offloaded = sock.peer_name.endswith(OFFLOAD_TAG)
            if (
                self.config.offload_enabled
                and self.runtime.offloader is not None
                and not already_offloaded
            ):
                peer = self.runtime.offloader.choose_peer()
            if peer is not None:
                self.stats.offloads_out += 1
                if self.obs.enabled:
                    self.obs.offload(sock.peer_name, peer.name)
                self.env.process(
                    self.runtime.offloader.proxy(sock, peer),
                    name=f"offload-proxy-{sock.socket_id}",
                )
            else:
                self.env.process(
                    self._serve_connection(sock), name=f"handler-{sock.socket_id}"
                )

    def _observe_socket(self, sock: Socket) -> None:
        """Tracing only: watch the connection's channels — bytes/messages
        into net counters, receive-queue depth onto the event bus."""
        metrics = self.runtime.metrics
        messages = metrics.counter("net_messages_total", "messages over served sockets")
        nbytes = metrics.counter("net_bytes_total", "payload bytes over served sockets")
        queue = f"sock{sock.socket_id}-rx"

        def on_activity(direction: str, action: str, n: int, pending: int) -> None:
            if action == "send":
                messages.inc()
                nbytes.inc(n)
            elif action == "deliver" and direction == "rx":
                self.obs.queue_depth(queue, pending)

        sock.attach_observer(on_activity)

    # ------------------------------------------------------------------
    def _serve_connection(self, sock: Socket) -> Generator:
        # Generator locals persist across yields: bind the per-call
        # constants once instead of chasing attribute chains on every
        # iteration of the hottest loop in the simulator.
        env = self.env
        obs = self.obs
        stats = self.stats
        recv = sock.recv
        latency_observe = self._call_latency.observe
        slo_observe = self.runtime.slo.observe_call
        migration = self.runtime.migration
        ctx = Context(env, owner=sock.peer_name)
        ctx.enter_cpu_phase(env.now)
        self.contexts.append(ctx)
        lock_acquire = ctx.lock.acquire
        lock_release = ctx.lock.release
        while True:
            req: Request = yield recv()
            ctx.leave_cpu_phase()
            span = None
            if obs.enabled:
                # The span's clock starts at the client's send timestamp,
                # so the request's wire leg lands in the "rpc" phase.
                span = CallSpan(
                    env,
                    trace_id=getattr(req, "trace_id", None),
                    span_id=getattr(req, "span_id", None) or req.request_id,
                    begin_at=getattr(req, "sent_at", None),
                )
                ctx.span = span
                span.push("queue_wait")
            yield lock_acquire()
            if span is not None:
                span.pop()
            value, error, resp_bytes = None, None, 0
            begin_at = obs.call_begin(ctx, req.method) if obs.enabled else None
            t0 = env.now
            try:
                while True:
                    try:
                        if ctx.state is ContextState.FAILED:
                            yield from self._recover(ctx)
                        value, resp_bytes = yield from self._dispatch(ctx, req)
                        ctx.rebind_attempts = 0
                        break
                    except CudaRuntimeError as exc:
                        if (
                            exc.code == CudaError.cudaErrorDevicesUnavailable
                            and ctx.rebind_attempts
                            < self.config.max_failed_rebind_attempts
                        ):
                            self._mark_failed(ctx, exc)
                            continue
                        error = exc
                        break
                    except RuntimeApiError as exc:
                        error = exc
                        break
            finally:
                elapsed = env.now - t0
                latency_observe(elapsed)
                slo_observe(ctx, elapsed)
                if begin_at is not None:
                    obs.call_end(
                        ctx, req.method, begin_at,
                        error=type(error).__name__ if error is not None else None,
                    )
                if span is not None:
                    # Everything from here until the response lands is
                    # the reply's wire leg.
                    span.push("rpc")
                ctx.enter_cpu_phase(env.now)
                lock_release()
            resp = Response(
                request_id=req.request_id,
                value=value,
                error=error,
                payload_bytes=resp_bytes,
            )
            stats.calls_served += 1
            yield from sock.send(resp, nbytes=resp.wire_bytes)
            if span is not None:
                ctx.span = None
                obs.phase_breakdown(
                    ctx, req.method, span,
                    error=type(error).__name__ if error is not None else None,
                )
            if req.method == CallType.EXIT:
                return
            if self._quantum_exhausted(ctx):
                # Preemptive time-slicing (repro.qos): the context burned
                # its vGPU quantum while others queue — unbind it at this
                # call boundary (delayed binding makes that safe, §4.4)
                # and let the policy re-order who goes next.
                yield from self._preempt(ctx)
            # The application is back in a CPU phase: a faster idle GPU
            # may now claim it (dynamic binding, §5.3.4).
            migration.maybe_migrate(ctx)
            self._maybe_prefetch(ctx)

    # ------------------------------------------------------------------
    # preemptive time-slicing (repro.qos)
    # ------------------------------------------------------------------
    def _quantum_exhausted(self, ctx: Context) -> bool:
        quantum = self.config.vgpu_quantum_s
        return (
            quantum is not None
            and ctx.bound
            and ctx.state is ContextState.ASSIGNED
            and not ctx.excluded_from_sharing
            and ctx.quantum_used_s >= quantum
            and self.scheduler.waiting_count > 0
        )

    def _preempt(self, ctx: Context) -> Generator:
        """Unbind a quantum-expired context at a call boundary.

        Same lock-acquire-and-recheck discipline as the CPU-phase reaper
        and migration: the context may have exited, failed, or been
        swapped out by someone else while we queued for its lock.
        """
        yield ctx.lock.acquire()
        try:
            if not (
                ctx.bound
                and ctx.in_cpu_phase
                and ctx.state is ContextState.ASSIGNED
                and self.scheduler.waiting_count > 0
            ):
                return
            vgpu = ctx.vgpu
            used = ctx.quantum_used_s
            # In-flight overlap-engine write-backs target this context's
            # device memory; they must land before swap-out releases it
            # (swap_out_context drains too, but an explicit barrier here
            # keeps the invariant even if that path changes).
            yield from self.memory._drain_writebacks(ctx)
            if self.config.locality_binding:
                # Retention unbind: write dirty chunks back but leave the
                # device copy cached, so a rebind to the same vGPU skips
                # the re-fault entirely (§4.4 locality-aware binding).
                yield from self.memory.unbind_retain(ctx)
            else:
                yield from self.memory.swap_out_context(ctx)
            self.scheduler.release(ctx, "quantum expired")
            self.stats.preemptions += 1
            if ctx.tenant is not None:
                ctx.tenant.preemptions += 1
            if self.obs.enabled:
                self.obs.preemption(
                    ctx, vgpu, self.config.vgpu_quantum_s, used
                )
        finally:
            ctx.lock.release()

    # ------------------------------------------------------------------
    # overlap engine: CPU-phase prefetch (§4.5 "overlap computation and
    # communication")
    # ------------------------------------------------------------------
    def _maybe_prefetch(self, ctx: Context) -> None:
        """After responding to a call, stage the predicted next-launch
        working set while the application computes on the CPU."""
        if (
            not self.config.prefetch_enabled
            or not ctx.bound
            or not ctx.last_launch_vptrs
        ):
            return
        self.env.process(
            self._prefetch(ctx, ctx.last_launch_vptrs),
            name=f"prefetch-{ctx.owner}",
        )

    def _prefetch(self, ctx: Context, vptrs) -> Generator:
        if ctx.lock.locked:
            # The next call already arrived; prefetching now would only
            # delay it.
            return
        yield ctx.lock.acquire()
        try:
            # Re-check under the lock: the context may have been swapped
            # out, migrated, failed, or have left its CPU phase.
            if (
                ctx.bound
                and ctx.in_cpu_phase
                and ctx.state is ContextState.ASSIGNED
            ):
                try:
                    yield from self.memory.prefetch(ctx, vptrs)
                except CudaRuntimeError:
                    # Device trouble mid-prefetch is not the application's
                    # problem; the next real call handles recovery.
                    pass
        finally:
            ctx.lock.release()

    # ------------------------------------------------------------------
    # call dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, ctx: Context, req: Request) -> Generator:
        """Returns (value, response_payload_bytes)."""
        yield self.env.timeout(self.config.dispatcher_overhead_s)
        method = req.method
        args = req.args

        if method == HELLO_METHOD:
            if args.get("owner"):
                ctx.owner = args["owner"]
            ctx.estimated_gpu_seconds = args.get("estimated_gpu_seconds")
            ctx.application_id = args.get("application_id")
            ctx.deadline_s = args.get("deadline_s")
            ctx.estimated_bytes = args.get("estimated_bytes")
            tenant_name = args.get("tenant")
            if tenant_name:
                ctx.tenant = self.runtime.qos.get_or_create(tenant_name)
            # Admission control (repro.qos): the gate sits here, at the
            # first moment tenant identity is known — a rejected
            # handshake surfaces as a typed error on Frontend.open(),
            # a queued one blocks until a slot frees.  The slot is
            # returned in _exit.
            span = ctx.span
            if span is not None:
                span.push("queue_wait")
            try:
                yield from self.runtime.admission.admit(ctx)
            finally:
                if span is not None:
                    span.pop()
            if ctx.tenant is not None:
                ctx.tenant.attach(ctx)
            return None, 0

        if method in REGISTRATION_CALLS:
            return (yield from self._registration(ctx, req))

        if method == CallType.SET_DEVICE:
            # Overridden: the runtime masks explicit GPU procurement (§2).
            return None, 0
        if method == CallType.GET_DEVICE_COUNT:
            # Overridden: report virtual, not physical, GPUs (§4.3).
            return self.scheduler.total_vgpus, 0

        if method == CallType.MALLOC:
            return self.memory.malloc(ctx, args["size"]), 0
        if method == CallType.FREE:
            yield from self.memory.free(ctx, args["vptr"])
            return None, 0
        if method == CallType.MEMCPY_H2D:
            yield from self.memory.copy_h2d(ctx, args["vptr"], args["nbytes"])
            return None, 0
        if method == CallType.MEMCPY_D2H:
            yield from self.memory.copy_d2h(ctx, args["vptr"], args["nbytes"])
            return None, args["nbytes"]

        if method == CallType.CONFIGURE_CALL:
            ctx.pending_config = (args.get("grid", (1, 1, 1)), args.get("block", (256, 1, 1)))
            return None, 0
        if method == CallType.LAUNCH:
            yield from self._launch(ctx, req)
            return None, 0
        if method == CallType.THREAD_SYNCHRONIZE:
            return None, 0

        if method == CallType.REGISTER_NESTED:
            self.memory.register_nested(
                ctx, args["parent"], args["members"], args["offsets"]
            )
            return None, 0
        if method == CallType.CHECKPOINT:
            if ctx.bound:
                yield from self.memory.checkpoint(ctx)
            return None, 0

        if method == CallType.EXIT:
            yield from self._exit(ctx)
            return None, 0

        raise ValueError(f"unknown intercepted call {method!r}")

    def _registration(self, ctx: Context, req: Request) -> Generator:
        """Registration functions precede context creation and are issued
        straight to the CUDA runtime (they carry no binding decision)."""
        yield self.env.timeout(timing.REGISTRATION_SECONDS)
        if req.method == CallType.REGISTER_FATBIN:
            fatbin = req.args["fatbin"]
            ctx.fatbins.append(fatbin)
            if fatbin.needs_exclusion_from_sharing:
                # Device-side dynamic allocation: served, but excluded
                # from sharing and dynamic scheduling (§1).
                ctx.excluded_from_sharing = True
            return fatbin.handle, 0
        if req.method == CallType.REGISTER_FUNCTION:
            descriptor = req.args["descriptor"]
            fatbin = next(
                (f for f in ctx.fatbins if f.handle == req.args["fatbin_handle"]), None
            )
            if fatbin is not None and descriptor.name not in fatbin.functions:
                fatbin.register_function(descriptor)
            if descriptor.uses_dynamic_alloc:
                ctx.excluded_from_sharing = True
            return None, 0
        # vars / textures / shared: symbol bookkeeping on the fat binary
        fatbin = next(
            (f for f in ctx.fatbins if f.handle == req.args.get("fatbin_handle")),
            None,
        )
        if fatbin is not None:
            name = req.args.get("name", "")
            if req.method == CallType.REGISTER_VAR:
                fatbin.register_var(name)
            elif req.method == CallType.REGISTER_TEXTURE:
                fatbin.register_texture(name)
            elif req.method == CallType.REGISTER_SHARED_VAR:
                fatbin.register_shared_var(name)
        return None, 0

    # ------------------------------------------------------------------
    # launch path: delayed binding + swap retries (§4.3, §4.5)
    # ------------------------------------------------------------------
    def _launch(self, ctx: Context, req: Request) -> Generator:
        if ctx.pending_config is None:
            raise CudaRuntimeError(
                CudaError.cudaErrorMissingConfiguration,
                "cudaLaunch without cudaConfigureCall",
            )
        # Keep the configuration until the launch succeeds: the call may
        # be retried wholesale after a device failure.
        grid, block = ctx.pending_config
        kernel = req.args["kernel"]
        vptrs = tuple(req.args.get("args", ()))
        read_only = tuple(req.args.get("read_only", ()))

        backoff = self.config.swap_retry_backoff_s
        while True:
            if not ctx.bound:
                yield from self.scheduler.request_binding(ctx)
            ctx.last_call = req
            try:
                duration = yield from self.memory.prepare_and_launch(
                    ctx, kernel, vptrs, read_only, grid=grid, block=block
                )
                break
            except NeedRetry:
                # No device memory, no victim: unbind, retry later (§4.5).
                # Wake early if anyone releases device memory; otherwise
                # back off exponentially so stuck launches do not spin.
                # The lost time is off-device time: "preempted".
                span = ctx.span
                if span is not None:
                    span.push("preempted")
                try:
                    yield from self.memory.swap_out_context(ctx, notify=False)
                    self.scheduler.release(ctx, "swap retry")
                    # When either branch wins, the AnyOf cancels the loser:
                    # a spent timeout leaves the kernel heap, an unneeded
                    # waiter leaves memory_freed's queue — so a later
                    # notify cannot be swallowed by this retry's ghost.
                    timeout = self.env.timeout(backoff)
                    freed = self.memory.memory_freed.wait()
                    yield self.env.any_of([timeout, freed])
                finally:
                    if span is not None:
                        span.pop()
                backoff = min(backoff * 2, self.config.swap_retry_max_backoff_s)

        ctx.pending_config = None
        threshold = self.config.checkpoint_kernel_seconds
        if threshold is not None and duration >= threshold:
            # Automatic checkpoint after long-running kernels (§4.6).
            yield from self.memory.checkpoint(ctx)

    # ------------------------------------------------------------------
    # failure handling (§4.6)
    # ------------------------------------------------------------------
    def _mark_failed(self, ctx: Context, exc: CudaRuntimeError) -> None:
        ctx.error = exc
        ctx.state = ContextState.FAILED
        ctx.rebind_attempts += 1
        if ctx not in self.failed_contexts:
            self.failed_contexts.append(ctx)
        if ctx.vgpu is not None:
            dead_device = ctx.vgpu.device
            ctx.vgpu.unbind(ctx)
            if dead_device.failed:
                self.runtime.note_device_failure(dead_device)
        self.memory.reset_after_failure(ctx)

    def replay_journal(self, ctx: Context) -> Generator:
        """Replay a context's journaled kernels; returns how many.

        The single replay implementation (§4.6): device-failure recovery
        and full-node restart both run this loop.  Each journaled kernel
        is re-executed through the ordinary launch path (re-journaling
        included), so replay survives memory pressure on the new device —
        a mid-replay swap-out captures the replayed prefix in the swap
        area while the suffix stays pending here.
        """
        pending = list(ctx.replay_journal)
        ctx.replay_journal.clear()
        backoff = self.config.swap_retry_backoff_s
        index = 0
        while index < len(pending):
            if not ctx.bound:
                yield from self.scheduler.request_binding(ctx, front=True)
            launch = pending[index]
            try:
                yield from self.memory.prepare_and_launch(
                    ctx,
                    launch.kernel,
                    launch.arg_pointers,
                    launch.read_only or (),
                    grid=launch.grid,
                    block=launch.block,
                )
                self.stats.replayed_kernels += 1
                index += 1
            except NeedRetry:
                span = ctx.span
                if span is not None:
                    span.push("preempted")
                try:
                    yield from self.memory.swap_out_context(ctx, notify=False)
                    self.scheduler.release(ctx, "replay retry")
                    # As in _launch: the losing branch is cancelled, not
                    # left as a ghost waiter/heap entry.
                    timeout = self.env.timeout(backoff)
                    freed = self.memory.memory_freed.wait()
                    yield self.env.any_of([timeout, freed])
                finally:
                    if span is not None:
                        span.pop()
                backoff = min(backoff * 2, self.config.swap_retry_max_backoff_s)
        if not ctx.bound:
            yield from self.scheduler.request_binding(ctx, front=True)
        return len(pending)

    def _recover(self, ctx: Context) -> Generator:
        """Rebind a failed context to a healthy device and replay."""
        replayed = yield from self.replay_journal(ctx)
        ctx.state = ContextState.ASSIGNED
        ctx.error = None
        if ctx in self.failed_contexts:
            self.failed_contexts.remove(ctx)
        self.stats.failures_recovered += 1
        if self.obs.enabled:
            self.obs.failure_recovered(ctx, replayed_kernels=replayed)

    # ------------------------------------------------------------------
    def _exit(self, ctx: Context) -> Generator:
        yield from self.memory.release_context(ctx)
        if ctx.bound:
            self.scheduler.release(ctx, "exit")
        else:
            self.scheduler.cancel_wait(ctx)
        self.runtime.admission.release(ctx)
        if ctx.tenant is not None:
            ctx.tenant.detach(ctx)
        ctx.state = ContextState.DONE
        ctx.finished_at = self.env.now
