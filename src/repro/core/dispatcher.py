"""The dispatcher (paper §4.3).

Dispatcher threads dequeue pending connections and serve their calls:

1. registration functions are issued to the CUDA runtime immediately —
   they always precede context creation, so they are safe to service
   before any application-to-GPU binding exists;
2. device-management functions are serviced and typically overridden
   (``cudaSetDevice`` is ignored; ``cudaGetDeviceCount`` returns the
   number of *virtual* GPUs);
3. memory operations are handled entirely in terms of virtual addresses
   by the memory manager — no CUDA runtime interaction;
4. binding to a virtual GPU is delayed until the first kernel launch,
   enabling informed scheduling decisions; if every vGPU is busy the
   context joins the waiting list;
5. failures move the context to the failed list, from which recovery
   rebinds it to a healthy device and replays its journal (§4.6).

The implementation is one handler process per connection — the paper's
"multithreaded dispatcher: each dispatcher thread processes a different
connection".
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.net.rpc import BatchRequest, BatchResponse, Request, Response
from repro.net.socket import Socket
from repro.simcuda import timing
from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.kernels import KernelLaunch

from repro.obs.span import CallSpan

from repro.core.context import Context, ContextState
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.core.memory.manager import NeedRetry
from repro.core.offload import OFFLOAD_TAG
from repro.core.protocol import CallType, REGISTRATION_CALLS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["Dispatcher", "GraphInstance"]

#: Non-CUDA handshake carrying the application's identity and optional
#: profiling hint (estimated GPU seconds, used by the SJF policy).
HELLO_METHOD = "reproHello"

_graph_ids = itertools.count(1)


@dataclasses.dataclass
class GraphInstance:
    """An instantiated launch sequence (CUDA-Graph-style replay unit).

    ``template`` holds the captured :class:`KernelLaunch` records with
    *virtual* pointers.  ``epoch``/``device_id`` cache the page-table
    residency epoch and the bound device after the last execution: if the
    epoch is unchanged at the next replay, nothing anywhere in the table
    moved, so the baked translations are still good and the whole graph
    is re-issued for a single control-plane charge.  Validity only
    affects *charging* and stats — execution always runs through
    ``prepare_and_launch``, which re-faults anything missing.
    """

    graph_id: int
    template: Tuple[KernelLaunch, ...]
    epoch: Optional[int] = None
    device_id: Optional[int] = None


class Dispatcher:
    """Schedules intercepted CUDA calls onto virtual GPUs."""

    def __init__(self, runtime: "NodeRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.config = runtime.config
        self.stats = runtime.stats
        self.memory = runtime.memory
        self.scheduler = runtime.scheduler
        self.obs = runtime.obs
        self._call_latency = runtime.metrics.histogram(
            "call_latency_seconds", "dispatcher time per intercepted call"
        )
        #: Failed contexts awaiting/undergoing recovery (paper Figure 3).
        self.failed_contexts: List[Context] = []
        #: All contexts ever served (experiment bookkeeping).
        self.contexts: List[Context] = []

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.env.process(self._dispatch_loop(), name="dispatcher")

    def _dispatch_loop(self) -> Generator:
        """Dequeue pending connections; offload or serve locally."""
        while True:
            sock: Socket = yield self.runtime.connections.next_connection()
            self.stats.connections_accepted += 1
            if self.obs.enabled:
                self.obs.queue_depth(
                    "pending_connections", self.runtime.connections.pending_count
                )
                self._observe_socket(sock)
            peer = None
            already_offloaded = sock.peer_name.endswith(OFFLOAD_TAG)
            if (
                self.config.offload_enabled
                and self.runtime.offloader is not None
                and not already_offloaded
            ):
                peer = self.runtime.offloader.choose_peer()
            if peer is not None:
                self.stats.offloads_out += 1
                if self.obs.enabled:
                    self.obs.offload(sock.peer_name, peer.name)
                self.env.process(
                    self.runtime.offloader.proxy(sock, peer),
                    name=f"offload-proxy-{sock.socket_id}",
                )
            else:
                self.env.process(
                    self._serve_connection(sock), name=f"handler-{sock.socket_id}"
                )

    def _observe_socket(self, sock: Socket) -> None:
        """Tracing only: watch the connection's channels — bytes/messages
        into net counters, receive-queue depth onto the event bus."""
        metrics = self.runtime.metrics
        messages = metrics.counter("net_messages_total", "messages over served sockets")
        nbytes = metrics.counter("net_bytes_total", "payload bytes over served sockets")
        queue = f"sock{sock.socket_id}-rx"

        def on_activity(direction: str, action: str, n: int, pending: int) -> None:
            if action == "send":
                messages.inc()
                nbytes.inc(n)
            elif action == "deliver" and direction == "rx":
                self.obs.queue_depth(queue, pending)

        sock.attach_observer(on_activity)

    # ------------------------------------------------------------------
    def _serve_connection(self, sock: Socket) -> Generator:
        # Generator locals persist across yields: bind the per-call
        # constants once instead of chasing attribute chains on every
        # iteration of the hottest loop in the simulator.
        env = self.env
        obs = self.obs
        stats = self.stats
        recv = sock.recv
        latency_observe = self._call_latency.observe
        slo_observe = self.runtime.slo.observe_call
        migration = self.runtime.migration
        ctx = Context(env, owner=sock.peer_name)
        ctx.enter_cpu_phase(env.now)
        self.contexts.append(ctx)
        lock_acquire = ctx.lock.acquire
        lock_release = ctx.lock.release
        while True:
            req: Request = yield recv()
            ctx.leave_cpu_phase()
            if isinstance(req, BatchRequest):
                # Control-plane batching: the whole frame executes in one
                # scheduler round-trip; preemption/migration/prefetch run
                # only at the batch boundary.
                exited = yield from self._serve_batch(sock, ctx, req)
                if exited:
                    return
                if self._quantum_exhausted(ctx):
                    yield from self._preempt(ctx)
                migration.maybe_migrate(ctx)
                self._maybe_prefetch(ctx)
                continue
            span = None
            if obs.enabled:
                # The span's clock starts at the client's send timestamp,
                # so the request's wire leg lands in the "rpc" phase.
                span = CallSpan(
                    env,
                    trace_id=getattr(req, "trace_id", None),
                    span_id=getattr(req, "span_id", None) or req.request_id,
                    begin_at=getattr(req, "sent_at", None),
                )
                ctx.span = span
                span.push("queue_wait")
            yield lock_acquire()
            if span is not None:
                span.pop()
            value, error, resp_bytes = None, None, 0
            begin_at = obs.call_begin(ctx, req.method) if obs.enabled else None
            t0 = env.now
            try:
                while True:
                    try:
                        if ctx.state is ContextState.FAILED:
                            yield from self._recover(ctx)
                        value, resp_bytes = yield from self._dispatch(ctx, req)
                        ctx.rebind_attempts = 0
                        break
                    except CudaRuntimeError as exc:
                        if (
                            exc.code == CudaError.cudaErrorDevicesUnavailable
                            and ctx.rebind_attempts
                            < self.config.max_failed_rebind_attempts
                        ):
                            self._mark_failed(ctx, exc)
                            continue
                        error = exc
                        break
                    except RuntimeApiError as exc:
                        error = exc
                        break
            finally:
                elapsed = env.now - t0
                latency_observe(elapsed)
                slo_observe(ctx, elapsed)
                if begin_at is not None:
                    obs.call_end(
                        ctx, req.method, begin_at,
                        error=type(error).__name__ if error is not None else None,
                    )
                if span is not None:
                    # Everything from here until the response lands is
                    # the reply's wire leg.
                    span.push("rpc")
                ctx.enter_cpu_phase(env.now)
                lock_release()
            resp = Response(
                request_id=req.request_id,
                value=value,
                error=error,
                payload_bytes=resp_bytes,
            )
            stats.calls_served += 1
            yield from sock.send(resp, nbytes=resp.wire_bytes)
            if span is not None:
                ctx.span = None
                obs.phase_breakdown(
                    ctx, req.method, span,
                    error=type(error).__name__ if error is not None else None,
                )
            if req.method == CallType.EXIT:
                return
            if self._quantum_exhausted(ctx):
                # Preemptive time-slicing (repro.qos): the context burned
                # its vGPU quantum while others queue — unbind it at this
                # call boundary (delayed binding makes that safe, §4.4)
                # and let the policy re-order who goes next.
                yield from self._preempt(ctx)
            # The application is back in a CPU phase: a faster idle GPU
            # may now claim it (dynamic binding, §5.3.4).
            migration.maybe_migrate(ctx)
            self._maybe_prefetch(ctx)

    # ------------------------------------------------------------------
    # control-plane batching + graph replay
    # ------------------------------------------------------------------
    def _serve_batch(self, sock: Socket, ctx: Context, batch: BatchRequest) -> Generator:
        """Execute one batch frame under a single lock hold and a single
        ``dispatcher_overhead_s`` charge (one scheduler round-trip).

        Per-call results/errors come back in one :class:`BatchResponse`;
        a mid-batch failure aborts the remaining calls with typed
        ``BATCH_ABORTED`` errors while earlier results survive.  Returns
        True when the tail call was a successful EXIT.
        """
        env = self.env
        obs = self.obs
        stats = self.stats
        calls = batch.calls
        stats.batches_submitted += 1
        stats.batched_calls += len(calls)
        arrival = env.now
        if obs.enabled:
            obs.batch_submit(ctx, len(calls), batch.wire_bytes)
            spans: List[Optional[CallSpan]] = []
            for i, req in enumerate(calls):
                # Each call's span starts at its *enqueue* time.  The
                # frame's request wire leg is credited once — to the
                # first call; the rest were queued client-side the whole
                # way (wire_at=arrival ⇒ pure batch_queue pre-history).
                span = CallSpan(
                    env,
                    trace_id=req.trace_id,
                    span_id=req.span_id or req.request_id,
                    begin_at=req.sent_at,
                    wire_at=batch.sent_at if i == 0 else arrival,
                )
                span.push("batch_queue")
                spans.append(span)
        else:
            spans = [None] * len(calls)
        last_span = spans[-1] if spans else None
        responses: List[Response] = []
        last_error: Optional[BaseException] = None
        exited = False
        yield ctx.lock.acquire()
        try:
            yield env.timeout(self.config.dispatcher_overhead_s)
            instance = self._match_graph(ctx, calls)
            if instance is not None:
                responses, last_error = yield from self._serve_batch_as_graph(
                    ctx, calls, spans, instance
                )
            else:
                responses, last_error, exited = yield from self._serve_batch_calls(
                    ctx, calls, spans
                )
        finally:
            if last_span is not None:
                # The reply's wire leg — credited once per batch, to the
                # tail call's span (satisfies Σphases == wall per span).
                last_span.push("rpc")
            ctx.enter_cpu_phase(env.now)
            ctx.lock.release()
        resp = BatchResponse(request_id=batch.request_id, responses=responses)
        yield from sock.send(resp, nbytes=resp.wire_bytes)
        if last_span is not None:
            ctx.span = None
            obs.phase_breakdown(
                ctx,
                calls[-1].method,
                last_span,
                error=type(last_error).__name__ if last_error is not None else None,
            )
        return exited

    def _serve_batch_calls(
        self, ctx: Context, calls: List[Request], spans: List[Optional[CallSpan]]
    ) -> Generator:
        """Per-call execution of a batch frame (no matching graph)."""
        env = self.env
        obs = self.obs
        latency_observe = self._call_latency.observe
        slo_observe = self.runtime.slo.observe_call
        responses: List[Response] = []
        exited = False
        first_error: Optional[BaseException] = None
        first_error_at = 0
        last = len(calls) - 1
        for i, req in enumerate(calls):
            span = spans[i]
            if span is not None:
                span.pop()  # its batch_queue wait ends; execution begins
                ctx.span = span
            begin_at = obs.call_begin(ctx, req.method) if obs.enabled else None
            t0 = env.now
            value, resp_bytes, error = None, 0, None
            if first_error is not None:
                error = RuntimeApiError(
                    RuntimeErrorCode.BATCH_ABORTED,
                    f"call #{i + 1} followed failed call "
                    f"#{first_error_at + 1}: {first_error}",
                )
            else:
                value, resp_bytes, error = yield from self._execute_call(ctx, req)
                if error is not None:
                    first_error, first_error_at = error, i
                elif req.method == CallType.EXIT:
                    exited = True
            elapsed = env.now - t0
            latency_observe(elapsed)
            slo_observe(ctx, elapsed)
            if begin_at is not None:
                obs.call_end(
                    ctx, req.method, begin_at,
                    error=type(error).__name__ if error is not None else None,
                )
            responses.append(
                Response(
                    request_id=req.request_id,
                    value=value,
                    error=error,
                    payload_bytes=resp_bytes,
                )
            )
            self.stats.calls_served += 1
            if span is not None and i < last:
                # Non-tail calls complete here; the reply wire leg is not
                # theirs (it is charged once, to the tail call's span).
                ctx.span = None
                obs.phase_breakdown(
                    ctx, req.method, span,
                    error=type(error).__name__ if error is not None else None,
                )
        if first_error is None:
            self._note_graph_candidate(ctx, calls)
        return responses, (responses[-1].error if responses else None), exited

    def _execute_call(self, ctx: Context, req: Request) -> Generator:
        """One batched call through the same recovery/retry loop as the
        single-call path; returns ``(value, resp_bytes, error)`` instead
        of raising, so the batch can abort its tail and still respond."""
        while True:
            try:
                if ctx.state is ContextState.FAILED:
                    yield from self._recover(ctx)
                value, resp_bytes = yield from self._dispatch_body(ctx, req)
                ctx.rebind_attempts = 0
                return value, resp_bytes, None
            except CudaRuntimeError as exc:
                if (
                    exc.code == CudaError.cudaErrorDevicesUnavailable
                    and ctx.rebind_attempts
                    < self.config.max_failed_rebind_attempts
                ):
                    self._mark_failed(ctx, exc)
                    continue
                return None, 0, exc
            except RuntimeApiError as exc:
                return None, 0, exc

    # -- graph detection / replay --------------------------------------
    @staticmethod
    def _batch_signature(calls: List[Request]) -> Optional[tuple]:
        """Shape key of a launch-only frame: methods, kernel names and
        execution configurations — *not* pointer values, so a matching
        frame replays with its own arguments (parameter patching)."""
        sig = []
        has_launch = False
        for req in calls:
            method = req.method
            if method == CallType.CONFIGURE_CALL:
                sig.append(
                    (
                        "cfg",
                        tuple(req.args.get("grid", (1, 1, 1))),
                        tuple(req.args.get("block", (256, 1, 1))),
                    )
                )
            elif method == CallType.LAUNCH:
                kernel = req.args["kernel"]
                sig.append(
                    ("launch", kernel.name, len(tuple(req.args.get("args", ()))))
                )
                has_launch = True
            else:
                return None
        return tuple(sig) if has_launch else None

    @staticmethod
    def _launch_records(calls: List[Request]) -> List[dict]:
        """Configure/launch pairs → launch parameter records (the
        incoming args are the graph's "parameter patching")."""
        records: List[dict] = []
        grid, block = (1, 1, 1), (256, 1, 1)
        for req in calls:
            if req.method == CallType.CONFIGURE_CALL:
                grid = tuple(req.args.get("grid", (1, 1, 1)))
                block = tuple(req.args.get("block", (256, 1, 1)))
            elif req.method == CallType.LAUNCH:
                records.append(
                    {
                        "kernel": req.args["kernel"],
                        "vptrs": tuple(req.args.get("args", ())),
                        "read_only": tuple(req.args.get("read_only", ())),
                        "grid": grid,
                        "block": block,
                    }
                )
        return records

    def _match_graph(
        self, ctx: Context, calls: List[Request]
    ) -> Optional[GraphInstance]:
        if not self.config.graph_replay_enabled or not ctx.graph_by_signature:
            return None
        sig = self._batch_signature(calls)
        if sig is None:
            return None
        return ctx.graph_by_signature.get(sig)

    def _note_graph_candidate(self, ctx: Context, calls: List[Request]) -> None:
        """Journal-based detection: after ``graph_min_repeats`` identical
        launch-only frames, instantiate a graph so the next match
        replays."""
        if not self.config.graph_replay_enabled:
            return
        sig = self._batch_signature(calls)
        if sig is None or sig in ctx.graph_by_signature:
            return
        seen = ctx.graph_candidates.get(sig, 0) + 1
        if seen < self.config.graph_min_repeats:
            ctx.graph_candidates[sig] = seen
            return
        ctx.graph_candidates.pop(sig, None)
        template = tuple(
            KernelLaunch(
                kernel=r["kernel"],
                grid=r["grid"],
                block=r["block"],
                arg_pointers=r["vptrs"],
                read_only=r["read_only"] or None,
            )
            for r in self._launch_records(calls)
        )
        instance = GraphInstance(graph_id=next(_graph_ids), template=template)
        # The instantiating frame just executed, so its working set is
        # resident right now: the next matching frame replays hot.
        instance.epoch = self.memory.page_table.epoch
        instance.device_id = ctx.vgpu.device.device_id if ctx.bound else None
        ctx.graph_by_signature[sig] = instance
        ctx.graphs[instance.graph_id] = instance
        self.stats.graphs_instantiated += 1
        if self.obs.enabled:
            self.obs.graph_instantiate(
                ctx, instance.graph_id, len(template), explicit=False
            )

    def _serve_batch_as_graph(
        self,
        ctx: Context,
        calls: List[Request],
        spans: List[Optional[CallSpan]],
        instance: GraphInstance,
    ) -> Generator:
        """Replay path: the frame matches an instantiated graph, so it is
        re-issued as one unit instead of being dispatched call by call.
        All execution accrues to the tail call's span; a replay error is
        all-or-nothing (every call of the frame reports it)."""
        env = self.env
        obs = self.obs
        launches = self._launch_records(calls)
        last = len(calls) - 1
        for i, req in enumerate(calls[:last]):
            span = spans[i]
            if obs.enabled:
                begin = obs.call_begin(ctx, req.method)
                obs.call_end(ctx, req.method, begin)
            if span is not None:
                span.pop()
                obs.phase_breakdown(ctx, req.method, span)
            self.stats.calls_served += 1
        last_req = calls[last]
        last_span = spans[last]
        if last_span is not None:
            last_span.pop()
            ctx.span = last_span
        begin_at = obs.call_begin(ctx, last_req.method) if obs.enabled else None
        t0 = env.now
        error: Optional[BaseException] = None
        while True:
            try:
                if ctx.state is ContextState.FAILED:
                    yield from self._recover(ctx)
                yield from self._execute_graph(ctx, instance, launches)
                ctx.rebind_attempts = 0
                break
            except CudaRuntimeError as exc:
                if (
                    exc.code == CudaError.cudaErrorDevicesUnavailable
                    and ctx.rebind_attempts
                    < self.config.max_failed_rebind_attempts
                ):
                    self._mark_failed(ctx, exc)
                    continue
                error = exc
                break
            except RuntimeApiError as exc:
                error = exc
                break
        elapsed = env.now - t0
        self._call_latency.observe(elapsed)
        self.runtime.slo.observe_call(ctx, elapsed)
        if begin_at is not None:
            obs.call_end(
                ctx, last_req.method, begin_at,
                error=type(error).__name__ if error is not None else None,
            )
        self.stats.calls_served += 1
        responses = [Response(request_id=req.request_id, error=error) for req in calls]
        return responses, error

    def _graph_valid(
        self, ctx: Context, instance: GraphInstance, launches: List[dict]
    ) -> bool:
        """Are the instance's baked translations still good?  Epoch
        equality is the O(1) fast path; after any table change, a direct
        residency re-check of the graph's working set decides."""
        page_table = self.memory.page_table
        if not ctx.bound or ctx.vgpu.device.device_id != instance.device_id:
            return False
        if instance.epoch == page_table.epoch:
            return True
        for entry in launches:
            for vptr in entry["vptrs"]:
                try:
                    pte = page_table.lookup(ctx, vptr)
                except RuntimeApiError:
                    return False
                if not pte.is_allocated:
                    return False
        return True

    def _execute_graph(
        self, ctx: Context, instance: GraphInstance, launches: List[dict]
    ) -> Generator:
        """Re-issue an instantiated graph: one control-plane charge when
        the cached translations are still good, the full per-launch path
        (plus an invalidation count) when a journaled buffer was evicted
        between replays.  Validity only affects *charging* — execution
        always goes through ``prepare_and_launch``, which re-faults
        anything missing, so a misjudged fast path cannot corrupt."""
        env = self.env
        if not ctx.bound:
            yield from self.scheduler.request_binding(ctx)
        cold = instance.epoch is None
        valid = not cold and self._graph_valid(ctx, instance, launches)
        if not valid and not cold:
            self.stats.graphs_invalidated += 1
        span = ctx.span
        if span is not None:
            span.push("graph_replay")
        try:
            cp = self.config.launch_control_plane_s
            if valid and cp > 0.0:
                yield env.timeout(cp)
            backoff = self.config.swap_retry_backoff_s
            index = 0
            while index < len(launches):
                if not ctx.bound:
                    yield from self.scheduler.request_binding(ctx)
                entry = launches[index]
                try:
                    yield from self.memory.prepare_and_launch(
                        ctx,
                        entry["kernel"],
                        entry["vptrs"],
                        entry["read_only"],
                        grid=entry["grid"],
                        block=entry["block"],
                        control_plane=not valid,
                    )
                    index += 1
                except NeedRetry:
                    yield from self.memory.swap_out_context(ctx, notify=False)
                    self.scheduler.release(ctx, "graph retry")
                    timeout = env.timeout(backoff)
                    freed = self.memory.memory_freed.wait()
                    yield env.any_of([timeout, freed])
                    backoff = min(backoff * 2, self.config.swap_retry_max_backoff_s)
        finally:
            if span is not None:
                span.pop()
        self.stats.graph_replays += 1
        self.stats.graph_replayed_kernels += len(launches)
        instance.epoch = self.memory.page_table.epoch
        instance.device_id = ctx.vgpu.device.device_id if ctx.bound else None
        if self.obs.enabled:
            self.obs.graph_replay(
                ctx,
                instance.graph_id,
                len(launches),
                invalidated=not valid and not cold,
            )

    # ------------------------------------------------------------------
    # preemptive time-slicing (repro.qos)
    # ------------------------------------------------------------------
    def _quantum_exhausted(self, ctx: Context) -> bool:
        quantum = self.config.vgpu_quantum_s
        return (
            quantum is not None
            and ctx.bound
            and ctx.state is ContextState.ASSIGNED
            and not ctx.excluded_from_sharing
            and ctx.quantum_used_s >= quantum
            and self.scheduler.waiting_count > 0
        )

    def _preempt(self, ctx: Context) -> Generator:
        """Unbind a quantum-expired context at a call boundary.

        Same lock-acquire-and-recheck discipline as the CPU-phase reaper
        and migration: the context may have exited, failed, or been
        swapped out by someone else while we queued for its lock.
        """
        yield ctx.lock.acquire()
        try:
            if not (
                ctx.bound
                and ctx.in_cpu_phase
                and ctx.state is ContextState.ASSIGNED
                and self.scheduler.waiting_count > 0
            ):
                return
            vgpu = ctx.vgpu
            used = ctx.quantum_used_s
            # In-flight overlap-engine write-backs target this context's
            # device memory; they must land before swap-out releases it
            # (swap_out_context drains too, but an explicit barrier here
            # keeps the invariant even if that path changes).
            yield from self.memory._drain_writebacks(ctx)
            if self.config.locality_binding:
                # Retention unbind: write dirty chunks back but leave the
                # device copy cached, so a rebind to the same vGPU skips
                # the re-fault entirely (§4.4 locality-aware binding).
                yield from self.memory.unbind_retain(ctx)
            else:
                yield from self.memory.swap_out_context(ctx)
            self.scheduler.release(ctx, "quantum expired")
            self.stats.preemptions += 1
            if ctx.tenant is not None:
                ctx.tenant.preemptions += 1
            if self.obs.enabled:
                self.obs.preemption(
                    ctx, vgpu, self.config.vgpu_quantum_s, used
                )
        finally:
            ctx.lock.release()

    # ------------------------------------------------------------------
    # overlap engine: CPU-phase prefetch (§4.5 "overlap computation and
    # communication")
    # ------------------------------------------------------------------
    def _maybe_prefetch(self, ctx: Context) -> None:
        """After responding to a call, stage the predicted next-launch
        working set while the application computes on the CPU."""
        if (
            not self.config.prefetch_enabled
            or not ctx.bound
            or not ctx.last_launch_vptrs
        ):
            return
        self.env.process(
            self._prefetch(ctx, ctx.last_launch_vptrs),
            name=f"prefetch-{ctx.owner}",
        )

    def _prefetch(self, ctx: Context, vptrs) -> Generator:
        if ctx.lock.locked:
            # The next call already arrived; prefetching now would only
            # delay it.
            return
        yield ctx.lock.acquire()
        try:
            # Re-check under the lock: the context may have been swapped
            # out, migrated, failed, or have left its CPU phase.
            if (
                ctx.bound
                and ctx.in_cpu_phase
                and ctx.state is ContextState.ASSIGNED
            ):
                try:
                    yield from self.memory.prefetch(ctx, vptrs)
                except CudaRuntimeError:
                    # Device trouble mid-prefetch is not the application's
                    # problem; the next real call handles recovery.
                    pass
        finally:
            ctx.lock.release()

    # ------------------------------------------------------------------
    # call dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, ctx: Context, req: Request) -> Generator:
        """Returns (value, response_payload_bytes)."""
        yield self.env.timeout(self.config.dispatcher_overhead_s)
        return (yield from self._dispatch_body(ctx, req))

    def _dispatch_body(self, ctx: Context, req: Request) -> Generator:
        """Serve one call, *after* the per-round-trip dispatcher overhead
        (charged once per call on the plain path, once per frame on the
        batched path)."""
        method = req.method
        args = req.args

        if ctx.capture is not None and method in (
            CallType.CONFIGURE_CALL,
            CallType.LAUNCH,
        ):
            # Stream-capture semantics: while capturing, configure/launch
            # are recorded into the graph template, not executed.
            self._record_capture(ctx, method, args)
            return None, 0

        if method == HELLO_METHOD:
            if args.get("owner"):
                ctx.owner = args["owner"]
            ctx.estimated_gpu_seconds = args.get("estimated_gpu_seconds")
            ctx.application_id = args.get("application_id")
            ctx.deadline_s = args.get("deadline_s")
            ctx.estimated_bytes = args.get("estimated_bytes")
            tenant_name = args.get("tenant")
            if tenant_name:
                ctx.tenant = self.runtime.qos.get_or_create(tenant_name)
            # Admission control (repro.qos): the gate sits here, at the
            # first moment tenant identity is known — a rejected
            # handshake surfaces as a typed error on Frontend.open(),
            # a queued one blocks until a slot frees.  The slot is
            # returned in _exit.
            span = ctx.span
            if span is not None:
                span.push("queue_wait")
            try:
                yield from self.runtime.admission.admit(ctx)
            finally:
                if span is not None:
                    span.pop()
            if ctx.tenant is not None:
                ctx.tenant.attach(ctx)
            return None, 0

        if method in REGISTRATION_CALLS:
            return (yield from self._registration(ctx, req))

        if method == CallType.SET_DEVICE:
            # Overridden: the runtime masks explicit GPU procurement (§2).
            return None, 0
        if method == CallType.GET_DEVICE_COUNT:
            # Overridden: report virtual, not physical, GPUs (§4.3).
            return self.scheduler.total_vgpus, 0

        if method == CallType.MALLOC:
            return self.memory.malloc(ctx, args["size"]), 0
        if method == CallType.FREE:
            yield from self.memory.free(ctx, args["vptr"])
            return None, 0
        if method == CallType.MEMCPY_H2D:
            yield from self.memory.copy_h2d(ctx, args["vptr"], args["nbytes"])
            return None, 0
        if method == CallType.MEMCPY_D2H:
            yield from self.memory.copy_d2h(ctx, args["vptr"], args["nbytes"])
            return None, args["nbytes"]

        if method == CallType.CONFIGURE_CALL:
            ctx.pending_config = (args.get("grid", (1, 1, 1)), args.get("block", (256, 1, 1)))
            return None, 0
        if method == CallType.LAUNCH:
            yield from self._launch(ctx, req)
            return None, 0
        if method == CallType.THREAD_SYNCHRONIZE:
            return None, 0

        if method == CallType.REGISTER_NESTED:
            self.memory.register_nested(
                ctx, args["parent"], args["members"], args["offsets"]
            )
            return None, 0
        if method == CallType.CHECKPOINT:
            if ctx.bound:
                yield from self.memory.checkpoint(ctx)
            return None, 0

        if method == CallType.GRAPH_BEGIN_CAPTURE:
            if ctx.capture is not None:
                raise RuntimeApiError(
                    RuntimeErrorCode.GRAPH_INVALID, "capture already active"
                )
            ctx.capture = []
            ctx.capture_config = None
            return None, 0
        if method == CallType.GRAPH_END_CAPTURE:
            if ctx.capture is None:
                raise RuntimeApiError(
                    RuntimeErrorCode.GRAPH_INVALID, "no capture active"
                )
            launches, ctx.capture = ctx.capture, None
            if not launches:
                raise RuntimeApiError(
                    RuntimeErrorCode.GRAPH_INVALID, "captured sequence is empty"
                )
            instance = GraphInstance(
                graph_id=next(_graph_ids), template=tuple(launches)
            )
            ctx.graphs[instance.graph_id] = instance
            self.stats.graphs_instantiated += 1
            # Instantiation bakes every node's submission state up front —
            # the one-time control-plane cost that replay then amortizes.
            cp = self.config.launch_control_plane_s
            if cp > 0.0:
                yield self.env.timeout(cp * len(launches))
            if self.obs.enabled:
                self.obs.graph_instantiate(
                    ctx, instance.graph_id, len(launches), explicit=True
                )
            return instance.graph_id, 0
        if method == CallType.GRAPH_LAUNCH:
            instance = ctx.graphs.get(args.get("graph"))
            if instance is None:
                raise RuntimeApiError(
                    RuntimeErrorCode.GRAPH_INVALID,
                    f"unknown graph handle {args.get('graph')!r}",
                )
            launches = [
                {
                    "kernel": l.kernel,
                    "vptrs": l.arg_pointers,
                    "read_only": l.read_only or (),
                    "grid": l.grid,
                    "block": l.block,
                }
                for l in instance.template
            ]
            yield from self._execute_graph(ctx, instance, launches)
            return None, 0

        if method == CallType.EXIT:
            yield from self._exit(ctx)
            return None, 0

        raise ValueError(f"unknown intercepted call {method!r}")

    def _record_capture(self, ctx: Context, method: CallType, args: dict) -> None:
        if method == CallType.CONFIGURE_CALL:
            ctx.capture_config = (
                args.get("grid", (1, 1, 1)),
                args.get("block", (256, 1, 1)),
            )
            return
        grid, block = ctx.capture_config or ((1, 1, 1), (256, 1, 1))
        ctx.capture.append(
            KernelLaunch(
                kernel=args["kernel"],
                grid=tuple(grid),
                block=tuple(block),
                arg_pointers=tuple(args.get("args", ())),
                read_only=tuple(args.get("read_only", ())) or None,
            )
        )
        ctx.capture_config = None

    def _registration(self, ctx: Context, req: Request) -> Generator:
        """Registration functions precede context creation and are issued
        straight to the CUDA runtime (they carry no binding decision)."""
        yield self.env.timeout(timing.REGISTRATION_SECONDS)
        if req.method == CallType.REGISTER_FATBIN:
            fatbin = req.args["fatbin"]
            ctx.fatbins.append(fatbin)
            if fatbin.needs_exclusion_from_sharing:
                # Device-side dynamic allocation: served, but excluded
                # from sharing and dynamic scheduling (§1).
                ctx.excluded_from_sharing = True
            return fatbin.handle, 0
        if req.method == CallType.REGISTER_FUNCTION:
            descriptor = req.args["descriptor"]
            fatbin = next(
                (f for f in ctx.fatbins if f.handle == req.args["fatbin_handle"]), None
            )
            if fatbin is not None and descriptor.name not in fatbin.functions:
                fatbin.register_function(descriptor)
            if descriptor.uses_dynamic_alloc:
                ctx.excluded_from_sharing = True
            return None, 0
        # vars / textures / shared: symbol bookkeeping on the fat binary
        fatbin = next(
            (f for f in ctx.fatbins if f.handle == req.args.get("fatbin_handle")),
            None,
        )
        if fatbin is not None:
            name = req.args.get("name", "")
            if req.method == CallType.REGISTER_VAR:
                fatbin.register_var(name)
            elif req.method == CallType.REGISTER_TEXTURE:
                fatbin.register_texture(name)
            elif req.method == CallType.REGISTER_SHARED_VAR:
                fatbin.register_shared_var(name)
        return None, 0

    # ------------------------------------------------------------------
    # launch path: delayed binding + swap retries (§4.3, §4.5)
    # ------------------------------------------------------------------
    def _launch(self, ctx: Context, req: Request) -> Generator:
        if ctx.pending_config is None:
            raise CudaRuntimeError(
                CudaError.cudaErrorMissingConfiguration,
                "cudaLaunch without cudaConfigureCall",
            )
        # Keep the configuration until the launch succeeds: the call may
        # be retried wholesale after a device failure.
        grid, block = ctx.pending_config
        kernel = req.args["kernel"]
        vptrs = tuple(req.args.get("args", ()))
        read_only = tuple(req.args.get("read_only", ()))

        backoff = self.config.swap_retry_backoff_s
        while True:
            if not ctx.bound:
                yield from self.scheduler.request_binding(ctx)
            ctx.last_call = req
            try:
                duration = yield from self.memory.prepare_and_launch(
                    ctx, kernel, vptrs, read_only, grid=grid, block=block
                )
                break
            except NeedRetry:
                # No device memory, no victim: unbind, retry later (§4.5).
                # Wake early if anyone releases device memory; otherwise
                # back off exponentially so stuck launches do not spin.
                # The lost time is off-device time: "preempted".
                span = ctx.span
                if span is not None:
                    span.push("preempted")
                try:
                    yield from self.memory.swap_out_context(ctx, notify=False)
                    self.scheduler.release(ctx, "swap retry")
                    # When either branch wins, the AnyOf cancels the loser:
                    # a spent timeout leaves the kernel heap, an unneeded
                    # waiter leaves memory_freed's queue — so a later
                    # notify cannot be swallowed by this retry's ghost.
                    timeout = self.env.timeout(backoff)
                    freed = self.memory.memory_freed.wait()
                    yield self.env.any_of([timeout, freed])
                finally:
                    if span is not None:
                        span.pop()
                backoff = min(backoff * 2, self.config.swap_retry_max_backoff_s)

        ctx.pending_config = None
        threshold = self.config.checkpoint_kernel_seconds
        if threshold is not None and duration >= threshold:
            # Automatic checkpoint after long-running kernels (§4.6).
            yield from self.memory.checkpoint(ctx)

    # ------------------------------------------------------------------
    # failure handling (§4.6)
    # ------------------------------------------------------------------
    def _mark_failed(self, ctx: Context, exc: CudaRuntimeError) -> None:
        ctx.error = exc
        ctx.state = ContextState.FAILED
        ctx.rebind_attempts += 1
        if ctx not in self.failed_contexts:
            self.failed_contexts.append(ctx)
        if ctx.vgpu is not None:
            dead_device = ctx.vgpu.device
            ctx.vgpu.unbind(ctx)
            if dead_device.failed:
                self.runtime.note_device_failure(dead_device)
        self.memory.reset_after_failure(ctx)

    def replay_journal(self, ctx: Context) -> Generator:
        """Replay a context's journaled kernels; returns how many.

        The single replay implementation (§4.6): device-failure recovery
        and full-node restart both run this loop.  Each journaled kernel
        is re-executed through the ordinary launch path (re-journaling
        included), so replay survives memory pressure on the new device —
        a mid-replay swap-out captures the replayed prefix in the swap
        area while the suffix stays pending here.
        """
        pending = list(ctx.replay_journal)
        ctx.replay_journal.clear()
        backoff = self.config.swap_retry_backoff_s
        index = 0
        while index < len(pending):
            if not ctx.bound:
                yield from self.scheduler.request_binding(ctx, front=True)
            launch = pending[index]
            try:
                yield from self.memory.prepare_and_launch(
                    ctx,
                    launch.kernel,
                    launch.arg_pointers,
                    launch.read_only or (),
                    grid=launch.grid,
                    block=launch.block,
                )
                self.stats.replayed_kernels += 1
                index += 1
            except NeedRetry:
                span = ctx.span
                if span is not None:
                    span.push("preempted")
                try:
                    yield from self.memory.swap_out_context(ctx, notify=False)
                    self.scheduler.release(ctx, "replay retry")
                    # As in _launch: the losing branch is cancelled, not
                    # left as a ghost waiter/heap entry.
                    timeout = self.env.timeout(backoff)
                    freed = self.memory.memory_freed.wait()
                    yield self.env.any_of([timeout, freed])
                finally:
                    if span is not None:
                        span.pop()
                backoff = min(backoff * 2, self.config.swap_retry_max_backoff_s)
        if not ctx.bound:
            yield from self.scheduler.request_binding(ctx, front=True)
        return len(pending)

    def _recover(self, ctx: Context) -> Generator:
        """Rebind a failed context to a healthy device and replay."""
        replayed = yield from self.replay_journal(ctx)
        ctx.state = ContextState.ASSIGNED
        ctx.error = None
        if ctx in self.failed_contexts:
            self.failed_contexts.remove(ctx)
        self.stats.failures_recovered += 1
        if self.obs.enabled:
            self.obs.failure_recovered(ctx, replayed_kernels=replayed)

    # ------------------------------------------------------------------
    def _exit(self, ctx: Context) -> Generator:
        yield from self.memory.release_context(ctx)
        if ctx.bound:
            self.scheduler.release(ctx, "exit")
        else:
            self.scheduler.cancel_wait(ctx)
        self.runtime.admission.release(ctx)
        # History-estimator policies (sjf_est/hrrn) learn from every
        # completed context: measured GPU seconds keyed by its tenant.
        estimator = getattr(self.scheduler.policy, "estimator", None)
        if estimator is not None and ctx.gpu_seconds_used > 0:
            tenant = ctx.tenant
            estimator.observe(
                tenant.name if tenant is not None else None,
                ctx.gpu_seconds_used,
                group=getattr(tenant, "group", None),
            )
        if ctx.tenant is not None:
            ctx.tenant.detach(ctx)
        ctx.state = ContextState.DONE
        ctx.finished_at = self.env.now
