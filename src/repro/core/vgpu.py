"""Virtual GPUs (paper §4.4).

A configurable number of vGPUs is spawned for each physical GPU; each is
a worker statically bound to its device (``cudaSetDevice`` at system
startup) that issues application calls to the CUDA runtime, serving one
application thread at a time.  Because the CUDA runtime spawns a context
per vGPU — not per application — the number of live CUDA contexts stays
bounded regardless of how many applications arrive, which is what lets
the runtime operate beyond the bare runtime's ~8-context limit.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional, TYPE_CHECKING

from repro.sim import Environment, Event
from repro.simcuda.context import CudaContext
from repro.simcuda.driver import CudaDriver
from repro.simcuda.device import GPUDevice
from repro.simcuda.kernels import KernelLaunch
from repro.simcuda.streams import Stream

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.context import Context

__all__ = ["VirtualGPU"]

_vgpu_seq = itertools.count(1)


class VirtualGPU:
    """One time-sharing slot on a physical GPU."""

    def __init__(self, env: Environment, driver: CudaDriver, device: GPUDevice, index: int):
        self.env = env
        self.driver = driver
        self.device = device
        self.index = index
        self.name = f"vGPU{device.device_id}.{index}"
        self.seq = next(_vgpu_seq)
        #: The CUDA context this vGPU works in (created at startup).
        self.cuda_context: Optional[CudaContext] = None
        #: In-order async copy stream (created at startup); the overlap
        #: engine routes bulk transfers and write-backs through it so they
        #: can run behind the caller and overlap kernel execution.
        self.copy_stream: Optional[Stream] = None
        #: The application context currently bound (None = idle).
        self.bound_context: Optional["Context"] = None
        self.total_bound_seconds = 0.0
        self._bound_at: Optional[float] = None
        self.retired = False
        #: Tracing bus (repro.obs), injected by the scheduler at spawn so
        #: every bind/unbind — scheduler grant, migration, recovery — is
        #: observed at this single choke point.
        self.obs = None

    # ------------------------------------------------------------------
    def start(self) -> Generator:
        """Create the vGPU's CUDA context (static cudaSetDevice binding)."""
        self.cuda_context = yield from self.driver.create_context(
            self.device, owner=self.name
        )
        self.copy_stream = Stream(self.driver, self.cuda_context)

    def shutdown(self) -> Generator:
        """Destroy the CUDA context (device removal / node shutdown)."""
        self.retired = True
        if self.cuda_context is not None:
            yield from self.driver.destroy_context(self.cuda_context)
            self.cuda_context = None

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self.bound_context is None and not self.retired and not self.device.failed

    @property
    def active(self) -> bool:
        return self.bound_context is not None

    def bind(self, ctx: "Context") -> None:
        if self.bound_context is not None:
            raise RuntimeError(f"{self.name} already serves {self.bound_context!r}")
        if self.retired:
            raise RuntimeError(f"{self.name} is retired")
        self.bound_context = ctx
        self._bound_at = self.env.now
        ctx.vgpu = self
        # Time-slicing (repro.qos): the quantum covers one binding, so it
        # restarts here — the single choke point every bind path crosses
        # (scheduler grant, migration, recovery).
        ctx.quantum_used_s = 0.0
        if self.obs is not None and self.obs.enabled:
            self.obs.bind(ctx, self)

    def unbind(self, ctx: "Context", reason: str = "") -> None:
        if self.bound_context is not ctx:
            raise RuntimeError(f"{self.name} does not serve {ctx!r}")
        if self.obs is not None and self.obs.enabled:
            self.obs.unbind(ctx, self, reason)
        self.bound_context = None
        if self._bound_at is not None:
            self.total_bound_seconds += self.env.now - self._bound_at
            self._bound_at = None
        ctx.vgpu = None

    # ------------------------------------------------------------------
    # device operations, issued within this vGPU's CUDA context
    # ------------------------------------------------------------------
    def malloc(self, size: int) -> Generator:
        address = yield from self.driver.malloc(self.cuda_context, size)
        return address

    def free(self, address: int) -> Generator:
        yield from self.driver.free(self.cuda_context, address)

    def memcpy_h2d(self, address: int, nbytes: int) -> Generator:
        yield from self.driver.memcpy_h2d(self.cuda_context, address, nbytes)

    def memcpy_d2h(self, address: int, nbytes: int) -> Generator:
        yield from self.driver.memcpy_d2h(self.cuda_context, address, nbytes)

    def memcpy_h2d_async(self, address: int, nbytes: int) -> Event:
        """Enqueue an H2D on the copy stream; returns its completion event."""
        return self.copy_stream.memcpy_h2d_async(address, nbytes)

    def memcpy_d2h_async(self, address: int, nbytes: int) -> Event:
        """Enqueue a D2H on the copy stream; returns its completion event."""
        return self.copy_stream.memcpy_d2h_async(address, nbytes)

    def synchronize(self) -> Generator:
        """Drain the copy stream (re-raising any asynchronous error)."""
        if self.copy_stream is not None:
            yield from self.copy_stream.synchronize()

    def launch(self, launch: KernelLaunch) -> Generator:
        yield from self.driver.launch(self.cuda_context, launch)

    def __repr__(self) -> str:
        who = self.bound_context.owner if self.bound_context else "idle"
        return f"<VirtualGPU {self.name} [{who}]>"
