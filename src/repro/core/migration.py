"""Dynamic binding: migrating running jobs between GPUs (paper §5.3.4).

The dispatcher keeps track of fast GPUs becoming idle and, in the absence
of pending jobs, migrates running jobs from slow to fast GPUs.  The
virtual-memory abstraction makes the move cheap to express: swap the
job's device state out on the slow device, rebind to the fast one, and
let the next launch fault the data back in.

As the number of concurrent jobs grows, idle fast vGPUs are given to
waiting jobs instead — migration only triggers when nothing is waiting,
matching the paper's observation that large batches see zero migrations.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from repro.core.context import Context, ContextState
from repro.core.vgpu import VirtualGPU

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["MigrationManager"]


class MigrationManager:
    """Slow→fast job migration on vGPU idleness."""

    def __init__(self, runtime: "NodeRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.config = runtime.config
        self.scheduler = runtime.scheduler
        self.memory = runtime.memory
        self.stats = runtime.stats
        #: Wired by the runtime under ``locality_binding``: the transfer-
        #: cost model.  When set, every migration candidate must clear
        #: ``migration_worthwhile`` — modeled speedup gain over the job's
        #: remaining work must exceed the modeled data-movement cost —
        #: before a move is scheduled.
        self.cost_model = None
        self.scheduler.idle_hooks.append(self.on_vgpu_idle)

    def _worthwhile(self, ctx: Context, dst: VirtualGPU) -> bool:
        if self.cost_model is None:
            return True
        return self.cost_model.migration_worthwhile(ctx, dst.device)

    # ------------------------------------------------------------------
    def on_vgpu_idle(self, vgpu: VirtualGPU) -> None:
        """Scheduler hook: a vGPU became idle with no waiting contexts."""
        if not self.config.migration_enabled:
            return
        victim = self._find_candidate(vgpu)
        if victim is not None:
            vgpu.reserved = True
            self.env.process(
                self._migrate(victim, vgpu), name=f"migrate-{victim.owner}"
            )

    def maybe_migrate(self, ctx: Context) -> None:
        """Dispatcher hook: ``ctx`` just entered a CPU phase.  If a
        sufficiently faster device has an idle vGPU and nobody is waiting
        for it, move the job there."""
        if not self.config.migration_enabled:
            return
        if self.scheduler.waiting_count > 0:
            return
        if (
            not ctx.bound
            or ctx.excluded_from_sharing
            or ctx.state is not ContextState.ASSIGNED
            or ctx.lock.locked
        ):
            return
        src_speed = ctx.vgpu.device.spec.effective_gflops
        best: Optional[VirtualGPU] = None
        for vgpu in self.scheduler.idle_vgpus():
            speedup = vgpu.device.spec.effective_gflops / src_speed
            if (
                speedup >= self.config.migration_min_speedup
                and self._worthwhile(ctx, vgpu)
                and (
                    best is None
                    or vgpu.device.spec.effective_gflops
                    > best.device.spec.effective_gflops
                )
            ):
                best = vgpu
        if best is not None:
            best.reserved = True
            self.env.process(self._migrate(ctx, best), name=f"migrate-{ctx.owner}")

    def _find_candidate(self, dst: VirtualGPU) -> Optional[Context]:
        """A job bound to a sufficiently slower device, currently in a
        CPU phase (so its device state is quiescent), not excluded from
        dynamic scheduling."""
        dst_speed = dst.device.spec.effective_gflops
        best: Optional[Context] = None
        best_speedup = self.config.migration_min_speedup
        for ctx in self.scheduler.bound_contexts():
            if ctx.excluded_from_sharing or ctx.state is not ContextState.ASSIGNED:
                continue
            if not ctx.in_cpu_phase or ctx.lock.locked:
                continue
            speedup = dst_speed / ctx.vgpu.device.spec.effective_gflops
            if speedup >= best_speedup and self._worthwhile(ctx, dst):
                best = ctx
                best_speedup = speedup
        return best

    def _migrate(self, ctx: Context, dst: VirtualGPU) -> Generator:
        """Checkpoint-and-rebind: the mechanics of dynamic binding."""
        try:
            yield ctx.lock.acquire()
            try:
                # Re-validate under the lock.
                if (
                    not ctx.bound
                    or not ctx.in_cpu_phase
                    or ctx.state is not ContextState.ASSIGNED
                    or not dst.idle
                    or dst.device.failed
                    or ctx.vgpu.device is dst.device
                ):
                    return
                src = ctx.vgpu
                used_p2p = False
                if self.config.cuda4_semantics:
                    # §4.8: direct GPU-to-GPU transfer for faster
                    # thread-to-GPU remapping; swap path as fallback.
                    ok = yield from self.memory.migrate_context_p2p(ctx, dst)
                    if ok:
                        self.stats.migrations_p2p += 1
                        used_p2p = True
                    else:
                        yield from self.memory.swap_out_context(ctx)
                else:
                    yield from self.memory.swap_out_context(ctx)
                src.unbind(ctx, "migration")
                self.stats.unbindings += 1
                dst.reserved = False
                dst.bind(ctx)
                ctx.state = ContextState.ASSIGNED
                self.stats.bindings += 1
                self.stats.migrations += 1
                ctx.migrations += 1
                obs = self.runtime.obs
                if obs.enabled:
                    obs.migration(ctx, src.device, dst.device, p2p=used_p2p)
                # The freed slow vGPU can serve the queue (usually empty
                # here by construction) or trigger further migrations.
                self.scheduler._grant_waiting()
            finally:
                ctx.lock.release()
        finally:
            dst.reserved = False
