"""Runtime monitoring: time-series sampling of node health.

The paper's dispatcher "may expose some information to the cluster-level
scheduler (e.g.: number of GPUs, load level, etc.) so as to guide the
cluster-level scheduling decisions" (§2).  This module is that
introspection surface: periodic samples of GPU utilization, vGPU
occupancy, queue lengths and memory state, plus the one-shot
:func:`node_report` snapshot a cluster scheduler would poll.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.runtime import NodeRuntime

__all__ = ["Sample", "RuntimeMonitor", "node_report"]


@dataclasses.dataclass(frozen=True)
class Sample:
    """One point of the monitoring time series."""

    at: float
    #: device_id -> fraction of time busy since the previous sample
    gpu_utilization: Dict[int, float]
    #: device_id -> used device-memory bytes
    gpu_memory_used: Dict[int, int]
    active_vgpus: int
    total_vgpus: int
    waiting_contexts: int
    pending_connections: int
    swap_used_bytes: int
    load_per_vgpu: float
    #: Seconds covered by this sample (time since the previous one); the
    #: utilization fractions above are averages over exactly this window.
    interval: float = 0.0


def node_report(runtime: NodeRuntime) -> Dict[str, object]:
    """Instantaneous node summary (what the runtime would expose to a
    GPU-aware cluster scheduler)."""
    devices = runtime.driver.devices
    return {
        "node": runtime.name,
        "gpus": len(devices),
        "gpu_names": [d.name for d in devices],
        "vgpus_total": runtime.scheduler.total_vgpus,
        "vgpus_active": sum(1 for v in runtime.scheduler.vgpus if v.active),
        "waiting": runtime.scheduler.waiting_count,
        "pending_connections": runtime.connections.pending_count,
        "load_per_vgpu": runtime.load_per_vgpu(),
        "free_memory_bytes": {d.device_id: d.free_memory for d in devices},
        "swap_used_bytes": runtime.memory.swap.used_bytes,
        "tenants": runtime.qos.rollup(runtime.memory.page_table),
        "slo": runtime.slo.rollup(),
        "metrics": runtime.metrics.snapshot(),
    }


class RuntimeMonitor:
    """Periodic sampler over one runtime.

    ``start(period)`` launches the sampling process; call :meth:`stop`
    (or pass ``horizon``) so the sampler does not keep the simulation's
    event queue alive forever.
    """

    def __init__(self, runtime: NodeRuntime):
        self.runtime = runtime
        self.env = runtime.env
        self.samples: List[Sample] = []
        self._stopped = False
        self._timer = None
        self._last_busy: Dict[int, float] = {}
        self._last_at: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self, period: float, horizon: Optional[float] = None) -> None:
        """Sample every ``period`` seconds on the node's timer wheel.

        Ticks multiplex onto the runtime's shared
        :class:`~repro.sim.timers.TimerWheel`, so the monitor costs one
        pending kernel event only while it is the earliest armed timer.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        if self._timer is not None and self._timer.active:
            raise RuntimeError("monitor already running; stop() it first")
        self._stopped = False
        if horizon is not None and horizon <= 0:
            return
        started = self.env.now

        def tick() -> None:
            # stop() may have been called during the period; no final
            # sample, and cancelling here drops the recurring timer.
            if self._stopped:
                self._timer.cancel()
                return
            self.take_sample()
            if horizon is not None and self.env.now - started >= horizon:
                self._timer.cancel()

        self._timer = self.runtime.timers.every(period, tick)

    def stop(self) -> None:
        self._stopped = True

    # ------------------------------------------------------------------
    def take_sample(self) -> Sample:
        """Record (and return) one sample right now."""
        now = self.env.now
        interval = now - self._last_at if self._last_at is not None else now
        utilization: Dict[int, float] = {}
        memory: Dict[int, int] = {}
        for device in self.runtime.driver.devices:
            prev = self._last_busy.get(device.device_id, 0.0)
            delta = device.busy_seconds - prev
            utilization[device.device_id] = (
                min(1.0, delta / interval) if interval > 0 else 0.0
            )
            self._last_busy[device.device_id] = device.busy_seconds
            memory[device.device_id] = device.allocator.used_bytes
        self._last_at = now
        scheduler = self.runtime.scheduler
        sample = Sample(
            at=now,
            gpu_utilization=utilization,
            gpu_memory_used=memory,
            active_vgpus=sum(1 for v in scheduler.vgpus if v.active),
            total_vgpus=scheduler.total_vgpus,
            waiting_contexts=scheduler.waiting_count,
            pending_connections=self.runtime.connections.pending_count,
            swap_used_bytes=self.runtime.memory.swap.used_bytes,
            load_per_vgpu=self.runtime.load_per_vgpu(),
            interval=interval,
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    def mean_utilization(self, device_id: int) -> float:
        """Time-weighted mean utilization over the sampled span.

        Each sample's fraction covers its own interval, so irregular
        sampling (on-demand samples between periodic ones) does not skew
        the mean toward the more frequently sampled stretches.
        """
        if not self.samples:
            return 0.0
        total = sum(s.interval for s in self.samples)
        if total <= 0:
            values = [s.gpu_utilization.get(device_id, 0.0) for s in self.samples]
            return sum(values) / len(values)
        return (
            sum(s.gpu_utilization.get(device_id, 0.0) * s.interval for s in self.samples)
            / total
        )

    def peak_waiting(self) -> int:
        return max((s.waiting_contexts for s in self.samples), default=0)

    def peak_swap_bytes(self) -> int:
        return max((s.swap_used_bytes for s in self.samples), default=0)
