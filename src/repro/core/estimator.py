"""Runtime estimation from per-user / per-group history.

Production GPU traces (Alibaba ``cluster-trace-gpu-v2020``) carry no
profiling hints: nobody annotates a job with its runtime.  What a
scheduler *does* have is history — the same users and groups submit
shaped work over and over — and trace-driven simulators exploit exactly
that: predict a new job's runtime from an exponentially weighted moving
average of the runtimes its user (falling back to its group, falling
back to everyone) has exhibited so far.

:class:`RuntimeEstimator` is that history.  It is deliberately dumb and
deterministic: EWMA per user, EWMA per group, EWMA global.  The
``sjf_est`` and ``hrrn`` policies in :mod:`repro.core.policies` consult
it through duck-typed wiring (the same pattern the locality policy uses
for the cost model): the node runtime creates one per policy instance,
and the trace-replay harness replaces it with a single *cluster-wide*
estimator so every node's policy shares the head node's knowledge.

Observations arrive from two sites:

- the dispatcher, when a context exits, reports the context's measured
  GPU seconds keyed by its tenant (node-local history for free);
- the trace-replay harness, when a job completes, reports the job's GPU
  demand (cluster-level history).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["RuntimeEstimator"]


class RuntimeEstimator:
    """EWMA runtime history keyed by user, with group/global fallback.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor: ``estimate = alpha*sample +
        (1-alpha)*estimate``.  0.3 tracks drifting users within a few
        jobs without thrashing on one outlier.
    min_samples:
        A user's own average is trusted only after this many of their
        jobs completed; before that prediction falls back to the group,
        then to the global average (cold-start handling).
    """

    def __init__(self, alpha: float = 0.3, min_samples: int = 2):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.alpha = alpha
        self.min_samples = min_samples
        self._user_ewma: Dict[str, float] = {}
        self._user_count: Dict[str, int] = {}
        self._group_ewma: Dict[str, float] = {}
        self._group_count: Dict[str, int] = {}
        self._global_ewma: Optional[float] = None
        self.observations = 0

    # ------------------------------------------------------------------
    def _update(self, table: Dict[str, float], counts: Dict[str, int],
                key: str, seconds: float) -> None:
        prev = table.get(key)
        table[key] = seconds if prev is None else (
            self.alpha * seconds + (1 - self.alpha) * prev
        )
        counts[key] = counts.get(key, 0) + 1

    def observe(self, user: Optional[str], seconds: float,
                group: Optional[str] = None) -> None:
        """Record one completed job's measured GPU seconds."""
        if seconds < 0:
            return
        self.observations += 1
        if user:
            self._update(self._user_ewma, self._user_count, user, seconds)
        if group:
            self._update(self._group_ewma, self._group_count, group, seconds)
        self._global_ewma = seconds if self._global_ewma is None else (
            self.alpha * seconds + (1 - self.alpha) * self._global_ewma
        )

    # ------------------------------------------------------------------
    def predict(self, user: Optional[str],
                group: Optional[str] = None) -> Optional[float]:
        """Best available runtime estimate, or None with zero history."""
        if user and self._user_count.get(user, 0) >= self.min_samples:
            return self._user_ewma[user]
        if group and self._group_count.get(group, 0) >= self.min_samples:
            return self._group_ewma[group]
        # Thin per-user history still beats nothing when there is no
        # group signal either.
        if user and user in self._user_ewma and self._global_ewma is None:
            return self._user_ewma[user]
        return self._global_ewma

    def predict_for(self, ctx) -> Optional[float]:
        """Estimate for a runtime context via its tenant identity."""
        tenant = getattr(ctx, "tenant", None)
        if tenant is None:
            return self.predict(None)
        return self.predict(tenant.name, getattr(tenant, "group", None))

    def __repr__(self) -> str:
        return (
            f"<RuntimeEstimator users={len(self._user_ewma)} "
            f"groups={len(self._group_ewma)} obs={self.observations}>"
        )
