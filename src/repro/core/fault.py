"""Failure injection and GPU hotplug helpers (paper §4.6).

The runtime itself recovers from failures lazily (a context discovers its
device is gone when an operation returns ``cudaErrorDevicesUnavailable``,
moves to the failed list, and is rebound + replayed by the dispatcher).
This module provides the experiment-side machinery: scheduled device
failures, recoveries, and dynamic upgrade/downgrade events.
"""

from __future__ import annotations

import dataclasses
from typing import Generator, List, Optional, TYPE_CHECKING

from repro.simcuda.device import GPUSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["FailureInjector", "HotplugEvent"]


@dataclasses.dataclass
class HotplugEvent:
    """One scheduled event in a device-availability timeline."""

    at_seconds: float
    action: str  # "fail" | "add"
    device_index: Optional[int] = None  # for "fail": index into runtime devices
    spec: Optional[GPUSpec] = None  # for "add"

    def __post_init__(self) -> None:
        if self.action not in ("fail", "add"):
            raise ValueError(f"unknown hotplug action {self.action!r}")
        if self.action == "fail" and self.device_index is None:
            raise ValueError("'fail' needs device_index")
        if self.action == "add" and self.spec is None:
            raise ValueError("'add' needs a GPUSpec")


class FailureInjector:
    """Drives a timeline of GPU failures/additions against a runtime."""

    def __init__(self, runtime: "NodeRuntime", timeline: List[HotplugEvent]):
        self.runtime = runtime
        self.timeline = sorted(timeline, key=lambda e: e.at_seconds)
        self.fired: List[HotplugEvent] = []

    def start(self) -> None:
        self.runtime.env.process(self._run(), name="failure-injector")

    def _run(self) -> Generator:
        env = self.runtime.env
        for event in self.timeline:
            delay = event.at_seconds - env.now
            if delay > 0:
                yield env.timeout(delay)
            if event.action == "fail":
                devices = self.runtime.driver.devices
                if 0 <= event.device_index < len(devices):
                    self.runtime.fail_device(devices[event.device_index])
            else:
                yield from self.runtime.add_device(event.spec)
            self.fired.append(event)
