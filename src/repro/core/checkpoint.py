"""Checkpoint-restart support (paper §4.6).

The page table plus the swap area *are* the implicit checkpoint: together
they contain the state of the application's device memory.  This module
adds the explicit, serializable snapshot used to combine the runtime with
a node-level checkpointer (BLCR in the paper): enough to resume a context
after a full restart of the node, replaying only the memory operations
required by not-yet-executed kernel calls (the journal).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.simcuda.kernels import KernelLaunch

from repro.core.context import Context
from repro.core.memory.manager import MemoryManager

__all__ = ["ContextSnapshot", "snapshot_context", "restore_context"]


@dataclasses.dataclass
class ContextSnapshot:
    """Serializable image of one context's runtime state."""

    owner: str
    #: virtual_ptr -> (size, has_host_data)
    entries: Dict[int, Tuple[int, bool]]
    #: kernels to replay on restore (device-only state reconstruction)
    journal: List[KernelLaunch]
    kernels_launched: int
    gpu_seconds_used: float

    @property
    def total_bytes(self) -> int:
        return sum(size for size, _ in self.entries.values())


def snapshot_context(memory: MemoryManager, ctx: Context) -> ContextSnapshot:
    """Capture a context.  Device-resident dirty data is *not* copied here
    — call :meth:`MemoryManager.checkpoint` first if the journal must be
    empty (the snapshot stays correct either way: un-checkpointed kernels
    remain in the journal and will be replayed)."""
    entries: Dict[int, Tuple[int, bool]] = {}
    for pte in memory.page_table.entries_for(ctx):
        has_host_data = pte.to_copy_2dev or not pte.to_copy_2swap
        entries[pte.virtual_ptr] = (pte.size, has_host_data)
    return ContextSnapshot(
        owner=ctx.owner,
        entries=dict(entries),
        journal=list(ctx.replay_journal),
        kernels_launched=ctx.kernels_launched,
        gpu_seconds_used=ctx.gpu_seconds_used,
    )


def restore_context(
    memory: MemoryManager, ctx: Context, snap: ContextSnapshot
) -> Dict[int, int]:
    """Rebuild page table + swap backing for ``ctx`` from a snapshot.

    Returns the mapping old-virtual-ptr → new-virtual-ptr (virtual
    addresses are not stable across restarts; the frontend library
    relocates the application's saved pointers with it).

    The caller then binds the context and runs
    :meth:`MemoryManager.replay` (with the translated journal installed
    on ``ctx.replay_journal``) to regenerate device-only state.
    """
    translation: Dict[int, int] = {}
    for old_vptr, (size, _has_data) in snap.entries.items():
        new_vptr = memory.malloc(ctx, size)
        translation[old_vptr] = new_vptr
        pte = memory.page_table.lookup(ctx, new_vptr)
        # Swap holds the restored bytes; they must flow to the device
        # before first use.
        pte.on_host_write()
    ctx.replay_journal = [
        KernelLaunch(
            kernel=launch.kernel,
            grid=launch.grid,
            block=launch.block,
            arg_pointers=tuple(translation[p] for p in launch.arg_pointers),
            read_only=tuple(translation[p] for p in launch.read_only)
            if launch.read_only
            else None,
        )
        for launch in snap.journal
    ]
    ctx.kernels_launched = snap.kernels_launched
    ctx.gpu_seconds_used = snap.gpu_seconds_used
    return translation
