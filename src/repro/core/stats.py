"""Runtime statistics.

Every figure in the paper annotates bars with operation counts (swap
operations in Figures 7/8, migrations in Figure 9); these counters are
their source in the reproduction.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["RuntimeStats"]


@dataclasses.dataclass
class RuntimeStats:
    """Counters accumulated by one NodeRuntime."""

    connections_accepted: int = 0
    calls_served: int = 0
    kernels_launched: int = 0
    #: Intra-application swap-outs (single PTE evicted to make room for
    #: the same application's kernel).
    swaps_intra: int = 0
    #: Inter-application swap operations (a victim application's entire
    #: device state written back and the victim unbound).
    swaps_inter: int = 0
    #: PTE-granularity device→host write-backs performed by swaps.
    swap_bytes_out: int = 0
    swap_bytes_in: int = 0
    #: Launch attempts that found no memory and no victim (unbind+retry).
    swap_retries: int = 0
    #: Device-wide partial evictions (eviction_mode="partial"): loop
    #: invocations, bytes of device memory they freed, and dirty bytes
    #: they had to write back to free them.
    evictions_partial: int = 0
    eviction_bytes_freed: int = 0
    eviction_writeback_bytes: int = 0
    #: Job migrations between devices (dynamic binding, Figure 9).
    migrations: int = 0
    #: Migrations that used direct GPU-to-GPU transfers (CUDA 4.0, §4.8).
    migrations_p2p: int = 0
    p2p_bytes: int = 0
    #: Connections redirected to peer nodes (§4.7).
    offloads_out: int = 0
    offloads_in: int = 0
    #: Contexts recovered after device failure.
    failures_recovered: int = 0
    #: Kernel launches replayed during recovery.
    replayed_kernels: int = 0
    checkpoints: int = 0
    #: cudaMemcpy H2D calls intercepted vs bulk transfers actually issued
    #: to the device (the coalescing benefit of §4.5).
    h2d_requests: int = 0
    h2d_device_transfers: int = 0
    d2h_requests: int = 0
    #: Entries staged onto the device during CPU phases by the overlap
    #: engine's prefetch hook, and how many of them the next launch
    #: actually referenced (a hit saves that launch one bulk transfer).
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_bytes: int = 0
    #: Bad calls detected in the runtime without touching the GPU.
    bad_calls_detected: int = 0
    #: Bindings performed (context granted a vGPU).
    bindings: int = 0
    unbindings: int = 0
    #: Multi-tenant QoS (repro.qos): handshakes turned away / queued by
    #: admission control, quantum-expiry preemptions, and evictions of a
    #: tenant's own entries to honor its device-memory quota.
    admission_rejects: int = 0
    admission_queued: int = 0
    preemptions: int = 0
    quota_evictions: int = 0
    quota_eviction_bytes: int = 0
    #: Locality-aware binding (§4.4 cost model): rebinds that found the
    #: retained working set resident (and the fault-in bytes they
    #: avoided), plus retained caches reclaimed to relieve another
    #: context's memory pressure (and the bytes those reclaims freed).
    locality_hits: int = 0
    locality_bytes_avoided: int = 0
    locality_reclaims: int = 0
    locality_reclaim_bytes: int = 0
    #: Control-plane batching: batch frames executed and the calls they
    #: carried (ratio = average batch size actually achieved).
    batches_submitted: int = 0
    batched_calls: int = 0
    #: CUDA-Graph-style replay: graphs instantiated (explicit capture or
    #: journal auto-detection), whole-graph replays, kernels those
    #: replays issued, and replays that found their cached translations
    #: stale (a journaled buffer moved between replays).
    graphs_instantiated: int = 0
    graph_replays: int = 0
    graph_replayed_kernels: int = 0
    graphs_invalidated: int = 0

    @property
    def swaps_total(self) -> int:
        """The per-bar swap count reported in Figures 7 and 8."""
        return self.swaps_intra + self.swaps_inter

    def as_dict(self) -> Dict[str, int]:
        d = dataclasses.asdict(self)
        d["swaps_total"] = self.swaps_total
        return d
