"""Errors the runtime returns to applications.

Table 1 of the paper enumerates, per intercepted call, the errors the
*runtime itself* can generate (on top of forwarding CUDA result codes):
"A virtual address cannot be assigned", "Swap memory cannot be
allocated", "No valid PTE", "Swap-data size mismatch", "Cannot
de-allocate swap".
"""

from __future__ import annotations

import enum

__all__ = ["RuntimeErrorCode", "RuntimeApiError"]


class RuntimeErrorCode(enum.Enum):
    """Error classes introduced by the runtime (paper Table 1)."""

    VIRTUAL_ADDRESS_EXHAUSTED = "A virtual address cannot be assigned"
    SWAP_ALLOCATION_FAILED = "Swap memory cannot be allocated"
    NO_VALID_PTE = "No valid PTE"
    SWAP_SIZE_MISMATCH = "Swap-data size mismatch"
    SWAP_DEALLOCATION_FAILED = "Cannot de-allocate swap"
    KERNEL_FOOTPRINT_TOO_LARGE = "Kernel working set exceeds every device's capacity"
    CONTEXT_FAILED = "Context failed and could not be recovered"
    NESTED_NOT_REGISTERED = "Nested structure used without registration"
    # Multi-tenant QoS (repro.qos): surfaced through the handshake and
    # allocation paths instead of letting one tenant degrade the node.
    ADMISSION_REJECTED = "Connection rejected by admission control"
    TENANT_QUOTA_EXCEEDED = "Tenant resource quota exceeded"
    # Control-plane batching / graph replay.
    BATCH_ABORTED = "Call aborted: an earlier call in its batch failed"
    GRAPH_INVALID = "Graph handle unknown or capture sequence invalid"


class RuntimeApiError(Exception):
    """Raised (and marshalled back to the application) by the runtime."""

    def __init__(self, code: RuntimeErrorCode, message: str = ""):
        self.code = code
        super().__init__(f"{code.name}: {message}" if message else code.value)
