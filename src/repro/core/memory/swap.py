"""Host-side swap area (paper §4.5).

"Data resides in the host memory, and is moved to the device only on
demand" — the swap area is that host residence: it holds data not yet
allocated on (or swapped out of) the GPU.  Capacity is the node's host
memory (48 GB on the paper's testbed); exhausting it is the Table 1
"Swap memory cannot be allocated" error.
"""

from __future__ import annotations

from typing import Dict

from repro.core.errors import RuntimeApiError, RuntimeErrorCode

__all__ = ["SwapArea"]

_SWAP_BASE = 0x5000_0000_0000
_SWAP_ALIGN = 0x1_0000


class SwapArea:
    """Accounting for the host swap region."""

    def __init__(self, capacity_bytes: int, host_memcpy_bps: float = 8e9):
        if capacity_bytes <= 0:
            raise ValueError("swap capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.host_memcpy_bps = float(host_memcpy_bps)
        self._used = 0
        self._allocs: Dict[int, int] = {}
        self._next_ptr = _SWAP_BASE
        self.peak_used = 0

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def allocate(self, size: int) -> int:
        """Reserve ``size`` bytes; returns the swap pointer."""
        if size <= 0:
            raise RuntimeApiError(
                RuntimeErrorCode.SWAP_ALLOCATION_FAILED, f"invalid size {size}"
            )
        if size > self.free_bytes:
            raise RuntimeApiError(
                RuntimeErrorCode.SWAP_ALLOCATION_FAILED,
                f"need {size}, free {self.free_bytes}",
            )
        # Bump-pointer from the previous block's end: a fixed stride would
        # let blocks larger than it alias the next block's address range.
        ptr = self._next_ptr
        self._next_ptr = -(-(ptr + size) // _SWAP_ALIGN) * _SWAP_ALIGN
        self._allocs[ptr] = size
        self._used += size
        self.peak_used = max(self.peak_used, self._used)
        return ptr

    def release(self, ptr: int) -> None:
        size = self._allocs.pop(ptr, None)
        if size is None:
            raise RuntimeApiError(
                RuntimeErrorCode.SWAP_DEALLOCATION_FAILED, f"0x{ptr:x} not a swap block"
            )
        self._used -= size

    def size_of(self, ptr: int) -> int:
        return self._allocs[ptr]

    def write_seconds(self, nbytes: int) -> float:
        """Host memcpy cost of staging ``nbytes`` into the swap area."""
        return nbytes / self.host_memcpy_bps

    def read_seconds(self, nbytes: int) -> float:
        return nbytes / self.host_memcpy_bps
