"""The memory manager (paper §4.5): virtual memory for GPUs.

Responsibilities, mirroring Table 1 and Figure 4:

``malloc``   create a PTE, allocate swap — no device interaction;
``copy_HD``  validate the PTE, stage data into the swap area (deferred
             mode) or transfer immediately when bound (overlap mode);
``copy_DH``  write back the device copy if it is the authoritative one,
             then serve from swap;
``free``     release swap and (if resident) device memory;
``launch``   the on-demand path: allocate device memory for every entry
             the kernel references — swapping intra-application, then
             inter-application when needed — perform the deferred bulk
             transfers, translate virtual→device pointers, execute;
``swap``     write back + release one entry (intra) or a whole context
             (inter/migration/unbind).

The memory manager also detects badly-written applications (transfers
beyond an allocation's bounds, launches referencing unknown pointers)
*before* they reach the CUDA runtime, and coalesces repeated host→device
copies into one bulk transfer per entry at launch time.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.sim import Condition, Environment, Event
from repro.simcuda.device import GPUDevice
from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.kernels import KernelDescriptor, KernelLaunch

from repro.core.config import RuntimeConfig
from repro.core.context import Context, ContextState
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.core.memory.eviction import make_eviction_policy
from repro.core.memory.nested import NestedStructure
from repro.core.memory.page_table import EntryType, PageTable, PageTableEntry
from repro.core.memory.swap import SwapArea
from repro.core.stats import RuntimeStats
from repro.obs import BYTES_BUCKETS, MetricsRegistry, Tracer

__all__ = ["MemoryManager", "NeedRetry"]


class NeedRetry(Exception):
    """Launch could not obtain device memory and found no swap victim:
    the calling context must unbind and retry later (§4.5)."""

    def __init__(self, required_bytes: int):
        self.required_bytes = required_bytes
        super().__init__(f"need {required_bytes} bytes; no victim available")


class _span_phase:
    """Attribute simulated time spent inside the block to phase ``name``
    of the context's live call span.  No-op between calls and with
    tracing off (``ctx.span`` is None).  Only used where ``ctx`` is the
    context *being served* — work done to a victim accrues to the
    requester's phase, never to the victim's span.

    A hand-rolled context manager (not ``@contextmanager``): this sits on
    every launch/copy path, and the generator machinery costs more than
    the phase accounting itself.
    """

    __slots__ = ("span", "name")

    def __init__(self, ctx: Context, name: str):
        self.span = ctx.span
        self.name = name

    def __enter__(self) -> None:
        if self.span is not None:
            self.span.push(self.name)

    def __exit__(self, *exc) -> bool:
        if self.span is not None:
            self.span.pop()
        return False


class MemoryManager:
    """Virtual-memory abstraction over the node's GPUs."""

    def __init__(
        self,
        env: Environment,
        config: RuntimeConfig,
        stats: Optional[RuntimeStats] = None,
        obs: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.config = config
        self.stats = stats or RuntimeStats()
        self.obs = obs or Tracer(env)
        metrics = metrics or MetricsRegistry()
        self._swap_out_bytes = metrics.histogram(
            "swap_out_bytes", "device→host write-back size per swapped entry",
            buckets=BYTES_BUCKETS,
        )
        self._swap_in_bytes = metrics.histogram(
            "swap_in_bytes", "host→device bulk-transfer size per faulted entry",
            buckets=BYTES_BUCKETS,
        )
        self.page_table = PageTable()
        self.swap = SwapArea(config.host_swap_capacity_bytes, config.host_memcpy_bps)
        #: Victim ordering for partial (device-wide) eviction.
        self.eviction_policy = make_eviction_policy(config.eviction_policy)
        if hasattr(self.eviction_policy, "overage_fn"):
            # quota_aware ordering (repro.qos): over-quota tenants'
            # entries become everyone's preferred victims.
            self.eviction_policy.overage_fn = self._tenant_overage
        #: parent virtual ptr -> registration
        self.nested: Dict[int, NestedStructure] = {}
        #: Wired by the runtime: unbind a context after an inter-app swap.
        self.unbind_callback: Optional[Callable[[Context, str], None]] = None
        #: Wired by the runtime: contexts currently bound to a device.
        self.bound_contexts_on: Callable[[GPUDevice], List[Context]] = lambda d: []
        #: Fired whenever device memory is released anywhere on the node;
        #: contexts blocked in the unbind-and-retry path wake on it
        #: instead of polling.
        self.memory_freed = Condition(env)
        #: Wired by the runtime: the node's healthy devices, consulted to
        #: decide whether a too-large working set could fit *some* GPU
        #: (rebind) or none at all (application error).
        self.devices_fn: Callable[[], List[GPUDevice]] = lambda: []
        #: Wired by the runtime: the dispatcher's journal-replay loop —
        #: the single replay implementation (§4.6), shared so a full-node
        #: restart replays with exactly the recovery path's semantics
        #: (re-journaling, unbind + backoff on memory pressure).
        self.replay_fn: Optional[Callable[[Context], Generator]] = None
        #: Overlap engine: per-context barrier events for in-flight
        #: asynchronous write-backs (checkpoints running behind the call
        #: path).  Every consumer of the dirty flags drains these first.
        self._pending_writebacks: Dict[Context, List[Event]] = {}
        #: Wired by the runtime: the node's transfer-cost model
        #: (repro.core.memory.costmodel).  Fed kernel observations from
        #: the launch path; consulted nowhere in this class, so leaving
        #: it unwired changes nothing.
        self.cost_model = None

    # ------------------------------------------------------------------
    # swap-traffic accounting (one helper per direction, so the stats
    # counter, the histogram and the trace event can never disagree)
    # ------------------------------------------------------------------
    def _account_swap_out(self, ctx: Context, nbytes: int) -> None:
        """One device→host write-back of authoritative device data."""
        self.stats.swap_bytes_out += nbytes
        self._swap_out_bytes.observe(nbytes)
        tenant = getattr(ctx, "tenant", None)
        if tenant is not None:
            tenant.swap_bytes_out_total += nbytes
        if self.obs.enabled:
            self.obs.swap_out(ctx, nbytes)

    def _account_swap_in(self, ctx: Context, nbytes: int) -> None:
        """One host→device bulk transfer of authoritative swap data."""
        self.stats.h2d_device_transfers += 1
        self.stats.swap_bytes_in += nbytes
        self._swap_in_bytes.observe(nbytes)
        tenant = getattr(ctx, "tenant", None)
        if tenant is not None:
            tenant.swap_bytes_in_total += nbytes
        if self.obs.enabled:
            self.obs.swap_in(ctx, nbytes)

    def _drain_writebacks(self, ctx: Context) -> Generator:
        """Barrier: wait until every in-flight asynchronous write-back of
        ``ctx`` has landed *and* its bookkeeping has run.  Required before
        reading dirty flags, freeing device memory, or launching."""
        while self._pending_writebacks.get(ctx):
            yield self._pending_writebacks[ctx][0]

    # ------------------------------------------------------------------
    # Table 1: Malloc
    # ------------------------------------------------------------------
    def malloc(
        self,
        ctx: Context,
        size: int,
        entry_type: EntryType = EntryType.LINEAR,
        params=None,
    ) -> int:
        """Create a PTE and its swap backing; returns the virtual address.

        No CUDA runtime action is triggered (transfer deferral): device
        memory is allocated on demand at the first kernel launch that
        references the entry.
        """
        if size <= 0:
            raise RuntimeApiError(
                RuntimeErrorCode.SWAP_ALLOCATION_FAILED, f"invalid size {size}"
            )
        tenant = getattr(ctx, "tenant", None)
        if (
            self.config.qos_enabled
            and tenant is not None
            and tenant.swap_quota_bytes is not None
        ):
            # Every allocation is swap backed, so the swap quota caps the
            # tenant's total footprint at allocation time — before any
            # device or swap-area resource is consumed.
            used = tenant.swap_bytes(self.page_table)
            if used + size > tenant.swap_quota_bytes:
                raise RuntimeApiError(
                    RuntimeErrorCode.TENANT_QUOTA_EXCEEDED,
                    f"tenant {tenant.name!r}: {used} + {size} bytes exceeds "
                    f"the {tenant.swap_quota_bytes}-byte swap quota",
                )
        pte = self.page_table.create_entry(ctx, size, entry_type, params)
        pte.configure_chunks(self.config.swap_chunk_bytes)
        try:
            pte.swap_ptr = self.swap.allocate(size)
        except RuntimeApiError:
            self.page_table.remove_entry(ctx, pte)
            raise
        return pte.virtual_ptr

    # ------------------------------------------------------------------
    # runtime extension: nested-structure registration
    # ------------------------------------------------------------------
    def register_nested(
        self,
        ctx: Context,
        parent_vptr: int,
        member_vptrs: Sequence[int],
        pointer_offsets: Sequence[int],
    ) -> None:
        parent = self.page_table.lookup(ctx, parent_vptr)
        members = [self.page_table.lookup(ctx, v) for v in member_vptrs]
        reg = NestedStructure(parent, members, list(pointer_offsets))
        self.nested[parent_vptr] = reg
        parent.nested = reg

    # ------------------------------------------------------------------
    # Table 1: Copy_HD
    # ------------------------------------------------------------------
    def copy_h2d(self, ctx: Context, vptr: int, nbytes: int) -> Generator:
        """Stage application data; defers the device transfer by default."""
        try:
            pte = self.page_table.lookup(ctx, vptr)
        except RuntimeApiError:
            self.stats.bad_calls_detected += 1
            raise
        if nbytes > pte.size:
            # Bad memory operation caught in the runtime, never reaching
            # the CUDA stack (§4.5).
            self.stats.bad_calls_detected += 1
            raise RuntimeApiError(
                RuntimeErrorCode.SWAP_SIZE_MISMATCH,
                f"copy of {nbytes} bytes into {pte.size}-byte allocation",
            )
        self.stats.h2d_requests += 1
        if self.config.overlap_transfers:
            # An asynchronous write-back may still be reading this entry's
            # device copy into swap; the host overwrite must order after
            # it, or the stale write-back would clobber the fresh data.
            with _span_phase(ctx, "writeback_drain"):
                yield from self._drain_writebacks(ctx)
        with _span_phase(ctx, "fault_in"):
            # Host-side staging into the swap area.
            yield self.env.timeout(self.swap.write_seconds(nbytes))
            pte.host_write(nbytes)
            if (
                not self.config.defer_transfers
                and ctx.bound
                and pte.is_allocated
                and (ctx.cache_vgpu is None or ctx.cache_vgpu is ctx.vgpu)
            ):
                # Overlap mode: push the data now.  (A residency cache held
                # by a *different* vGPU owns the device pointer — that case
                # stays staged and resolves at the next launch's reconcile.)
                if not pte.chunked:
                    yield from ctx.vgpu.memcpy_h2d(pte.device_ptr, nbytes)
                    pte.on_copied_to_device()
                    self.stats.h2d_device_transfers += 1
                else:
                    for run in pte.fault_runs():
                        yield from ctx.vgpu.memcpy_h2d(pte.device_ptr + run[0], run[1])
                        pte.complete_fault(run)
                        self.stats.h2d_device_transfers += 1

    # ------------------------------------------------------------------
    # Table 1: Copy_DH
    # ------------------------------------------------------------------
    def copy_d2h(self, ctx: Context, vptr: int, nbytes: int) -> Generator:
        """Serve a device→host read, writing back from the device if the
        device copy is the authoritative one."""
        try:
            pte = self.page_table.lookup(ctx, vptr)
        except RuntimeApiError:
            self.stats.bad_calls_detected += 1
            raise
        if nbytes > pte.size:
            self.stats.bad_calls_detected += 1
            raise RuntimeApiError(
                RuntimeErrorCode.SWAP_SIZE_MISMATCH,
                f"read of {nbytes} bytes from {pte.size}-byte allocation",
            )
        self.stats.d2h_requests += 1
        with _span_phase(ctx, "writeback_drain"):
            if self.config.overlap_transfers:
                # An asynchronous checkpoint may still be writing this data
                # back; the dirty flags are only meaningful once it lands.
                yield from self._drain_writebacks(ctx)
            if pte.to_copy_2swap:
                assert ctx.bound, "dirty device data implies a bound context"
                for run in pte.writeback_runs():
                    yield from ctx.vgpu.memcpy_d2h(pte.device_ptr + run[0], run[1])
                    pte.complete_writeback(run)
                    self._account_swap_out(ctx, run[1])
                self._maybe_clear_journal(ctx)
            yield self.env.timeout(self.swap.read_seconds(nbytes))

    # ------------------------------------------------------------------
    # Table 1: Free
    # ------------------------------------------------------------------
    def free(self, ctx: Context, vptr: int) -> Generator:
        try:
            pte = self.page_table.lookup(ctx, vptr)
        except RuntimeApiError:
            self.stats.bad_calls_detected += 1
            raise
        if self.config.overlap_transfers:
            # Never free device memory out from under an in-flight D2H.
            with _span_phase(ctx, "writeback_drain"):
                yield from self._drain_writebacks(ctx)
        if pte.is_allocated:
            if ctx.cache_vgpu is not None:
                # Retained residency: the caching vGPU's CUDA context
                # owns the pointer, wherever (if anywhere) the context is
                # bound now.
                cache = ctx.cache_vgpu
                if cache.cuda_context is not None and not cache.device.failed:
                    yield from cache.free(pte.device_ptr)
                pte.discard_device_dirty()
                pte.on_device_released()
                self.memory_freed.notify_all()
            else:
                assert ctx.bound, "resident allocation implies a bound context"
                yield from ctx.vgpu.free(pte.device_ptr)
                pte.discard_device_dirty()
                pte.on_device_released()
                self.memory_freed.notify_all()
        if pte.swap_ptr is not None:
            self.swap.release(pte.swap_ptr)
            pte.swap_ptr = None
        self.page_table.remove_entry(ctx, pte)
        self.nested.pop(vptr, None)

    # ------------------------------------------------------------------
    # Table 1: Launch (+ internal Swap)
    # ------------------------------------------------------------------
    def prepare_and_launch(
        self,
        ctx: Context,
        kernel: KernelDescriptor,
        arg_vptrs: Sequence[int],
        read_only_vptrs: Sequence[int] = (),
        grid: Tuple[int, int, int] = (1, 1, 1),
        block: Tuple[int, int, int] = (256, 1, 1),
        replaying: bool = False,
        control_plane: bool = True,
    ) -> Generator:
        """Execute one kernel on the context's bound vGPU.

        ``control_plane=False`` marks a launch issued as part of an
        instantiated graph replay: the driver's per-launch control-plane
        charge was already paid (once, for the whole graph).

        Returns the kernel's execution-engine seconds (used for automatic
        checkpointing and credit accounting).

        Raises
        ------
        NeedRetry
            Device memory could not be obtained and no swap victim was
            available; the caller must unbind + retry.
        RuntimeApiError
            The launch references an invalid virtual pointer, or the
            kernel's working set cannot fit the device at all.
        """
        assert ctx.bound, "launch requires a bound context"
        device = ctx.vgpu.device
        if self.config.overlap_transfers:
            # Barrier: pending asynchronous write-backs must land before
            # the dirty flags below are read (and before the kernel can
            # re-dirty the entries being written back).
            with _span_phase(ctx, "writeback_drain"):
                yield from self._drain_writebacks(ctx)
        if ctx.cache_vgpu is not None:
            # Locality retention (§4.4): revive the residency cache if
            # this binding landed on the caching vGPU, drop it otherwise
            # — before anything below touches device pointers.
            yield from self._reconcile_cache(ctx)

        ptes = self._resolve_launch_entries(ctx, arg_vptrs)
        working_set = sum(p.size for p in ptes)
        if working_set > self._usable_bytes(device):
            # The working set cannot fit *this* device.  If some other
            # healthy GPU could hold it, rebind there (dynamic binding);
            # only when no device on the node can is it the application's
            # error ("the memory footprint of each application fits the
            # most capable GPU" is the paper's §6 assumption).
            if any(
                working_set <= self._usable_bytes(d)
                for d in self.devices_fn()
                if not d.failed and d is not device
            ):
                self.stats.swap_retries += 1
                raise NeedRetry(working_set)
            raise RuntimeApiError(
                RuntimeErrorCode.KERNEL_FOOTPRINT_TOO_LARGE,
                f"kernel {kernel.name!r} needs {working_set} bytes; "
                f"no device offers that much",
            )

        for pte in ptes:
            if pte.prefetched:
                pte.prefetched = False
                if pte.is_allocated and not pte.to_copy_2dev:
                    # The CPU-phase prefetch staged exactly this entry:
                    # the bulk transfer below is already done.
                    self.stats.prefetch_hits += 1

        if self.config.qos_enabled:
            # Device-memory quota (repro.qos): a launch that would push
            # its tenant over quota evicts the tenant's *own* entries
            # first, before _ensure_resident may pressure other tenants.
            with _span_phase(ctx, "eviction_stall"):
                yield from self._enforce_tenant_quota(ctx, ptes)
        # Steady-state guard: each helper below is a strict no-op when its
        # precondition holds (it would yield nothing and mutate nothing),
        # so skipping it changes neither timestamps nor event order — it
        # only avoids spinning up generator frames on the hottest path.
        if not all(p.is_allocated for p in ptes):
            yield from self._ensure_resident(ctx, ptes)
        with _span_phase(ctx, "fault_in"):
            if any(p.to_copy_2dev for p in ptes):
                yield from self._perform_deferred_transfers(ctx, ptes)
            if self.nested:
                yield from self._patch_nested_parents(ctx, ptes)
            if self.config.overlap_transfers:
                # Kernels bypass the copy stream; make every staged
                # transfer visible before execution (the one sync point
                # of the pipelined launch path).
                yield from ctx.vgpu.synchronize()

        read_only = set(read_only_vptrs)
        device_ptrs = tuple(p.device_ptr for p in ptes)
        dev_read_only = tuple(
            p.device_ptr for p in ptes if p.virtual_ptr in read_only
        )
        translated = KernelLaunch(
            kernel=kernel,
            grid=grid,
            block=block,
            arg_pointers=device_ptrs,
            read_only=dev_read_only if dev_read_only else None,
            control_plane=control_plane,
        )
        t0 = self.env.now
        with _span_phase(ctx, "exec"):
            yield from ctx.vgpu.launch(translated)
        duration = self.env.now - t0
        if self.cost_model is not None:
            self.cost_model.observe_kernel(kernel.flops)

        now = self.env.now
        for pte in ptes:
            if pte.virtual_ptr in read_only:
                pte.kernel_read(now)
            else:
                pte.kernel_write(now)
        if not replaying:
            ctx.replay_journal.append(
                KernelLaunch(
                    kernel=kernel,
                    grid=grid,
                    block=block,
                    arg_pointers=tuple(arg_vptrs),
                    read_only=tuple(read_only) if read_only else None,
                )
            )
        ctx.last_launch_vptrs = tuple(arg_vptrs)
        self.stats.kernels_launched += 1
        ctx.kernels_launched += 1
        ctx.gpu_seconds_used += duration
        ctx.quantum_used_s += duration
        if ctx.tenant is not None:
            ctx.tenant.gpu_seconds_used += duration
        return duration

    def _usable_bytes(self, device: GPUDevice) -> int:
        return (
            device.memory_capacity
            - device.spec.context_reservation_bytes * self.config.vgpus_per_device
        )

    def _resolve_launch_entries(
        self, ctx: Context, arg_vptrs: Sequence[int]
    ) -> List[PageTableEntry]:
        """Translate launch arguments, expanding nested structures."""
        ptes: List[PageTableEntry] = []
        seen = set()
        for vptr in arg_vptrs:
            try:
                pte = self.page_table.lookup(ctx, vptr)
            except RuntimeApiError:
                self.stats.bad_calls_detected += 1
                raise
            closure = [pte]
            reg = self.nested.get(vptr)
            if reg is not None:
                closure = reg.closure()
            for p in closure:
                if p.virtual_ptr not in seen:
                    seen.add(p.virtual_ptr)
                    ptes.append(p)
        return ptes

    def _ensure_resident(self, ctx: Context, ptes: List[PageTableEntry]) -> Generator:
        """Allocate device memory for every entry, swapping as needed."""
        launch_set = {p.virtual_ptr for p in ptes}
        for pte in ptes:
            while not pte.is_allocated:
                try:
                    with _span_phase(ctx, "fault_in"):
                        address = yield from ctx.vgpu.malloc(pte.size)
                except CudaRuntimeError as exc:
                    if exc.code != CudaError.cudaErrorMemoryAllocation:
                        raise
                    # Making room on the device — including the victims'
                    # write-backs — is the requester's eviction stall.
                    with _span_phase(ctx, "eviction_stall"):
                        evicted = False
                        if self.config.enable_intra_swap:
                            evicted = yield from self._intra_swap_one(
                                ctx, launch_set
                            )
                        if not evicted:
                            unallocated = [
                                p.size for p in ptes if not p.is_allocated
                            ]
                            yield from self._inter_swap(
                                ctx, sum(unallocated), max(unallocated)
                            )
                    continue
                pte.on_device_allocated(address, ctx.vgpu.device.device_id)

    def _perform_deferred_transfers(
        self, ctx: Context, ptes: List[PageTableEntry]
    ) -> Generator:
        """One bulk H2D per entry whose swap copy is authoritative —
        however many copy_HD calls preceded it (coalescing, §4.5)."""
        if self.config.overlap_transfers:
            # Pipelined: enqueue every bulk transfer on the copy stream
            # before awaiting the first, so the stream worker keeps the
            # copy engine saturated back-to-back while other tenants'
            # kernels hold the execution engine.  Chunked entries enqueue
            # one transfer per contiguous dirty run — finer pipelining
            # units for the same total bytes.
            staged = [
                (pte, run, ctx.vgpu.memcpy_h2d_async(pte.device_ptr + run[0], run[1]))
                for pte in ptes
                for run in pte.fault_runs()
            ]
            for pte, run, ev in staged:
                yield ev
                pte.complete_fault(run)
                self._account_swap_in(ctx, run[1])
            return
        for pte in ptes:
            for run in pte.fault_runs():
                yield from ctx.vgpu.memcpy_h2d(pte.device_ptr + run[0], run[1])
                pte.complete_fault(run)
                self._account_swap_in(ctx, run[1])

    def _patch_nested_parents(self, ctx: Context, ptes: List[PageTableEntry]) -> Generator:
        """Rewrite embedded device pointers inside nested parents whose
        members may have moved (consistency of nested structures)."""
        for pte in ptes:
            reg = self.nested.get(pte.virtual_ptr)
            if reg is not None and reg.patch_bytes:
                yield from ctx.vgpu.memcpy_h2d(pte.device_ptr, reg.patch_bytes)

    # ------------------------------------------------------------------
    # swapping
    # ------------------------------------------------------------------
    def _intra_swap_one(self, ctx: Context, launch_set: set) -> Generator:
        """Evict one of the context's own resident entries that the
        current launch does not reference (LRU order).  Returns True if
        an entry was evicted."""
        candidates = [
            p
            for p in self.page_table.entries_for(ctx)
            if p.is_allocated and p.virtual_ptr not in launch_set
        ]
        if not candidates:
            return False
        victim = min(candidates, key=lambda p: (p.last_use, p.seq))
        yield from self._swap_entry(ctx, victim)
        self.stats.swaps_intra += 1
        self._maybe_clear_journal(ctx)
        return True

    def _swap_entry(
        self, ctx: Context, pte: PageTableEntry, notify: bool = True
    ) -> Generator:
        """Table 1 'Swap': write back if dirty, then release device memory.

        ``notify=False`` suppresses the memory-freed wake-up — used when a
        *failed* launch swaps itself out, so that stuck contexts do not
        wake each other in a retry storm.
        """
        if self.config.overlap_transfers:
            # An in-flight asynchronous write-back may target this entry.
            yield from self._drain_writebacks(ctx)
        if pte.to_copy_2swap:
            # Accounting belongs to the write-back, not the release: a
            # clean entry moves no data, so it must observe neither the
            # histogram nor the swap-out trace event.  Chunked entries
            # write back only their dirty runs.
            for run in pte.writeback_runs():
                yield from ctx.vgpu.memcpy_d2h(pte.device_ptr + run[0], run[1])
                pte.complete_writeback(run)
                self._account_swap_out(ctx, run[1])
        yield from ctx.vgpu.free(pte.device_ptr)
        pte.on_device_released()
        pte.prefetched = False
        if notify:
            self.memory_freed.notify_all()

    def _inter_swap(
        self, ctx: Context, required_bytes: int, min_contiguous: int = 0
    ) -> Generator:
        """Ask another application on the same GPU to swap (§4.5).

        A victim must be in a CPU phase with no pending device request,
        hold at least ``required_bytes`` of device memory, and not be
        excluded from sharing.  If none exists (or the feature is off),
        :class:`NeedRetry` propagates to the dispatcher, which unbinds the
        caller and retries later.  Swaps never cascade over multiple
        victims ("to reduce complexity and avoid inefficiencies").
        """
        if self.config.locality_binding:
            # Retained residency caches of unbound contexts are clean by
            # construction — reclaiming them moves no data, so they are
            # always the cheapest memory on the device.  Try them before
            # disturbing any live victim.
            device = ctx.vgpu.device
            yield from self._reclaim_cached(ctx, device, required_bytes,
                                            min_contiguous)
            if (
                device.allocator.free_bytes >= required_bytes
                and device.allocator.largest_free_block >= min_contiguous
            ):
                return
        if not self.config.enable_inter_swap:
            self.stats.swap_retries += 1
            raise NeedRetry(required_bytes)
        if self.config.eviction_mode == "partial":
            yield from self._evict_partial(ctx, required_bytes, min_contiguous)
            return
        victim = self.find_swap_victim(ctx.vgpu.device, required_bytes, exclude=ctx)
        if victim is None:
            self.stats.swap_retries += 1
            raise NeedRetry(required_bytes)
        yield victim.lock.acquire()
        try:
            # Re-check under the lock: the victim may have resumed.
            if not self._victim_eligible(victim, ctx.vgpu.device, required_bytes):
                self.stats.swap_retries += 1
                raise NeedRetry(required_bytes)
            yield from self.swap_out_context(victim)
            victim.swaps_suffered += 1
            self.stats.swaps_inter += 1
            if self.unbind_callback is not None:
                self.unbind_callback(victim, "inter-application swap")
        finally:
            victim.lock.release()

    def find_swap_victim(
        self, device: GPUDevice, required_bytes: int, exclude: Optional[Context] = None
    ) -> Optional[Context]:
        """A single context on ``device`` able to free ``required_bytes``."""
        best: Optional[Context] = None
        for other in self.bound_contexts_on(device):
            if other is exclude:
                continue
            if self._victim_eligible(other, device, required_bytes):
                # Prefer the victim idle the longest: eviction order is a
                # recency decision (the policy layer's LRU default), not
                # an accidental most-allocated-bytes heuristic.
                if best is None or (
                    (other.cpu_phase_since, other.context_id)
                    < (best.cpu_phase_since, best.context_id)
                ):
                    best = other
        return best

    def _victim_context_eligible(self, victim: Context, device: GPUDevice) -> bool:
        """Context-level eligibility shared by whole-context and partial
        eviction: bound here, idle in a CPU phase, willing to share."""
        return (
            victim.bound
            and victim.vgpu.device is device
            and victim.in_cpu_phase
            and not victim.excluded_from_sharing
            and victim.state is ContextState.ASSIGNED
        )

    def _victim_eligible(
        self, victim: Context, device: GPUDevice, required_bytes: int
    ) -> bool:
        return (
            self._victim_context_eligible(victim, device)
            and self.page_table.allocated_bytes(victim) >= required_bytes
        )

    def _evict_partial(
        self, ctx: Context, required_bytes: int, min_contiguous: int = 0
    ) -> Generator:
        """Device-wide eviction loop (eviction_mode="partial"): free only
        the bytes the faulting launch still needs, in the order chosen by
        the pluggable eviction policy, across however many eligible
        victims that takes.  Victims stay bound — they lose entries, not
        their vGPU — so a resumed victim simply faults its data back in.

        ``min_contiguous`` is the largest single allocation the requester
        still has to place: freeing bytes is not enough if they land in
        scattered holes, so the loop also runs until the allocator has a
        block that large (whole-context eviction gets this for free by
        clearing everything).
        """
        device = ctx.vgpu.device

        def satisfied() -> bool:
            # Memory already free counts toward the requester's need.
            return (
                device.allocator.free_bytes >= required_bytes
                and device.allocator.largest_free_block >= min_contiguous
            )

        if satisfied():
            return
        candidates = [
            (other, pte)
            for other in self.bound_contexts_on(device)
            if other is not ctx and self._victim_context_eligible(other, device)
            for pte in self.page_table.entries_for(other)
            if pte.is_allocated
        ]
        freed = 0
        dirty_written = 0
        touched: List[Context] = []
        for victim, pte in self.eviction_policy.order(candidates):
            if satisfied():
                break
            yield victim.lock.acquire()
            try:
                # Re-check under the lock: the victim may have resumed (or
                # freed the entry) while we waited.
                if not self._victim_context_eligible(victim, device):
                    continue
                if not pte.is_allocated:
                    continue
                dirty_written += pte.dirty_bytes()
                yield from self._swap_entry(victim, pte)
                freed += pte.size
                if victim not in touched:
                    touched.append(victim)
                    victim.swaps_suffered += 1
                    self.stats.swaps_inter += 1
                self._maybe_clear_journal(victim)
            finally:
                victim.lock.release()
        if freed == 0:
            self.stats.swap_retries += 1
            raise NeedRetry(required_bytes)
        self.stats.evictions_partial += 1
        self.stats.eviction_bytes_freed += freed
        self.stats.eviction_writeback_bytes += dirty_written
        if self.obs.enabled:
            self.obs.eviction(
                ctx, self.eviction_policy.name, freed, dirty_written, len(touched)
            )

    # ------------------------------------------------------------------
    # tenant quotas (repro.qos)
    # ------------------------------------------------------------------
    def _tenant_overage(self, ctx: Context) -> int:
        """Bytes the context's tenant currently sits above its device
        quota (0 when compliant, tenant-less, or QoS is off) — the
        quota_aware eviction ordering's key."""
        tenant = getattr(ctx, "tenant", None)
        if (
            not self.config.qos_enabled
            or tenant is None
            or tenant.device_quota_bytes is None
        ):
            return 0
        return max(0, tenant.device_bytes(self.page_table) - tenant.device_quota_bytes)

    def _enforce_tenant_quota(
        self, ctx: Context, ptes: List[PageTableEntry]
    ) -> Generator:
        """Evict the offending tenant's own entries until the upcoming
        launch fits its device quota.

        Candidates are the requester's own resident entries outside the
        launch's working set, plus resident entries of the tenant's
        *other* contexts that are eviction-eligible (idle in a CPU
        phase), LRU-ordered across all of them.  The quota is soft at
        the working-set level: if the launch's working set alone exceeds
        it, the launch still runs once every evictable entry is gone —
        the overage then makes the tenant the quota_aware ordering's
        preferred victim for everyone else's faults.
        """
        tenant = ctx.tenant
        if tenant is None or tenant.device_quota_bytes is None:
            return
        launch_set = {p.virtual_ptr for p in ptes}
        incoming = sum(p.size for p in ptes if not p.is_allocated)

        def overage() -> int:
            return (
                tenant.device_bytes(self.page_table)
                + incoming
                - tenant.device_quota_bytes
            )

        if overage() <= 0:
            return
        candidates: List[Tuple[Context, PageTableEntry]] = []
        for member in list(tenant.contexts):
            if member is ctx:
                candidates += [
                    (member, p)
                    for p in self.page_table.entries_for(member)
                    if p.is_allocated and p.virtual_ptr not in launch_set
                ]
            elif member.bound and self._victim_context_eligible(
                member, member.vgpu.device
            ):
                candidates += [
                    (member, p)
                    for p in self.page_table.entries_for(member)
                    if p.is_allocated
                ]
        freed = 0
        dirty_written = 0
        for victim, pte in sorted(candidates, key=lambda c: (c[1].last_use, c[1].seq)):
            if overage() <= 0:
                break
            if victim is ctx:
                # The caller already holds its own lock (handler path).
                if not pte.is_allocated:
                    continue
                dirty_written += pte.dirty_bytes()
                yield from self._swap_entry(ctx, pte, notify=False)
                freed += pte.size
            else:
                yield victim.lock.acquire()
                try:
                    # Re-check under the lock: the sibling may have
                    # resumed (or freed the entry) while we waited.
                    if not self._victim_context_eligible(
                        victim, victim.vgpu.device if victim.bound else None
                    ):
                        continue
                    if not pte.is_allocated:
                        continue
                    dirty_written += pte.dirty_bytes()
                    yield from self._swap_entry(victim, pte)
                    freed += pte.size
                    self._maybe_clear_journal(victim)
                finally:
                    victim.lock.release()
        if freed:
            self.stats.quota_evictions += 1
            self.stats.quota_eviction_bytes += freed
            self._maybe_clear_journal(ctx)
            if self.obs.enabled:
                self.obs.eviction(ctx, "tenant_quota", freed, dirty_written, 1)

    def swap_out_context(self, ctx: Context, notify: bool = True) -> Generator:
        """Write back and release every resident entry of ``ctx``.

        Afterwards the swap area captures the full device state of the
        application, so its failure-replay journal can be cleared.
        """
        if self.config.overlap_transfers:
            yield from self._swap_out_context_pipelined(ctx, notify)
            return
        for pte in self.page_table.entries_for(ctx):
            if pte.is_allocated:
                yield from self._swap_entry(ctx, pte, notify=notify)
        if ctx.cache_vgpu is ctx.vgpu:
            ctx.cache_vgpu = None
        ctx.replay_journal.clear()

    def _swap_out_context_pipelined(self, ctx: Context, notify: bool) -> Generator:
        """Whole-context swap-out through the copy stream: every dirty
        write-back is enqueued before the first is awaited, keeping the
        copy engine saturated back-to-back instead of paying a full
        call/return round trip per entry."""
        yield from self._drain_writebacks(ctx)
        resident = [p for p in self.page_table.entries_for(ctx) if p.is_allocated]
        staged = [
            (pte, run, ctx.vgpu.memcpy_d2h_async(pte.device_ptr + run[0], run[1]))
            for pte in resident
            for run in pte.writeback_runs()
        ]
        for pte, run, ev in staged:
            yield ev
            pte.complete_writeback(run)
            self._account_swap_out(ctx, run[1])
        for pte in resident:
            yield from ctx.vgpu.free(pte.device_ptr)
            pte.on_device_released()
            pte.prefetched = False
        if notify and resident:
            self.memory_freed.notify_all()
        if ctx.cache_vgpu is ctx.vgpu:
            ctx.cache_vgpu = None
        ctx.replay_journal.clear()

    # ------------------------------------------------------------------
    # locality retention (§4.4 + the transfer-cost model)
    # ------------------------------------------------------------------
    def unbind_retain(self, ctx: Context) -> Generator:
        """Unbind-with-retain: checkpoint the context's dirty device
        state, then leave its device allocations in place as a *clean*
        residency cache owned by the current vGPU's CUDA context.

        The swap area ends up holding a complete copy (so the replay
        journal clears and every later consumer of the swap state stays
        correct), while a rebinding that lands back on the caching vGPU
        finds the working set resident and skips the fault-in entirely.
        The caller still releases the vGPU afterwards, exactly like a
        swap-out unbind.
        """
        assert ctx.bound, "unbind_retain requires a bound context"
        assert ctx.cache_vgpu is None or ctx.cache_vgpu is ctx.vgpu, (
            "a stale cache must be reconciled before the context launches"
        )
        if self.config.overlap_transfers:
            yield from self._drain_writebacks(ctx)
        cached = False
        for pte in self.page_table.entries_for(ctx):
            if not pte.is_allocated:
                continue
            for run in pte.writeback_runs():
                yield from ctx.vgpu.memcpy_d2h(pte.device_ptr + run[0], run[1])
                pte.complete_writeback(run)
                self._account_swap_out(ctx, run[1])
            cached = True
        ctx.replay_journal.clear()
        if cached:
            ctx.cache_vgpu = ctx.vgpu

    def _reconcile_cache(self, ctx: Context) -> Generator:
        """Resolve retained residency at the first device operation after
        a rebind: rebinding to the caching vGPU revives the entries in
        place (a locality hit — the fault-in is avoided); anywhere else
        the pointers belong to a foreign CUDA context and the cache is
        dropped before any device operation can touch them."""
        cache = ctx.cache_vgpu
        if cache is None:
            return
        if ctx.vgpu is cache:
            ctx.cache_vgpu = None
            reused = sum(
                p.size - p.fault_bytes()
                for p in self.page_table.entries_for(ctx)
                if p.is_allocated
            )
            if reused > 0:
                self.stats.locality_hits += 1
                self.stats.locality_bytes_avoided += reused
            return
        yield from self.drop_cache(ctx)

    def drop_cache(self, ctx: Context) -> Generator:
        """Free the retained residency cache of ``ctx``; returns the
        bytes it covered.

        The page-table release is synchronous — no other simulation step
        can observe a half-dropped cache — while the driver frees (which
        take simulated time) run afterwards against the caching vGPU's
        CUDA context, which owns the pointers regardless of where the
        context is bound now.  If that vGPU's device has failed or been
        removed, the device state is simply lost (no device operation).
        """
        vgpu = ctx.cache_vgpu
        ctx.cache_vgpu = None
        if vgpu is None:
            return 0
        ptrs: List[int] = []
        freed = 0
        for pte in self.page_table.entries_for(ctx):
            if pte.is_allocated:
                ptrs.append(pte.device_ptr)
                freed += pte.size
                pte.prefetched = False
                pte.on_device_released()
        if ptrs and vgpu.cuda_context is not None and not vgpu.device.failed:
            for ptr in ptrs:
                yield from vgpu.free(ptr)
            self.memory_freed.notify_all()
        return freed

    def _reclaim_cached(
        self, ctx: Context, device: GPUDevice, required_bytes: int,
        min_contiguous: int,
    ) -> Generator:
        """Reclaim other contexts' retained caches on ``device`` until
        the requester's need fits (or no cache remains).

        Never blocks on a victim's lock: a locked owner is mid-call —
        possibly waiting for the very vGPU the requester holds — and
        waiting here could deadlock.  The lock check and the cache's
        synchronous release happen atomically (no intervening yield), so
        a skipped victim simply keeps its cache.
        """

        def satisfied() -> bool:
            return (
                device.allocator.free_bytes >= required_bytes
                and device.allocator.largest_free_block >= min_contiguous
            )

        freed = 0
        for victim in list(self.page_table.contexts()):
            if satisfied():
                break
            if victim is ctx or victim.bound:
                continue
            cache = getattr(victim, "cache_vgpu", None)
            if cache is None or cache.device is not device or victim.lock.locked:
                continue
            freed += yield from self.drop_cache(victim)
        if freed:
            self.stats.locality_reclaims += 1
            self.stats.locality_reclaim_bytes += freed

    def migrate_context_p2p(self, ctx: Context, dst_vgpu) -> Generator:
        """CUDA 4.0 dynamic binding (§4.8): move a context's resident
        entries to ``dst_vgpu``'s device with direct GPU-to-GPU copies,
        avoiding the host round trip of the swap path.

        Returns True on success.  On destination OOM, everything placed
        so far is rolled back and False is returned — the caller falls
        back to the swap-based path.
        """
        src_vgpu = ctx.vgpu
        assert src_vgpu is not None and src_vgpu.device is not dst_vgpu.device
        if self.config.overlap_transfers:
            # The peer copies below read device memory directly; pending
            # asynchronous write-backs must land first.
            yield from self._drain_writebacks(ctx)
        moved = []  # (pte, old_device_ptr, new_device_ptr)
        entries = [p for p in self.page_table.entries_for(ctx) if p.is_allocated]
        try:
            for pte in entries:
                new_ptr = yield from dst_vgpu.malloc(pte.size)
                moved.append((pte, pte.device_ptr, new_ptr))
        except CudaRuntimeError as exc:
            if exc.code != CudaError.cudaErrorMemoryAllocation:
                raise
            for _pte, _old, new_ptr in moved:
                yield from dst_vgpu.free(new_ptr)
            return False
        driver = dst_vgpu.driver
        for pte, old_ptr, new_ptr in moved:
            # Carry over the runs whose device copy is current (dirty or
            # in sync); swap-authoritative runs stay to_copy_2dev and
            # fault in from the host on the new device.
            for off, nbytes in pte.device_current_runs():
                yield from driver.memcpy_peer(
                    src_vgpu.cuda_context, old_ptr + off,
                    dst_vgpu.cuda_context, new_ptr + off,
                    nbytes,
                )
                self.stats.p2p_bytes += nbytes
            yield from src_vgpu.free(old_ptr)
            pte.relocate_device(new_ptr, dst_vgpu.device.device_id)
        return True

    # ------------------------------------------------------------------
    # checkpoint / failure support (§4.6)
    # ------------------------------------------------------------------
    def checkpoint(self, ctx: Context) -> Generator:
        """Write dirty entries back to swap, keeping them resident.

        In overlap mode the write-backs run *behind* the caller: they are
        enqueued on the context's copy stream and a completer process
        finishes the bookkeeping as they land, so the application returns
        to its CPU phase immediately and the copies hide under it.  A
        barrier event in :attr:`_pending_writebacks` lets every consumer
        of the dirty flags wait for the completer first.
        """
        if self.config.overlap_transfers and ctx.bound:
            with _span_phase(ctx, "writeback_drain"):
                yield from self._drain_writebacks(ctx)
            staged = [
                (pte, run, ctx.vgpu.memcpy_d2h_async(pte.device_ptr + run[0], run[1]))
                for pte in self.page_table.entries_for(ctx)
                for run in pte.writeback_runs()
            ]
            barrier = self.env.event()
            self._pending_writebacks.setdefault(ctx, []).append(barrier)
            self.env.process(
                self._finish_checkpoint(ctx, staged, barrier),
                name=f"ckpt-{ctx.owner}",
            )
            return
        written = 0
        with _span_phase(ctx, "writeback_drain"):
            for pte in self.page_table.entries_for(ctx):
                for run in pte.writeback_runs():
                    yield from ctx.vgpu.memcpy_d2h(pte.device_ptr + run[0], run[1])
                    pte.complete_writeback(run)
                    self._account_swap_out(ctx, run[1])
                    written += run[1]
        ctx.replay_journal.clear()
        self.stats.checkpoints += 1
        if self.obs.enabled:
            self.obs.checkpoint(ctx, written)

    def _finish_checkpoint(
        self,
        ctx: Context,
        staged: List[Tuple[PageTableEntry, Tuple[int, int], Event]],
        barrier: Event,
    ) -> Generator:
        """Completer for an asynchronous checkpoint: marks entries clean
        as their write-backs land, then clears the replay journal."""
        written = 0
        try:
            for pte, run, ev in staged:
                try:
                    yield ev
                except CudaRuntimeError:
                    # Device died mid-write-back; the swap copies already
                    # landed stay valid, recovery owns the rest.
                    return
                pte.complete_writeback(run)
                self._account_swap_out(ctx, run[1])
                written += run[1]
            if ctx.state is not ContextState.FAILED:
                ctx.replay_journal.clear()
                self.stats.checkpoints += 1
                if self.obs.enabled:
                    self.obs.checkpoint(ctx, written)
        finally:
            # Remove before succeeding so woken drainers see the barrier
            # gone when they re-check the pending list.
            pending = self._pending_writebacks.get(ctx)
            if pending is not None:
                pending.remove(barrier)
                if not pending:
                    del self._pending_writebacks[ctx]
            barrier.succeed()

    def reset_after_failure(self, ctx: Context) -> None:
        """Drop the (lost) device side of every entry without device
        operations; swap-resident data becomes authoritative and the
        journal will re-create what the device held exclusively."""
        ctx.cache_vgpu = None
        for pte in self.page_table.entries_for(ctx):
            pte.prefetched = False
            if pte.is_allocated:
                pte.drop_device_state()

    def replay(self, ctx: Context) -> Generator:
        """Re-execute journaled kernels after a failure rebind (§4.6:
        only memory operations required by not-yet-executed kernels are
        replayed — the journal holds exactly the launches whose effects
        were not yet captured in the swap area).

        Delegates to the dispatcher's journal-replay loop (wired through
        :attr:`replay_fn`) so full-node restart and single-device recovery
        share one replay implementation — same re-journaling, same
        unbind-and-back-off behavior under memory pressure — instead of
        two slowly diverging copies.
        """
        assert self.replay_fn is not None, "replay_fn not wired by the runtime"
        replayed = yield from self.replay_fn(ctx)
        return replayed

    # ------------------------------------------------------------------
    # overlap engine: CPU-phase prefetch
    # ------------------------------------------------------------------
    def prefetch(self, ctx: Context, vptrs: Sequence[int]) -> Generator:
        """Stage the predicted next-launch working set during a CPU phase.

        Deliberately conservative: only entries that fit the device's
        currently *free* memory are touched — prefetch never evicts and
        never swaps, it just moves work the next launch would have done
        into a window where the GPU's copy engine is otherwise idle.  The
        caller holds ``ctx.lock`` and this generator awaits every transfer
        it enqueued before returning, so a swap-out (which also takes the
        lock) can never race an in-flight prefetch copy.
        """
        assert ctx.bound, "prefetch requires a bound context"
        if ctx.cache_vgpu is not None:
            # Same reconcile as the launch path: never touch device
            # pointers a foreign CUDA context owns.
            yield from self._reconcile_cache(ctx)
        device = ctx.vgpu.device
        staged: List[Tuple[PageTableEntry, Tuple[int, int], Event]] = []
        for vptr in vptrs:
            try:
                pte = self.page_table.lookup(ctx, vptr)
            except RuntimeApiError:
                continue  # freed since the last launch; not an error here
            if not pte.is_allocated:
                if pte.size > device.allocator.free_bytes:
                    continue
                try:
                    address = yield from ctx.vgpu.malloc(pte.size)
                except CudaRuntimeError as exc:
                    if exc.code != CudaError.cudaErrorMemoryAllocation:
                        raise
                    continue
                pte.on_device_allocated(address, ctx.vgpu.device.device_id)
            for run in pte.fault_runs():
                staged.append(
                    (pte, run, ctx.vgpu.memcpy_h2d_async(pte.device_ptr + run[0], run[1]))
                )
        for pte, run, ev in staged:
            yield ev
            pte.complete_fault(run)
            self._account_swap_in(ctx, run[1])
            self.stats.prefetch_bytes += run[1]
            if not pte.prefetched:
                pte.prefetched = True
                self.stats.prefetch_issued += 1

    # ------------------------------------------------------------------
    def release_context(self, ctx: Context) -> Generator:
        """Application exit: free everything it still holds."""
        if self.config.overlap_transfers:
            # Never release device memory under an in-flight write-back.
            yield from self._drain_writebacks(ctx)
        released_device_memory = False
        for pte in self.page_table.entries_for(ctx):
            if pte.is_allocated and ctx.cache_vgpu is not None:
                # Exit with a retained cache: free via the caching vGPU's
                # CUDA context (the pointer owner), unless its device is
                # already gone.
                cache = ctx.cache_vgpu
                if cache.cuda_context is not None and not cache.device.failed:
                    yield from cache.free(pte.device_ptr)
                    released_device_memory = True
                pte.discard_device_dirty()
                pte.on_device_released()
            elif pte.is_allocated and ctx.bound:
                yield from ctx.vgpu.free(pte.device_ptr)
                pte.discard_device_dirty()
                pte.on_device_released()
                released_device_memory = True
            if pte.swap_ptr is not None:
                self.swap.release(pte.swap_ptr)
                pte.swap_ptr = None
                # The per-entry device frees above yield, so a monitor
                # tick can sample between entries: advance the epoch so
                # memoized swap gauges see this release immediately
                # (drop_context's bump only lands after the loop).
                self.page_table.epoch += 1
            self.nested.pop(pte.virtual_ptr, None)
        ctx.cache_vgpu = None
        self.page_table.drop_context(ctx)
        if released_device_memory:
            self.memory_freed.notify_all()

    # ------------------------------------------------------------------
    def _maybe_clear_journal(self, ctx: Context) -> None:
        """The journal exists to regenerate device-only state; once no
        entry is device-dirty, the swap area is a complete checkpoint."""
        if not any(p.to_copy_2swap for p in self.page_table.entries_for(ctx)):
            ctx.replay_journal.clear()

    def mem_usage(self, ctx: Context) -> int:
        """The paper's ``MemUsage`` for one context."""
        return self.page_table.allocated_bytes(ctx)

    def mem_avail(self, device: GPUDevice) -> int:
        """The paper's ``MemAvailList`` entry for one device."""
        return device.allocator.free_bytes
