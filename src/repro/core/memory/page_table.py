"""Page table and page-table entries (paper §4.5).

Each entry is created on a memory-allocation call and carries three
pointers — the *virtual* pointer returned to the application, the pointer
into the host *swap* area, and (while resident) the *device* pointer —
plus the three flags of the paper's Figure 4:

``isAllocated``
    the entry currently has device memory backing it;
``toCopy2Dev``
    the authoritative data is (only) in the swap area and must be copied
    to the device before the next kernel that references it;
``toCopy2Swap``
    the authoritative data is (only) on the device and must be copied
    back before serving a device→host read or releasing the device copy.

The five legal flag states and the transitions between them are exactly
the Figure 4 state diagram; :meth:`PageTableEntry.check_invariants`
rejects anything else (exercised by the property tests).

As the paper notes, "page" is a slight misnomer: allocations are not
carved into fixed-size pages — each entry covers a whole allocation.
That coarseness is optionally refined by *chunking*
(``RuntimeConfig.swap_chunk_bytes``): a large entry is split into
fixed-size slices, each obeying the Figure 4 state machine individually,
so a partially written buffer stages/faults/writes back only the chunks
that actually hold (or dirtied) data.  The entry keeps one device
allocation — chunks refine *transfer* granularity, not device placement —
and its flags become the OR over its chunks.

Chunk state is **interned**: instead of one Python object per chunk
(hundreds of bytes each, tens of thousands of objects for a multi-GiB
entry), an entry holds three packed bit-vectors — ``valid`` /
``to_copy_2dev`` / ``to_copy_2swap``, bit *i* describing chunk *i* —
stored as arbitrary-precision integers (one machine word per 30–64
chunks, no numpy dependency).  Range updates are single mask operations
and run coalescing (:meth:`PageTableEntry.fault_runs` and friends) is a
word-at-a-time scan over set-bit spans rather than a per-chunk Python
loop.  The :attr:`PageTableEntry.chunks` property materializes read-only
:class:`Chunk` snapshots for introspection and tests; mutating a
snapshot does not write through to the entry.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import RuntimeApiError, RuntimeErrorCode

__all__ = ["Chunk", "EntryType", "PageTableEntry", "PageTable", "VIRTUAL_BASE"]

#: Virtual addresses live far away from simulated device addresses so
#: that passing one where the other is expected is caught immediately.
VIRTUAL_BASE = 0x7000_0000_0000
VIRTUAL_ALIGNMENT = 256

_LEGAL_STATES = {
    (False, False, False),  # created, nothing anywhere yet
    (False, True, False),   # data in swap only
    (True, False, False),   # resident, device and swap in sync
    (True, True, False),    # resident, swap copy is newer (host overwrote)
    (True, False, True),    # resident, device copy is newer (kernel wrote)
}

try:  # Python >= 3.10
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(x: int) -> int:
        return bin(x).count("1")


class EntryType(enum.Enum):
    """Kind of allocation behind the entry (paper: ``entry_t type``)."""

    LINEAR = "linear"        # cudaMalloc
    ARRAY = "array"          # cudaMallocArray
    PITCHED = "pitched"      # cudaMallocPitch

_entry_seq = itertools.count(1)


class Chunk:
    """Read-only snapshot of one fixed-size slice of a chunked allocation.

    ``valid``
        the chunk holds application data somewhere (swap or device);
        a never-written chunk needs no transfer in either direction.
    ``to_copy_2dev`` / ``to_copy_2swap``
        the Figure 4 flags, per chunk: at most one may be set, and an
        invalid chunk carries neither.

    The live state lives in the entry's packed bit-vectors; ``chunks``
    materializes these snapshots on demand.  Writing to a snapshot does
    not write through.
    """

    __slots__ = ("offset", "size", "valid", "to_copy_2dev", "to_copy_2swap")

    def __init__(self, offset: int, size: int):
        self.offset = offset
        self.size = size
        self.valid = False
        self.to_copy_2dev = False
        self.to_copy_2swap = False

    def __repr__(self) -> str:
        return (
            f"<Chunk +0x{self.offset:x} size={self.size} V={int(self.valid)} "
            f"D={int(self.to_copy_2dev)} S={int(self.to_copy_2swap)}>"
        )


class PageTableEntry:
    """One allocation's translation + state."""

    __slots__ = (
        "virtual_ptr",
        "swap_ptr",
        "device_ptr",
        "size",
        "is_allocated",
        "to_copy_2dev",
        "to_copy_2swap",
        "entry_type",
        "params",
        "nested",
        "last_use",
        "use_count",
        "referenced",
        "seq",
        "prefetched",
        "_chunk_bytes",
        "_nchunks",
        "_valid_bm",
        "_dev_bm",
        "_swap_bm",
        "device_id",
        "_table",
    )

    def __init__(
        self,
        virtual_ptr: int,
        size: int,
        entry_type: EntryType = EntryType.LINEAR,
        params: Optional[Any] = None,
    ):
        self.virtual_ptr = virtual_ptr
        self.swap_ptr: Optional[int] = None
        self.device_ptr: Optional[int] = None
        self.size = size
        self.is_allocated = False
        self.to_copy_2dev = False
        self.to_copy_2swap = False
        self.entry_type = entry_type
        self.params = params
        #: Nested-structure descriptor (None for flat allocations).
        self.nested = None
        #: Simulated time of the last launch referencing this entry
        #: (victim choice for intra-application swap and LRU eviction).
        self.last_use = 0.0
        #: Launches that referenced this entry (LFU eviction).
        self.use_count = 0
        #: Referenced bit, set on every launch use and cleared by the
        #: second-chance eviction policy's clock sweep.
        self.referenced = False
        self.seq = next(_entry_seq)
        #: Set by the overlap engine when a CPU-phase prefetch staged this
        #: entry; the next launch referencing it counts a prefetch hit.
        self.prefetched = False
        #: Demand-paging granularity (0 = whole-entry) and the packed
        #: per-chunk state: bit i of each bit-vector is chunk i.
        self._chunk_bytes = 0
        self._nchunks = 0
        self._valid_bm = 0
        self._dev_bm = 0
        self._swap_bm = 0
        #: Device holding the current device allocation (None while not
        #: resident).  Per-device residency accounting for the
        #: transfer-cost model (§4.4 locality-aware binding).
        self.device_id: Optional[int] = None
        #: Owning PageTable (set by create_entry; None for standalone
        #: entries in unit tests).  Lets every state transition advance
        #: the table's residency epoch, which invalidates memoized
        #: TransferCostModel evaluations.
        self._table: Optional["PageTable"] = None

    # -- state machine (Figure 4) --------------------------------------
    @property
    def flags(self):
        return (self.is_allocated, self.to_copy_2dev, self.to_copy_2swap)

    @property
    def chunked(self) -> bool:
        return self._chunk_bytes > 0

    @property
    def chunks(self) -> Optional[List[Chunk]]:
        """Materialized snapshot of the per-chunk state (None when
        unchunked).  For introspection/tests only: mutations to the
        snapshot objects do not write through to the bit-vectors."""
        cb = self._chunk_bytes
        if cb == 0:
            return None
        out: List[Chunk] = []
        valid, dev, swap = self._valid_bm, self._dev_bm, self._swap_bm
        for i in range(self._nchunks):
            offset = i * cb
            c = Chunk(offset, min(cb, self.size - offset))
            bit = 1 << i
            c.valid = bool(valid & bit)
            c.to_copy_2dev = bool(dev & bit)
            c.to_copy_2swap = bool(swap & bit)
            out.append(c)
        return out

    def _bump(self) -> None:
        table = self._table
        if table is not None:
            table.epoch += 1

    def check_invariants(self) -> None:
        if self.is_allocated and self.device_ptr is None:
            raise AssertionError(f"allocated PTE without device pointer: {self!r}")
        if not self.is_allocated and self.device_ptr is not None:
            raise AssertionError(f"unallocated PTE with device pointer: {self!r}")
        if self._chunk_bytes == 0:
            if self.flags not in _LEGAL_STATES:
                raise AssertionError(f"illegal PTE state {self.flags} for {self!r}")
            return
        # Chunked entry: every chunk individually obeys Figure 4, and the
        # entry flags are the OR over the chunks (so a mixed aggregate —
        # one chunk host-newer, another device-newer — is legal).
        valid, dev, swap = self._valid_bm, self._dev_bm, self._swap_bm
        if dev & swap:
            raise AssertionError(f"illegal chunk state (2dev & 2swap) in {self!r}")
        if (dev | swap) & ~valid:
            raise AssertionError(f"invalid chunk with data flags in {self!r}")
        if swap and not self.is_allocated:
            raise AssertionError(f"device-dirty chunk without device memory {self!r}")
        if self.to_copy_2dev != (dev != 0) or self.to_copy_2swap != (swap != 0):
            raise AssertionError(f"entry flags out of sync with chunks: {self!r}")

    def on_host_write(self) -> None:
        """copy_HD intercepted: the swap copy is now authoritative."""
        self._bump()
        self.to_copy_2dev = True
        self.to_copy_2swap = False
        self.check_invariants()

    def on_device_allocated(
        self, device_ptr: int, device_id: Optional[int] = None
    ) -> None:
        self._bump()
        self.is_allocated = True
        self.device_ptr = device_ptr
        self.device_id = device_id
        self.check_invariants()

    def on_copied_to_device(self) -> None:
        """The deferred H2D transfer happened (launch preparation)."""
        assert self.is_allocated
        self._bump()
        self.to_copy_2dev = False
        self.check_invariants()

    def on_kernel_write(self, now: float) -> None:
        """A launch referenced this entry as writable."""
        assert self.is_allocated and not self.to_copy_2dev
        self._bump()
        self.to_copy_2swap = True
        self._touch(now)
        self.check_invariants()

    def on_kernel_read(self, now: float) -> None:
        """A launch referenced this entry read-only."""
        assert self.is_allocated and not self.to_copy_2dev
        self._touch(now)
        self.check_invariants()

    def on_copied_to_swap(self) -> None:
        """The dirty device copy was written back (copy_DH / checkpoint)."""
        self._bump()
        self.to_copy_2swap = False
        self.check_invariants()

    def on_device_released(self) -> None:
        """Device memory freed (swap-out); swap copy is authoritative."""
        assert not self.to_copy_2swap, "must write back before releasing"
        self._bump()
        self.is_allocated = False
        self.device_ptr = None
        self.device_id = None
        if self._chunk_bytes == 0:
            self.to_copy_2dev = True
        else:
            self._dev_bm |= self._valid_bm
            self._sync_flags()
        self.check_invariants()

    def relocate_device(self, device_ptr: int, device_id: int) -> None:
        """The device copy moved (peer-to-peer migration): same data and
        flags, new physical home."""
        assert self.is_allocated
        self._bump()
        self.device_ptr = device_ptr
        self.device_id = device_id
        self.check_invariants()

    def _touch(self, now: float) -> None:
        """Recency/frequency bookkeeping shared by every launch use."""
        self.last_use = now
        self.use_count += 1
        self.referenced = True

    # -- chunked granularity (demand-paged swapping) --------------------
    def configure_chunks(self, chunk_bytes: int) -> None:
        """Split the entry into fixed-size chunks (the last may be short).

        Must be called before any data movement; entries at or below one
        chunk stay whole-entry (chunking them would only add bookkeeping).
        """
        assert self.swap_ptr is None and self.flags == (False, False, False)
        if chunk_bytes <= 0 or self.size <= chunk_bytes:
            return
        self._chunk_bytes = chunk_bytes
        self._nchunks = -(-self.size // chunk_bytes)

    def _sync_flags(self) -> None:
        self.to_copy_2dev = self._dev_bm != 0
        self.to_copy_2swap = self._swap_bm != 0

    def _runs_from(self, bm: int) -> List[Tuple[int, int]]:
        """Coalesce a bit-vector's set-bit spans into contiguous
        (offset, nbytes) runs — word-at-a-time: each iteration consumes
        one whole span via lowest-set-bit / trailing-ones arithmetic."""
        runs: List[Tuple[int, int]] = []
        cb = self._chunk_bytes
        size = self.size
        x = bm
        while x:
            start = (x & -x).bit_length() - 1
            t = x >> start
            span = ((t + 1) & ~t).bit_length() - 1  # trailing ones
            offset = start * cb
            end = offset + span * cb
            if end > size:
                end = size
            runs.append((offset, end - offset))
            x = (t >> span) << (start + span)
        return runs

    def _mask_for_run(self, run: Tuple[int, int]) -> int:
        """Bit mask of the chunks whose offset falls inside ``run``."""
        offset, nbytes = run
        cb = self._chunk_bytes
        lo = (offset + cb - 1) // cb
        hi = (offset + nbytes + cb - 1) // cb
        if hi > self._nchunks:
            hi = self._nchunks
        if hi <= lo:
            return 0
        return ((1 << (hi - lo)) - 1) << lo

    def _mask_bytes(self, bm: int) -> int:
        """Total bytes covered by a bit-vector's set chunks (the last
        chunk may be short)."""
        cb = self._chunk_bytes
        total = _popcount(bm) * cb
        if (bm >> (self._nchunks - 1)) & 1:
            total -= self._nchunks * cb - self.size  # short tail
        return total

    def host_write(self, nbytes: Optional[int] = None) -> None:
        """copy_HD intercepted for ``[0, nbytes)``: the swap copy of the
        covered range is now authoritative.  Whole-entry granularity
        ignores the extent (the paper's behavior)."""
        if self._chunk_bytes == 0:
            self.on_host_write()
            return
        self._bump()
        covered = self.size if nbytes is None else min(nbytes, self.size)
        cb = self._chunk_bytes
        k = (covered + cb - 1) // cb
        if k > self._nchunks:
            k = self._nchunks
        mask = (1 << k) - 1
        self._valid_bm |= mask
        self._dev_bm |= mask
        self._swap_bm &= ~mask
        self._sync_flags()
        self.check_invariants()

    def kernel_write(self, now: float) -> None:
        """A launch referenced this entry as writable.

        Chunked: the kernel computed on the data the application put
        there, so the *valid* chunks become device-dirty; a buffer with
        no valid chunk is an output buffer the kernel populates entirely.
        """
        if self._chunk_bytes == 0:
            self.on_kernel_write(now)
            return
        self._bump()
        assert self.is_allocated and not self.to_copy_2dev
        if self._valid_bm == 0:
            full = (1 << self._nchunks) - 1
            self._valid_bm = full
            self._swap_bm = full
        else:
            self._swap_bm |= self._valid_bm
        self._touch(now)
        self._sync_flags()
        self.check_invariants()

    def kernel_read(self, now: float) -> None:
        if self._chunk_bytes == 0:
            self.on_kernel_read(now)
            return
        assert self.is_allocated and not self.to_copy_2dev
        self._touch(now)
        self.check_invariants()

    def fault_runs(self) -> List[Tuple[int, int]]:
        """Contiguous (offset, nbytes) H2D transfers needed before the
        device copy is current.  Whole-entry: one run covering the
        allocation, or none."""
        if self._chunk_bytes == 0:
            return [(0, self.size)] if self.to_copy_2dev else []
        return self._runs_from(self._dev_bm)

    def complete_fault(self, run: Tuple[int, int]) -> None:
        """One fault run's bulk transfer landed on the device."""
        assert self.is_allocated
        if self._chunk_bytes == 0:
            self.on_copied_to_device()
            return
        self._bump()
        self._dev_bm &= ~self._mask_for_run(run)
        self._sync_flags()
        self.check_invariants()

    def writeback_runs(self) -> List[Tuple[int, int]]:
        """Contiguous (offset, nbytes) D2H write-backs of device-dirty
        data (eviction, checkpoint, device→host reads)."""
        if self._chunk_bytes == 0:
            return [(0, self.size)] if self.to_copy_2swap else []
        return self._runs_from(self._swap_bm)

    def complete_writeback(self, run: Tuple[int, int]) -> None:
        """One write-back run landed in the swap area."""
        if self._chunk_bytes == 0:
            self.on_copied_to_swap()
            return
        self._bump()
        self._swap_bm &= ~self._mask_for_run(run)
        self._sync_flags()
        self.check_invariants()

    def device_current_runs(self) -> List[Tuple[int, int]]:
        """Runs whose device copy is current (peer-to-peer migration)."""
        if self._chunk_bytes == 0:
            return [(0, self.size)] if not self.to_copy_2dev else []
        return self._runs_from(self._valid_bm & ~self._dev_bm)

    def discard_device_dirty(self) -> None:
        """Drop device-dirty state without writing back (cudaFree)."""
        self._bump()
        if self._chunk_bytes == 0:
            self.to_copy_2swap = False
            return
        self._swap_bm = 0
        self._sync_flags()

    def drop_device_state(self) -> None:
        """The device copy is lost (device failure): swap-resident data
        becomes authoritative, without any device operation."""
        self._bump()
        self.is_allocated = False
        self.device_ptr = None
        self.device_id = None
        if self._chunk_bytes == 0:
            self.to_copy_2swap = False
            self.to_copy_2dev = True
        else:
            self._swap_bm = 0
            self._dev_bm |= self._valid_bm
            self._sync_flags()
        self.check_invariants()

    def fault_bytes(self) -> int:
        """Bytes a launch must transfer before this entry is current."""
        if self._chunk_bytes == 0:
            return self.size if self.to_copy_2dev else 0
        return self._mask_bytes(self._dev_bm)

    def dirty_bytes(self) -> int:
        """Bytes an eviction of this entry would write back."""
        if self._chunk_bytes == 0:
            return self.size if self.to_copy_2swap else 0
        return self._mask_bytes(self._swap_bm)

    def valid_bytes(self) -> int:
        """Bytes of application data behind the entry."""
        if self._chunk_bytes == 0:
            return self.size
        return self._mask_bytes(self._valid_bm)

    def __repr__(self) -> str:
        return (
            f"<PTE v=0x{self.virtual_ptr:x} size={self.size} "
            f"A={int(self.is_allocated)} D={int(self.to_copy_2dev)} "
            f"S={int(self.to_copy_2swap)}>"
        )


class PageTable:
    """All PTEs for all active and pending contexts on a node.

    Mirrors the paper's ``map<Context*, list<PageTableEntry*>*>`` plus an
    index by virtual address for O(1) translation.
    """

    def __init__(self):
        #: Residency epoch: advanced by every PTE state transition and by
        #: entry creation/removal.  Consumers (TransferCostModel) key
        #: memoized whole-table aggregates by it; any change anywhere in
        #: the table invalidates them.
        self.epoch = 0
        self._by_context: Dict[Any, List[PageTableEntry]] = {}
        self._by_vptr: Dict[int, PageTableEntry] = {}
        self._vptr_cursor = VIRTUAL_BASE
        #: Upper bound of the virtual address space (Table 1: "A virtual
        #: address cannot be assigned").
        self.virtual_space_limit = VIRTUAL_BASE + (1 << 44)

    # ------------------------------------------------------------------
    def assign_virtual_address(self, size: int) -> int:
        aligned = (size + VIRTUAL_ALIGNMENT - 1) // VIRTUAL_ALIGNMENT * VIRTUAL_ALIGNMENT
        if self._vptr_cursor + aligned > self.virtual_space_limit:
            raise RuntimeApiError(RuntimeErrorCode.VIRTUAL_ADDRESS_EXHAUSTED)
        vptr = self._vptr_cursor
        self._vptr_cursor += aligned
        return vptr

    def create_entry(
        self,
        ctx: Any,
        size: int,
        entry_type: EntryType = EntryType.LINEAR,
        params: Optional[Any] = None,
    ) -> PageTableEntry:
        vptr = self.assign_virtual_address(size)
        pte = PageTableEntry(vptr, size, entry_type, params)
        pte._table = self
        self.epoch += 1
        self._by_context.setdefault(ctx, []).append(pte)
        self._by_vptr[vptr] = pte
        return pte

    def lookup(self, ctx: Any, vptr: int) -> PageTableEntry:
        """Translate a virtual pointer, enforcing per-context isolation."""
        pte = self._by_vptr.get(vptr)
        if pte is None or pte not in self._by_context.get(ctx, ()):
            raise RuntimeApiError(
                RuntimeErrorCode.NO_VALID_PTE, f"0x{vptr:x} for {ctx!r}"
            )
        return pte

    def entries_for(self, ctx: Any) -> List[PageTableEntry]:
        return list(self._by_context.get(ctx, ()))

    def remove_entry(self, ctx: Any, pte: PageTableEntry) -> None:
        self.epoch += 1
        self._by_context.get(ctx, []).remove(pte)
        del self._by_vptr[pte.virtual_ptr]

    def drop_context(self, ctx: Any) -> List[PageTableEntry]:
        """Remove and return every PTE of ``ctx`` (application exit)."""
        self.epoch += 1
        entries = self._by_context.pop(ctx, [])
        for pte in entries:
            self._by_vptr.pop(pte.virtual_ptr, None)
        return entries

    def contexts(self) -> List[Any]:
        return list(self._by_context)

    def allocated_bytes(self, ctx: Any) -> int:
        """Device-resident bytes of ``ctx`` (the paper's ``MemUsage``)."""
        return sum(p.size for p in self._by_context.get(ctx, ()) if p.is_allocated)

    def total_bytes(self, ctx: Any) -> int:
        return sum(p.size for p in self._by_context.get(ctx, ()))

    def resident_bytes_on(self, ctx: Any, device_id: int) -> int:
        """Chunk-aware bytes of ``ctx`` current on ``device_id``: resident
        allocation minus what would still have to fault in.  The signal
        the transfer-cost model scores candidate devices by."""
        return sum(
            p.size - p.fault_bytes()
            for p in self._by_context.get(ctx, ())
            if p.is_allocated and p.device_id == device_id
        )

    def resident_device(self, ctx: Any) -> Optional[int]:
        """The device holding ``ctx``'s resident entries (None if no
        entry is device-resident)."""
        for p in self._by_context.get(ctx, ()):
            if p.is_allocated and p.device_id is not None:
                return p.device_id
        return None
