"""Page table and page-table entries (paper §4.5).

Each entry is created on a memory-allocation call and carries three
pointers — the *virtual* pointer returned to the application, the pointer
into the host *swap* area, and (while resident) the *device* pointer —
plus the three flags of the paper's Figure 4:

``isAllocated``
    the entry currently has device memory backing it;
``toCopy2Dev``
    the authoritative data is (only) in the swap area and must be copied
    to the device before the next kernel that references it;
``toCopy2Swap``
    the authoritative data is (only) on the device and must be copied
    back before serving a device→host read or releasing the device copy.

The five legal flag states and the transitions between them are exactly
the Figure 4 state diagram; :meth:`PageTableEntry.check_invariants`
rejects anything else (exercised by the property tests).

As the paper notes, "page" is a slight misnomer: allocations are not
carved into fixed-size pages — each entry covers a whole allocation.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, List, Optional

from repro.core.errors import RuntimeApiError, RuntimeErrorCode

__all__ = ["EntryType", "PageTableEntry", "PageTable", "VIRTUAL_BASE"]

#: Virtual addresses live far away from simulated device addresses so
#: that passing one where the other is expected is caught immediately.
VIRTUAL_BASE = 0x7000_0000_0000
VIRTUAL_ALIGNMENT = 256

_LEGAL_STATES = {
    (False, False, False),  # created, nothing anywhere yet
    (False, True, False),   # data in swap only
    (True, False, False),   # resident, device and swap in sync
    (True, True, False),    # resident, swap copy is newer (host overwrote)
    (True, False, True),    # resident, device copy is newer (kernel wrote)
}


class EntryType(enum.Enum):
    """Kind of allocation behind the entry (paper: ``entry_t type``)."""

    LINEAR = "linear"        # cudaMalloc
    ARRAY = "array"          # cudaMallocArray
    PITCHED = "pitched"      # cudaMallocPitch

_entry_seq = itertools.count(1)


class PageTableEntry:
    """One allocation's translation + state."""

    __slots__ = (
        "virtual_ptr",
        "swap_ptr",
        "device_ptr",
        "size",
        "is_allocated",
        "to_copy_2dev",
        "to_copy_2swap",
        "entry_type",
        "params",
        "nested",
        "last_use",
        "seq",
        "prefetched",
    )

    def __init__(
        self,
        virtual_ptr: int,
        size: int,
        entry_type: EntryType = EntryType.LINEAR,
        params: Optional[Any] = None,
    ):
        self.virtual_ptr = virtual_ptr
        self.swap_ptr: Optional[int] = None
        self.device_ptr: Optional[int] = None
        self.size = size
        self.is_allocated = False
        self.to_copy_2dev = False
        self.to_copy_2swap = False
        self.entry_type = entry_type
        self.params = params
        #: Nested-structure descriptor (None for flat allocations).
        self.nested = None
        #: Simulated time of the last launch referencing this entry
        #: (victim choice for intra-application swap).
        self.last_use = 0.0
        self.seq = next(_entry_seq)
        #: Set by the overlap engine when a CPU-phase prefetch staged this
        #: entry; the next launch referencing it counts a prefetch hit.
        self.prefetched = False

    # -- state machine (Figure 4) --------------------------------------
    @property
    def flags(self):
        return (self.is_allocated, self.to_copy_2dev, self.to_copy_2swap)

    def check_invariants(self) -> None:
        if self.flags not in _LEGAL_STATES:
            raise AssertionError(f"illegal PTE state {self.flags} for {self!r}")
        if self.is_allocated and self.device_ptr is None:
            raise AssertionError(f"allocated PTE without device pointer: {self!r}")
        if not self.is_allocated and self.device_ptr is not None:
            raise AssertionError(f"unallocated PTE with device pointer: {self!r}")

    def on_host_write(self) -> None:
        """copy_HD intercepted: the swap copy is now authoritative."""
        self.to_copy_2dev = True
        self.to_copy_2swap = False
        self.check_invariants()

    def on_device_allocated(self, device_ptr: int) -> None:
        self.is_allocated = True
        self.device_ptr = device_ptr
        self.check_invariants()

    def on_copied_to_device(self) -> None:
        """The deferred H2D transfer happened (launch preparation)."""
        assert self.is_allocated
        self.to_copy_2dev = False
        self.check_invariants()

    def on_kernel_write(self, now: float) -> None:
        """A launch referenced this entry as writable."""
        assert self.is_allocated and not self.to_copy_2dev
        self.to_copy_2swap = True
        self.last_use = now
        self.check_invariants()

    def on_kernel_read(self, now: float) -> None:
        """A launch referenced this entry read-only."""
        assert self.is_allocated and not self.to_copy_2dev
        self.last_use = now
        self.check_invariants()

    def on_copied_to_swap(self) -> None:
        """The dirty device copy was written back (copy_DH / checkpoint)."""
        self.to_copy_2swap = False
        self.check_invariants()

    def on_device_released(self) -> None:
        """Device memory freed (swap-out); swap copy is authoritative."""
        assert not self.to_copy_2swap, "must write back before releasing"
        self.is_allocated = False
        self.device_ptr = None
        self.to_copy_2dev = True
        self.check_invariants()

    def __repr__(self) -> str:
        return (
            f"<PTE v=0x{self.virtual_ptr:x} size={self.size} "
            f"A={int(self.is_allocated)} D={int(self.to_copy_2dev)} "
            f"S={int(self.to_copy_2swap)}>"
        )


class PageTable:
    """All PTEs for all active and pending contexts on a node.

    Mirrors the paper's ``map<Context*, list<PageTableEntry*>*>`` plus an
    index by virtual address for O(1) translation.
    """

    def __init__(self):
        self._by_context: Dict[Any, List[PageTableEntry]] = {}
        self._by_vptr: Dict[int, PageTableEntry] = {}
        self._vptr_cursor = VIRTUAL_BASE
        #: Upper bound of the virtual address space (Table 1: "A virtual
        #: address cannot be assigned").
        self.virtual_space_limit = VIRTUAL_BASE + (1 << 44)

    # ------------------------------------------------------------------
    def assign_virtual_address(self, size: int) -> int:
        aligned = (size + VIRTUAL_ALIGNMENT - 1) // VIRTUAL_ALIGNMENT * VIRTUAL_ALIGNMENT
        if self._vptr_cursor + aligned > self.virtual_space_limit:
            raise RuntimeApiError(RuntimeErrorCode.VIRTUAL_ADDRESS_EXHAUSTED)
        vptr = self._vptr_cursor
        self._vptr_cursor += aligned
        return vptr

    def create_entry(
        self,
        ctx: Any,
        size: int,
        entry_type: EntryType = EntryType.LINEAR,
        params: Optional[Any] = None,
    ) -> PageTableEntry:
        vptr = self.assign_virtual_address(size)
        pte = PageTableEntry(vptr, size, entry_type, params)
        self._by_context.setdefault(ctx, []).append(pte)
        self._by_vptr[vptr] = pte
        return pte

    def lookup(self, ctx: Any, vptr: int) -> PageTableEntry:
        """Translate a virtual pointer, enforcing per-context isolation."""
        pte = self._by_vptr.get(vptr)
        if pte is None or pte not in self._by_context.get(ctx, ()):
            raise RuntimeApiError(
                RuntimeErrorCode.NO_VALID_PTE, f"0x{vptr:x} for {ctx!r}"
            )
        return pte

    def entries_for(self, ctx: Any) -> List[PageTableEntry]:
        return list(self._by_context.get(ctx, ()))

    def remove_entry(self, ctx: Any, pte: PageTableEntry) -> None:
        self._by_context.get(ctx, []).remove(pte)
        del self._by_vptr[pte.virtual_ptr]

    def drop_context(self, ctx: Any) -> List[PageTableEntry]:
        """Remove and return every PTE of ``ctx`` (application exit)."""
        entries = self._by_context.pop(ctx, [])
        for pte in entries:
            self._by_vptr.pop(pte.virtual_ptr, None)
        return entries

    def contexts(self) -> List[Any]:
        return list(self._by_context)

    def allocated_bytes(self, ctx: Any) -> int:
        """Device-resident bytes of ``ctx`` (the paper's ``MemUsage``)."""
        return sum(p.size for p in self._by_context.get(ctx, ()) if p.is_allocated)

    def total_bytes(self, ctx: Any) -> int:
        return sum(p.size for p in self._by_context.get(ctx, ()))
