"""Page table and page-table entries (paper §4.5).

Each entry is created on a memory-allocation call and carries three
pointers — the *virtual* pointer returned to the application, the pointer
into the host *swap* area, and (while resident) the *device* pointer —
plus the three flags of the paper's Figure 4:

``isAllocated``
    the entry currently has device memory backing it;
``toCopy2Dev``
    the authoritative data is (only) in the swap area and must be copied
    to the device before the next kernel that references it;
``toCopy2Swap``
    the authoritative data is (only) on the device and must be copied
    back before serving a device→host read or releasing the device copy.

The five legal flag states and the transitions between them are exactly
the Figure 4 state diagram; :meth:`PageTableEntry.check_invariants`
rejects anything else (exercised by the property tests).

As the paper notes, "page" is a slight misnomer: allocations are not
carved into fixed-size pages — each entry covers a whole allocation.
That coarseness is optionally refined by *chunking*
(``RuntimeConfig.swap_chunk_bytes``): a large entry is split into
fixed-size :class:`Chunk` slices, each obeying the Figure 4 state
machine individually, so a partially written buffer stages/faults/writes
back only the chunks that actually hold (or dirtied) data.  The entry
keeps one device allocation — chunks refine *transfer* granularity, not
device placement — and its flags become the OR over its chunks.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import RuntimeApiError, RuntimeErrorCode

__all__ = ["Chunk", "EntryType", "PageTableEntry", "PageTable", "VIRTUAL_BASE"]

#: Virtual addresses live far away from simulated device addresses so
#: that passing one where the other is expected is caught immediately.
VIRTUAL_BASE = 0x7000_0000_0000
VIRTUAL_ALIGNMENT = 256

_LEGAL_STATES = {
    (False, False, False),  # created, nothing anywhere yet
    (False, True, False),   # data in swap only
    (True, False, False),   # resident, device and swap in sync
    (True, True, False),    # resident, swap copy is newer (host overwrote)
    (True, False, True),    # resident, device copy is newer (kernel wrote)
}


class EntryType(enum.Enum):
    """Kind of allocation behind the entry (paper: ``entry_t type``)."""

    LINEAR = "linear"        # cudaMalloc
    ARRAY = "array"          # cudaMallocArray
    PITCHED = "pitched"      # cudaMallocPitch

_entry_seq = itertools.count(1)


class Chunk:
    """One fixed-size slice of a chunked allocation (demand-paging unit).

    ``valid``
        the chunk holds application data somewhere (swap or device);
        a never-written chunk needs no transfer in either direction.
    ``to_copy_2dev`` / ``to_copy_2swap``
        the Figure 4 flags, per chunk: at most one may be set, and an
        invalid chunk carries neither.
    """

    __slots__ = ("offset", "size", "valid", "to_copy_2dev", "to_copy_2swap")

    def __init__(self, offset: int, size: int):
        self.offset = offset
        self.size = size
        self.valid = False
        self.to_copy_2dev = False
        self.to_copy_2swap = False

    def __repr__(self) -> str:
        return (
            f"<Chunk +0x{self.offset:x} size={self.size} V={int(self.valid)} "
            f"D={int(self.to_copy_2dev)} S={int(self.to_copy_2swap)}>"
        )


class PageTableEntry:
    """One allocation's translation + state."""

    __slots__ = (
        "virtual_ptr",
        "swap_ptr",
        "device_ptr",
        "size",
        "is_allocated",
        "to_copy_2dev",
        "to_copy_2swap",
        "entry_type",
        "params",
        "nested",
        "last_use",
        "use_count",
        "referenced",
        "seq",
        "prefetched",
        "chunks",
        "device_id",
        "_table",
    )

    def __init__(
        self,
        virtual_ptr: int,
        size: int,
        entry_type: EntryType = EntryType.LINEAR,
        params: Optional[Any] = None,
    ):
        self.virtual_ptr = virtual_ptr
        self.swap_ptr: Optional[int] = None
        self.device_ptr: Optional[int] = None
        self.size = size
        self.is_allocated = False
        self.to_copy_2dev = False
        self.to_copy_2swap = False
        self.entry_type = entry_type
        self.params = params
        #: Nested-structure descriptor (None for flat allocations).
        self.nested = None
        #: Simulated time of the last launch referencing this entry
        #: (victim choice for intra-application swap and LRU eviction).
        self.last_use = 0.0
        #: Launches that referenced this entry (LFU eviction).
        self.use_count = 0
        #: Referenced bit, set on every launch use and cleared by the
        #: second-chance eviction policy's clock sweep.
        self.referenced = False
        self.seq = next(_entry_seq)
        #: Set by the overlap engine when a CPU-phase prefetch staged this
        #: entry; the next launch referencing it counts a prefetch hit.
        self.prefetched = False
        #: Demand-paging chunks (None = whole-entry granularity).
        self.chunks: Optional[List[Chunk]] = None
        #: Device holding the current device allocation (None while not
        #: resident).  Per-device residency accounting for the
        #: transfer-cost model (§4.4 locality-aware binding).
        self.device_id: Optional[int] = None
        #: Owning PageTable (set by create_entry; None for standalone
        #: entries in unit tests).  Lets every state transition advance
        #: the table's residency epoch, which invalidates memoized
        #: TransferCostModel evaluations.
        self._table: Optional["PageTable"] = None

    # -- state machine (Figure 4) --------------------------------------
    @property
    def flags(self):
        return (self.is_allocated, self.to_copy_2dev, self.to_copy_2swap)

    @property
    def chunked(self) -> bool:
        return self.chunks is not None

    def _bump(self) -> None:
        table = self._table
        if table is not None:
            table.epoch += 1

    def check_invariants(self) -> None:
        if self.is_allocated and self.device_ptr is None:
            raise AssertionError(f"allocated PTE without device pointer: {self!r}")
        if not self.is_allocated and self.device_ptr is not None:
            raise AssertionError(f"unallocated PTE with device pointer: {self!r}")
        if self.chunks is None:
            if self.flags not in _LEGAL_STATES:
                raise AssertionError(f"illegal PTE state {self.flags} for {self!r}")
            return
        # Chunked entry: every chunk individually obeys Figure 4, and the
        # entry flags are the OR over the chunks (so a mixed aggregate —
        # one chunk host-newer, another device-newer — is legal).
        for c in self.chunks:
            if c.to_copy_2dev and c.to_copy_2swap:
                raise AssertionError(f"illegal chunk state {c!r} in {self!r}")
            if not c.valid and (c.to_copy_2dev or c.to_copy_2swap):
                raise AssertionError(f"invalid chunk with data flags {c!r} in {self!r}")
            if c.to_copy_2swap and not self.is_allocated:
                raise AssertionError(f"device-dirty chunk without device memory {c!r}")
        if self.to_copy_2dev != any(c.to_copy_2dev for c in self.chunks) or (
            self.to_copy_2swap != any(c.to_copy_2swap for c in self.chunks)
        ):
            raise AssertionError(f"entry flags out of sync with chunks: {self!r}")

    def on_host_write(self) -> None:
        """copy_HD intercepted: the swap copy is now authoritative."""
        self._bump()
        self.to_copy_2dev = True
        self.to_copy_2swap = False
        self.check_invariants()

    def on_device_allocated(
        self, device_ptr: int, device_id: Optional[int] = None
    ) -> None:
        self._bump()
        self.is_allocated = True
        self.device_ptr = device_ptr
        self.device_id = device_id
        self.check_invariants()

    def on_copied_to_device(self) -> None:
        """The deferred H2D transfer happened (launch preparation)."""
        assert self.is_allocated
        self._bump()
        self.to_copy_2dev = False
        self.check_invariants()

    def on_kernel_write(self, now: float) -> None:
        """A launch referenced this entry as writable."""
        assert self.is_allocated and not self.to_copy_2dev
        self._bump()
        self.to_copy_2swap = True
        self._touch(now)
        self.check_invariants()

    def on_kernel_read(self, now: float) -> None:
        """A launch referenced this entry read-only."""
        assert self.is_allocated and not self.to_copy_2dev
        self._touch(now)
        self.check_invariants()

    def on_copied_to_swap(self) -> None:
        """The dirty device copy was written back (copy_DH / checkpoint)."""
        self._bump()
        self.to_copy_2swap = False
        self.check_invariants()

    def on_device_released(self) -> None:
        """Device memory freed (swap-out); swap copy is authoritative."""
        assert not self.to_copy_2swap, "must write back before releasing"
        self._bump()
        self.is_allocated = False
        self.device_ptr = None
        self.device_id = None
        if self.chunks is None:
            self.to_copy_2dev = True
        else:
            for c in self.chunks:
                if c.valid:
                    c.to_copy_2dev = True
            self._sync_flags()
        self.check_invariants()

    def relocate_device(self, device_ptr: int, device_id: int) -> None:
        """The device copy moved (peer-to-peer migration): same data and
        flags, new physical home."""
        assert self.is_allocated
        self._bump()
        self.device_ptr = device_ptr
        self.device_id = device_id
        self.check_invariants()

    def _touch(self, now: float) -> None:
        """Recency/frequency bookkeeping shared by every launch use."""
        self.last_use = now
        self.use_count += 1
        self.referenced = True

    # -- chunked granularity (demand-paged swapping) --------------------
    def configure_chunks(self, chunk_bytes: int) -> None:
        """Split the entry into fixed-size chunks (the last may be short).

        Must be called before any data movement; entries at or below one
        chunk stay whole-entry (chunking them would only add bookkeeping).
        """
        assert self.swap_ptr is None and self.flags == (False, False, False)
        if chunk_bytes <= 0 or self.size <= chunk_bytes:
            return
        self.chunks = [
            Chunk(offset, min(chunk_bytes, self.size - offset))
            for offset in range(0, self.size, chunk_bytes)
        ]

    def _sync_flags(self) -> None:
        assert self.chunks is not None
        self.to_copy_2dev = any(c.to_copy_2dev for c in self.chunks)
        self.to_copy_2swap = any(c.to_copy_2swap for c in self.chunks)

    @staticmethod
    def _coalesce(chunks: Iterable[Chunk]) -> List[Tuple[int, int]]:
        """Merge adjacent chunks into contiguous (offset, nbytes) runs."""
        runs: List[Tuple[int, int]] = []
        for c in chunks:
            if runs and runs[-1][0] + runs[-1][1] == c.offset:
                runs[-1] = (runs[-1][0], runs[-1][1] + c.size)
            else:
                runs.append((c.offset, c.size))
        return runs

    def _chunks_in(self, run: Tuple[int, int]) -> List[Chunk]:
        offset, nbytes = run
        assert self.chunks is not None
        return [c for c in self.chunks if offset <= c.offset < offset + nbytes]

    def host_write(self, nbytes: Optional[int] = None) -> None:
        """copy_HD intercepted for ``[0, nbytes)``: the swap copy of the
        covered range is now authoritative.  Whole-entry granularity
        ignores the extent (the paper's behavior)."""
        if self.chunks is None:
            self.on_host_write()
            return
        self._bump()
        covered = self.size if nbytes is None else min(nbytes, self.size)
        for c in self.chunks:
            if c.offset < covered:
                c.valid = True
                c.to_copy_2dev = True
                c.to_copy_2swap = False
        self._sync_flags()
        self.check_invariants()

    def kernel_write(self, now: float) -> None:
        """A launch referenced this entry as writable.

        Chunked: the kernel computed on the data the application put
        there, so the *valid* chunks become device-dirty; a buffer with
        no valid chunk is an output buffer the kernel populates entirely.
        """
        if self.chunks is None:
            self.on_kernel_write(now)
            return
        self._bump()
        assert self.is_allocated and not self.to_copy_2dev
        if not any(c.valid for c in self.chunks):
            for c in self.chunks:
                c.valid = True
                c.to_copy_2swap = True
        else:
            for c in self.chunks:
                if c.valid:
                    c.to_copy_2swap = True
        self._touch(now)
        self._sync_flags()
        self.check_invariants()

    def kernel_read(self, now: float) -> None:
        if self.chunks is None:
            self.on_kernel_read(now)
            return
        assert self.is_allocated and not self.to_copy_2dev
        self._touch(now)
        self.check_invariants()

    def fault_runs(self) -> List[Tuple[int, int]]:
        """Contiguous (offset, nbytes) H2D transfers needed before the
        device copy is current.  Whole-entry: one run covering the
        allocation, or none."""
        if self.chunks is None:
            return [(0, self.size)] if self.to_copy_2dev else []
        return self._coalesce(c for c in self.chunks if c.to_copy_2dev)

    def complete_fault(self, run: Tuple[int, int]) -> None:
        """One fault run's bulk transfer landed on the device."""
        assert self.is_allocated
        if self.chunks is None:
            self.on_copied_to_device()
            return
        self._bump()
        for c in self._chunks_in(run):
            c.to_copy_2dev = False
        self._sync_flags()
        self.check_invariants()

    def writeback_runs(self) -> List[Tuple[int, int]]:
        """Contiguous (offset, nbytes) D2H write-backs of device-dirty
        data (eviction, checkpoint, device→host reads)."""
        if self.chunks is None:
            return [(0, self.size)] if self.to_copy_2swap else []
        return self._coalesce(c for c in self.chunks if c.to_copy_2swap)

    def complete_writeback(self, run: Tuple[int, int]) -> None:
        """One write-back run landed in the swap area."""
        if self.chunks is None:
            self.on_copied_to_swap()
            return
        self._bump()
        for c in self._chunks_in(run):
            c.to_copy_2swap = False
        self._sync_flags()
        self.check_invariants()

    def device_current_runs(self) -> List[Tuple[int, int]]:
        """Runs whose device copy is current (peer-to-peer migration)."""
        if self.chunks is None:
            return [(0, self.size)] if not self.to_copy_2dev else []
        return self._coalesce(
            c for c in self.chunks if c.valid and not c.to_copy_2dev
        )

    def discard_device_dirty(self) -> None:
        """Drop device-dirty state without writing back (cudaFree)."""
        self._bump()
        if self.chunks is None:
            self.to_copy_2swap = False
            return
        for c in self.chunks:
            c.to_copy_2swap = False
        self._sync_flags()

    def drop_device_state(self) -> None:
        """The device copy is lost (device failure): swap-resident data
        becomes authoritative, without any device operation."""
        self._bump()
        self.is_allocated = False
        self.device_ptr = None
        self.device_id = None
        if self.chunks is None:
            self.to_copy_2swap = False
            self.to_copy_2dev = True
        else:
            for c in self.chunks:
                c.to_copy_2swap = False
                if c.valid:
                    c.to_copy_2dev = True
            self._sync_flags()
        self.check_invariants()

    def fault_bytes(self) -> int:
        """Bytes a launch must transfer before this entry is current."""
        return sum(n for _off, n in self.fault_runs())

    def dirty_bytes(self) -> int:
        """Bytes an eviction of this entry would write back."""
        return sum(n for _off, n in self.writeback_runs())

    def valid_bytes(self) -> int:
        """Bytes of application data behind the entry."""
        if self.chunks is None:
            return self.size
        return sum(c.size for c in self.chunks if c.valid)

    def __repr__(self) -> str:
        return (
            f"<PTE v=0x{self.virtual_ptr:x} size={self.size} "
            f"A={int(self.is_allocated)} D={int(self.to_copy_2dev)} "
            f"S={int(self.to_copy_2swap)}>"
        )


class PageTable:
    """All PTEs for all active and pending contexts on a node.

    Mirrors the paper's ``map<Context*, list<PageTableEntry*>*>`` plus an
    index by virtual address for O(1) translation.
    """

    def __init__(self):
        #: Residency epoch: advanced by every PTE state transition and by
        #: entry creation/removal.  Consumers (TransferCostModel) key
        #: memoized whole-table aggregates by it; any change anywhere in
        #: the table invalidates them.
        self.epoch = 0
        self._by_context: Dict[Any, List[PageTableEntry]] = {}
        self._by_vptr: Dict[int, PageTableEntry] = {}
        self._vptr_cursor = VIRTUAL_BASE
        #: Upper bound of the virtual address space (Table 1: "A virtual
        #: address cannot be assigned").
        self.virtual_space_limit = VIRTUAL_BASE + (1 << 44)

    # ------------------------------------------------------------------
    def assign_virtual_address(self, size: int) -> int:
        aligned = (size + VIRTUAL_ALIGNMENT - 1) // VIRTUAL_ALIGNMENT * VIRTUAL_ALIGNMENT
        if self._vptr_cursor + aligned > self.virtual_space_limit:
            raise RuntimeApiError(RuntimeErrorCode.VIRTUAL_ADDRESS_EXHAUSTED)
        vptr = self._vptr_cursor
        self._vptr_cursor += aligned
        return vptr

    def create_entry(
        self,
        ctx: Any,
        size: int,
        entry_type: EntryType = EntryType.LINEAR,
        params: Optional[Any] = None,
    ) -> PageTableEntry:
        vptr = self.assign_virtual_address(size)
        pte = PageTableEntry(vptr, size, entry_type, params)
        pte._table = self
        self.epoch += 1
        self._by_context.setdefault(ctx, []).append(pte)
        self._by_vptr[vptr] = pte
        return pte

    def lookup(self, ctx: Any, vptr: int) -> PageTableEntry:
        """Translate a virtual pointer, enforcing per-context isolation."""
        pte = self._by_vptr.get(vptr)
        if pte is None or pte not in self._by_context.get(ctx, ()):
            raise RuntimeApiError(
                RuntimeErrorCode.NO_VALID_PTE, f"0x{vptr:x} for {ctx!r}"
            )
        return pte

    def entries_for(self, ctx: Any) -> List[PageTableEntry]:
        return list(self._by_context.get(ctx, ()))

    def remove_entry(self, ctx: Any, pte: PageTableEntry) -> None:
        self.epoch += 1
        self._by_context.get(ctx, []).remove(pte)
        del self._by_vptr[pte.virtual_ptr]

    def drop_context(self, ctx: Any) -> List[PageTableEntry]:
        """Remove and return every PTE of ``ctx`` (application exit)."""
        self.epoch += 1
        entries = self._by_context.pop(ctx, [])
        for pte in entries:
            self._by_vptr.pop(pte.virtual_ptr, None)
        return entries

    def contexts(self) -> List[Any]:
        return list(self._by_context)

    def allocated_bytes(self, ctx: Any) -> int:
        """Device-resident bytes of ``ctx`` (the paper's ``MemUsage``)."""
        return sum(p.size for p in self._by_context.get(ctx, ()) if p.is_allocated)

    def total_bytes(self, ctx: Any) -> int:
        return sum(p.size for p in self._by_context.get(ctx, ()))

    def resident_bytes_on(self, ctx: Any, device_id: int) -> int:
        """Chunk-aware bytes of ``ctx`` current on ``device_id``: resident
        allocation minus what would still have to fault in.  The signal
        the transfer-cost model scores candidate devices by."""
        return sum(
            p.size - p.fault_bytes()
            for p in self._by_context.get(ctx, ())
            if p.is_allocated and p.device_id == device_id
        )

    def resident_device(self, ctx: Any) -> Optional[int]:
        """The device holding ``ctx``'s resident entries (None if no
        entry is device-resident)."""
        for p in self._by_context.get(ctx, ()):
            if p.is_allocated and p.device_id is not None:
                return p.device_id
        return None
