"""Pluggable eviction policies for partial (device-wide) swapping.

The paper's inter-application swap always evicts a whole victim context —
simple, but it moves every resident byte of the victim when the requester
may need a fraction of that.  ``RuntimeConfig.eviction_mode="partial"``
replaces it with a device-wide eviction loop that frees *only*
``required_bytes`` worth of entries, picked by one of the policies here
(registered by name, exactly like the scheduler policies in
:mod:`repro.core.policies`).  Whole-context swap-out remains the
correctness path for unbind, migration and checkpointing.

A policy orders *candidates* — ``(context, PageTableEntry)`` pairs of
resident entries belonging to eviction-eligible victim contexts — and the
eviction loop walks that order until enough bytes are free.

``lru``
    Least recently used entry first (the launch-time ``last_use`` stamp).
``lfu``
    Least frequently used entry first (launch reference counts), with
    LRU as the tie-break.
``second_chance``
    Clock-style sweep over the entries in allocation order: an entry
    whose referenced bit is set gets it cleared and one more pass;
    unreferenced entries go first.
``cost_aware``
    Cheapest eviction first: minimize dirty-bytes-to-write-back per byte
    freed (a clean entry frees memory without moving any data), with LRU
    as the tie-break.
``quota_aware``
    Multi-tenant QoS layer over LRU (repro.qos): entries of tenants
    running *over* their device-memory quota are evicted first (most
    overcommitted tenant first), so memory pressure lands on whoever
    exceeded their contract before touching compliant tenants.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.core.memory.page_table import PageTableEntry

__all__ = [
    "EvictionPolicy",
    "LruEviction",
    "LfuEviction",
    "SecondChanceEviction",
    "CostAwareEviction",
    "QuotaAwareEviction",
    "EVICTION_POLICY_NAMES",
    "make_eviction_policy",
]

#: One candidate: (victim context, resident page-table entry).
Candidate = Tuple[Any, PageTableEntry]


class EvictionPolicy:
    """Orders eviction candidates; the loop evicts front-to-back."""

    name = "abstract"

    def order(self, candidates: List[Candidate]) -> List[Candidate]:
        raise NotImplementedError


class LruEviction(EvictionPolicy):
    """Least-recently-used entry first (allocation order as tie-break)."""

    name = "lru"

    def order(self, candidates: List[Candidate]) -> List[Candidate]:
        return sorted(candidates, key=lambda c: (c[1].last_use, c[1].seq))


class LfuEviction(EvictionPolicy):
    """Least-frequently-used entry first, LRU among equals."""

    name = "lfu"

    def order(self, candidates: List[Candidate]) -> List[Candidate]:
        return sorted(
            candidates, key=lambda c: (c[1].use_count, c[1].last_use, c[1].seq)
        )


class SecondChanceEviction(EvictionPolicy):
    """Clock sweep with a referenced bit.

    Entries are visited in allocation (seq) order starting just past the
    clock hand; a referenced entry gets its bit cleared and is deferred
    behind every unreferenced one.  The hand advances to the first entry
    the sweep would evict, so successive sweeps rotate through the ring.
    """

    name = "second_chance"

    def __init__(self) -> None:
        self._hand = 0

    def order(self, candidates: List[Candidate]) -> List[Candidate]:
        ring = sorted(candidates, key=lambda c: c[1].seq)
        start = next(
            (i for i, c in enumerate(ring) if c[1].seq > self._hand), 0
        )
        ring = ring[start:] + ring[:start]
        first: List[Candidate] = []
        deferred: List[Candidate] = []
        for cand in ring:
            if cand[1].referenced:
                cand[1].referenced = False
                deferred.append(cand)
            else:
                first.append(cand)
        ordered = first + deferred
        if ordered:
            self._hand = ordered[0][1].seq
        return ordered


class CostAwareEviction(EvictionPolicy):
    """Minimize dirty bytes written back per byte freed.

    A clean entry costs nothing to evict (release only); a fully dirty
    chunked entry costs its dirty chunks; an unchunked dirty entry costs
    its whole size.  Ties break LRU-first.

    When the runtime wires ``cost_fn(ctx, pte) -> seconds`` (the
    transfer-cost model, under ``locality_binding``), the ordering uses
    the *modeled* eviction cost instead — write-back seconds now plus
    the recency-discounted re-fault seconds later — so eviction, binding
    and migration all price a byte of data movement consistently.
    """

    name = "cost_aware"

    def __init__(self) -> None:
        self.cost_fn: Optional[Callable[[Any, PageTableEntry], float]] = None

    def order(self, candidates: List[Candidate]) -> List[Candidate]:
        if self.cost_fn is not None:
            cost = self.cost_fn
            return sorted(candidates, key=lambda c: (cost(c[0], c[1]), c[1].seq))
        return sorted(
            candidates,
            key=lambda c: (
                c[1].dirty_bytes() / c[1].size,
                c[1].last_use,
                c[1].seq,
            ),
        )


class QuotaAwareEviction(EvictionPolicy):
    """Over-quota tenants' entries first, LRU within a tier.

    ``overage_fn(ctx) -> bytes`` reports how far a candidate context's
    tenant currently sits above its device-memory quota (0 for compliant
    tenants, tenant-less contexts, or when QoS is off); the memory
    manager wires it after construction.  Candidates sort by descending
    overage, then LRU — with everyone compliant the ordering degrades to
    exactly :class:`LruEviction`.
    """

    name = "quota_aware"

    def __init__(self) -> None:
        self.overage_fn: Optional[Callable[[Any], int]] = None

    def order(self, candidates: List[Candidate]) -> List[Candidate]:
        overage = self.overage_fn or (lambda ctx: 0)
        return sorted(
            candidates,
            key=lambda c: (-overage(c[0]), c[1].last_use, c[1].seq),
        )


_POLICIES = {
    p.name: p
    for p in (
        LruEviction,
        LfuEviction,
        SecondChanceEviction,
        CostAwareEviction,
        QuotaAwareEviction,
    )
}

EVICTION_POLICY_NAMES: Tuple[str, ...] = tuple(sorted(_POLICIES))


def make_eviction_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by its registered name."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown eviction policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None
