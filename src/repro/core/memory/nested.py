"""Nested data-structure support (paper §1, §4.5).

Efficient GPU code avoids pointer nesting, but the runtime supports it by
requiring the programmer to *register* nested structures through a
runtime API call.  The registration describes which members of a parent
allocation are themselves pointers to other allocations; the memory
manager uses this to keep virtual and device pointers consistent inside
the structure: whenever the parent is (re)materialized on the device, the
embedded virtual pointers must be patched to the members' current device
addresses — so a parent is only consistent if every member is resident.

Consequences modelled here:

- memory operations on a registered parent extend to its members
  (allocation, transfer, swap — paper: "Memory operations on nested
  structures will be extended also to their PTE members");
- a launch referencing the parent implicitly references all members;
- any member swap invalidates the parent's device copy (the embedded
  device pointer went stale), forcing a re-patch (an extra small H2D).
"""

from __future__ import annotations

import dataclasses
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.memory.page_table import PageTableEntry

__all__ = ["NestedStructure"]


@dataclasses.dataclass
class NestedStructure:
    """Registration record for one nested structure.

    Attributes
    ----------
    parent:
        PTE of the outer allocation that embeds pointers.
    members:
        PTEs of the allocations the parent points to.
    pointer_offsets:
        Byte offsets inside the parent where each member's pointer is
        stored (parallel to ``members``); used to size the patch
        transfer.
    """

    parent: "PageTableEntry"
    members: List["PageTableEntry"]
    pointer_offsets: List[int]

    def __post_init__(self) -> None:
        if len(self.members) != len(self.pointer_offsets):
            raise ValueError("members and pointer_offsets must be parallel")
        if not self.members:
            raise ValueError("a nested structure needs at least one member")
        for off in self.pointer_offsets:
            if not 0 <= off < self.parent.size:
                raise ValueError(
                    f"pointer offset {off} outside parent of size {self.parent.size}"
                )

    @property
    def patch_bytes(self) -> int:
        """Bytes to rewrite in the parent when device pointers change
        (8 bytes per embedded pointer)."""
        return 8 * len(self.members)

    def closure(self) -> List["PageTableEntry"]:
        """Parent plus all members — the unit memory operations apply to."""
        return [self.parent, *self.members]
