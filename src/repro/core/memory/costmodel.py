"""Transfer-cost model for locality-aware dynamic binding (§4.4).

Dynamic binding lets the runtime rebind a context to *any* vGPU between
kernel calls — but a rebinding that lands on the "wrong" device silently
pays the full fault-in of the context's working set through the swap
area.  :class:`TransferCostModel` makes that cost explicit: for any
``(ctx, vGPU)`` pair it estimates the *time to first kernel* —

- bytes of the context's journaled working set already resident on the
  candidate device (per-device residency accounting in the page table,
  chunk-aware) versus bytes that must fault in over the slower of PCIe
  and the swap area's host-memcpy bandwidth;
- the expected queue/execution wait from contexts already active on the
  device (an EWMA of observed kernel work stands in for a profile);
- the write-back cost of evicting victims when the candidate device
  lacks free memory, weighted by how dirty its resident data is;
- a configurable sticky-affinity hysteresis (``migration_penalty_s``)
  charged to any candidate off the context's affinity device, so two
  near-equal devices do not ping-pong the context (and its cache).

The same model prices migrations (modeled benefit must exceed modeled
transfer cost) and re-faults for the ``cost_aware`` partial-eviction
policy, so placement, migration and eviction all see one consistent
notion of what a byte of data movement costs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from repro.simcuda import timing

__all__ = ["TransferCostModel"]

#: Weight of the newest observation in the kernel-work EWMA.
_EWMA_ALPHA = 0.25


class TransferCostModel:
    """Estimates data-movement and queueing costs for binding decisions.

    Pure with respect to simulation state: every method only *reads* the
    page table, allocators and scheduler — scoring a candidate never
    advances the clock or mutates an entry.
    """

    def __init__(self, config: Any, page_table: Any, swap: Any, scheduler: Any):
        self.config = config
        self.page_table = page_table
        self.swap = swap
        self.scheduler = scheduler
        #: EWMA of per-launch kernel work (flops) observed node-wide.
        self._ewma_flops = 0.0
        # Memoized whole-table aggregates, valid for exactly one page
        # table residency epoch: any PTE state transition or entry
        # create/remove bumps the epoch and flushes them.
        self._memo_epoch = -1
        self._ws_cache: dict = {}
        self._split_cache: dict = {}
        self._dirty_frac_cache: dict = {}

    def _sync_memo(self) -> None:
        # Tables without an epoch (test doubles) get no memoization.
        epoch = getattr(self.page_table, "epoch", None)
        if epoch != self._memo_epoch or epoch is None:
            self._memo_epoch = epoch
            self._ws_cache.clear()
            self._split_cache.clear()
            self._dirty_frac_cache.clear()

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def observe_kernel(self, flops: float) -> None:
        """Feed one executed launch's work into the EWMA."""
        if flops <= 0:
            return
        if self._ewma_flops == 0.0:
            self._ewma_flops = flops
        else:
            self._ewma_flops += _EWMA_ALPHA * (flops - self._ewma_flops)

    # ------------------------------------------------------------------
    # working set and residency
    # ------------------------------------------------------------------
    def working_set(self, ctx: Any) -> List[Any]:
        """Predicted next-launch entries: the journaled last-launch
        working set when available (kernels overwhelmingly iterate on the
        same buffers), else everything the context allocated.

        Memoized per residency epoch; treat the returned list as
        read-only."""
        self._sync_memo()
        vptrs = ctx.last_launch_vptrs
        key = (id(ctx), tuple(vptrs) if vptrs else None)
        ws = self._ws_cache.get(key)
        if ws is None:
            ws = self._working_set_uncached(ctx)
            self._ws_cache[key] = ws
        return ws

    def _working_set_uncached(self, ctx: Any) -> List[Any]:
        entries = self.page_table.entries_for(ctx)
        if ctx.last_launch_vptrs:
            wanted = set(ctx.last_launch_vptrs)
            chosen = [p for p in entries if p.virtual_ptr in wanted]
            if chosen:
                return chosen
        return entries

    @staticmethod
    def _transfer_bw(device: Any, swap: Any) -> float:
        """A fault-in streams swap → host staging → PCIe; the slower leg
        bounds throughput."""
        return min(device.spec.pcie_gbps * 1e9, swap.host_memcpy_bps)

    def _resident_split(
        self, ws: List[Any], device: Any
    ) -> Tuple[int, int, int]:
        """(total, resident-on-device, bytes-needing-device-allocation)
        over the working set, chunk-aware.

        Memoized per residency epoch, keyed by the working-set list's
        identity — safe because the lists themselves come from the
        epoch-scoped ``working_set`` cache."""
        self._sync_memo()
        key = (id(ws), device.device_id)
        cached = self._split_cache.get(key)
        if cached is not None:
            return cached
        total = resident = need_alloc = 0
        for p in ws:
            total += p.size
            if p.is_allocated and p.device_id == device.device_id:
                resident += p.size - p.fault_bytes()
            else:
                need_alloc += p.size
        result = (total, resident, need_alloc)
        self._split_cache[key] = result
        return result

    def _affinity_device(self, ctx: Any) -> Optional[Any]:
        """The device the context's data gravity points at: the vGPU
        holding its residency cache, or its current binding."""
        vgpu = ctx.cache_vgpu if ctx.cache_vgpu is not None else ctx.vgpu
        if vgpu is None or vgpu.device.failed:
            return None
        return vgpu.device

    def _device_dirty_fraction(self, device: Any) -> float:
        """How dirty the device's resident data is — the expected
        write-back bytes per byte a victim eviction frees.

        O(all PTEs) to compute, so memoized per residency epoch — the
        dominant saving when score_candidates prices every device on
        every binding decision."""
        self._sync_memo()
        cached = self._dirty_frac_cache.get(device.device_id)
        if cached is not None:
            return cached
        allocated = dirty = 0
        for ctx in self.page_table.contexts():
            for p in self.page_table.entries_for(ctx):
                if p.is_allocated and p.device_id == device.device_id:
                    allocated += p.size
                    dirty += p.dirty_bytes()
        frac = dirty / allocated if allocated else 0.0
        self._dirty_frac_cache[device.device_id] = frac
        return frac

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def bind_cost(
        self,
        ctx: Any,
        vgpu: Any,
        active_per_device: Optional[dict] = None,
        mem_needed: Optional[int] = None,
    ) -> float:
        """Modeled time-to-first-kernel for binding ``ctx`` to ``vgpu``."""
        device = vgpu.device
        ws = self.working_set(ctx)
        total, resident, need_alloc = self._resident_split(ws, device)
        # Residency cached on a *different* vGPU's CUDA context cannot be
        # revived by this binding — the pointers belong to that context
        # and would be dropped, so the whole working set faults in.
        owner = ctx.cache_vgpu if ctx.cache_vgpu is not None else ctx.vgpu
        if resident and owner is not vgpu:
            need_alloc += total - need_alloc
            resident = 0
        bw = self._transfer_bw(device, self.swap)
        cost = 0.0
        missing = max(0, total - resident)
        if missing:
            cost += timing.COPY_LATENCY_SECONDS + missing / bw
        # Queue wait + first-kernel execution from the EWMA work profile:
        # contexts already active on the device share its exec engine.
        if self._ewma_flops:
            if active_per_device is None:
                active_per_device = self.scheduler.active_per_device()
            active = active_per_device.get(device.device_id, 0)
            per_kernel_s = self._ewma_flops / (device.spec.effective_gflops * 1e9)
            cost += (active + 1) * per_kernel_s
        # Eviction pressure: bytes this binding must displace, each
        # costing a write-back of the device's expected dirty share plus
        # the victim's eventual re-fault is not ours to pay — count only
        # the write-back leg.
        overflow = max(0, need_alloc - device.allocator.free_bytes)
        if overflow:
            cost += overflow * self._device_dirty_fraction(device) / bw
        # Sticky-affinity hysteresis against ping-pong.
        affinity = self._affinity_device(ctx)
        if affinity is not None and device is not affinity:
            cost += self.config.migration_penalty_s
        return cost

    def score_candidates(
        self,
        ctx: Any,
        vgpus: Iterable[Any],
        active_per_device: Optional[dict] = None,
        mem_needed: Optional[int] = None,
    ) -> List[Tuple[Any, float]]:
        """(vgpu, modeled cost) for every candidate, for BindingDecision
        tracing and min-cost selection."""
        if active_per_device is None:
            active_per_device = self.scheduler.active_per_device()
        return [
            (v, self.bind_cost(ctx, v, active_per_device, mem_needed))
            for v in vgpus
        ]

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def _remaining_flops(self, ctx: Any, src_device: Any) -> float:
        """Work the context still has: the SJF profiling hint when
        present, else the node-wide EWMA (one more typical kernel)."""
        if ctx.estimated_gpu_seconds is not None:
            remaining_s = max(0.0, ctx.estimated_gpu_seconds - ctx.gpu_seconds_used)
            return remaining_s * src_device.spec.effective_gflops * 1e9
        return self._ewma_flops

    def migration_gain_s(self, ctx: Any, src_device: Any, dst_device: Any) -> float:
        """Modeled seconds saved by running the remaining work on ``dst``
        instead of ``src`` (negative when ``dst`` is slower)."""
        flops = self._remaining_flops(ctx, src_device)
        if flops <= 0:
            return 0.0
        src_bps = src_device.spec.effective_gflops * 1e9
        dst_bps = dst_device.spec.effective_gflops * 1e9
        return flops / src_bps - flops / dst_bps

    def migration_cost_s(self, ctx: Any, dst_device: Any) -> float:
        """Modeled cost of moving the context's device state to ``dst``:
        write back what is dirty on the source, re-fault what was valid
        on the destination, plus the sticky-affinity penalty."""
        src_device = ctx.vgpu.device if ctx.vgpu is not None else None
        dirty = valid = 0
        for p in self.page_table.entries_for(ctx):
            if p.is_allocated:
                dirty += p.dirty_bytes()
                valid += p.valid_bytes()
        cost = self.config.migration_penalty_s
        if dirty and src_device is not None:
            cost += (
                timing.COPY_LATENCY_SECONDS
                + dirty / self._transfer_bw(src_device, self.swap)
            )
        if valid:
            cost += (
                timing.COPY_LATENCY_SECONDS
                + valid / self._transfer_bw(dst_device, self.swap)
            )
        return cost

    def migration_worthwhile(self, ctx: Any, dst_device: Any) -> bool:
        """Gate for the migration manager: modeled benefit must exceed
        modeled transfer cost."""
        if ctx.vgpu is None:
            return True
        src_device = ctx.vgpu.device
        return self.migration_gain_s(ctx, src_device, dst_device) > (
            self.migration_cost_s(ctx, dst_device)
        )

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evict_cost(self, ctx: Any, pte: Any, now: float) -> float:
        """Modeled cost of evicting one entry: its dirty write-back now,
        plus the expected re-fault of its valid data later — discounted
        by how long the entry has gone unreferenced (stale data is
        unlikely to be needed again soon)."""
        device = ctx.vgpu.device if ctx.vgpu is not None else None
        if device is None and ctx.cache_vgpu is not None:
            device = ctx.cache_vgpu.device
        if device is None:
            return 0.0
        bw = self._transfer_bw(device, self.swap)
        writeback_s = pte.dirty_bytes() / bw
        refault_s = pte.valid_bytes() / bw
        age = max(0.0, now - pte.last_use)
        return writeback_s + refault_s / (1.0 + age)
