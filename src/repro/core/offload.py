"""Inter-node offloading (paper §4.7).

When a node's GPUs are overloaded, the runtime redirects application
threads from the pending-connections list to other nodes over TCP.  Only
the CUDA calls travel — the job's CPU phases stay on the origin node.

The load measure is contexts-per-vGPU (bound + waiting); a connection is
offloaded to the least-loaded peer when the local figure exceeds the
peer's by more than a configurable margin.  In the prototype, peers learn
each other's load through the same socket layer; here the query is a
direct method call on the peer object (one fewer message pair — noted in
DESIGN.md as a simulation simplification).
"""

from __future__ import annotations

import dataclasses
from typing import Generator, List, Optional, TYPE_CHECKING

from repro.net.channel import LinkSpec, TCP_10GBE_LINK
from repro.net.rpc import Request, Response
from repro.net.socket import Socket, connect

from repro.core.protocol import CallType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["OffloadManager", "Peer", "OFFLOAD_TAG"]

#: Connection-name suffix marking an already-offloaded connection.  The
#: receiving node must execute it locally — re-offloading would let two
#: loaded nodes bounce a connection forever.
OFFLOAD_TAG = "::offloaded"


@dataclasses.dataclass
class Peer:
    """A remote runtime reachable over TCP."""

    runtime: "NodeRuntime"
    link: LinkSpec = TCP_10GBE_LINK

    @property
    def name(self) -> str:
        return self.runtime.name


class OffloadManager:
    """Redirects pending connections to less-loaded peers."""

    def __init__(self, runtime: "NodeRuntime"):
        self.runtime = runtime
        self.env = runtime.env
        self.config = runtime.config
        self.peers: List[Peer] = []

    def add_peer(self, peer_runtime: "NodeRuntime", link: LinkSpec = TCP_10GBE_LINK) -> None:
        if peer_runtime is self.runtime:
            raise ValueError("a node cannot be its own offload peer")
        self.peers.append(Peer(peer_runtime, link))

    # ------------------------------------------------------------------
    def choose_peer(self) -> Optional[Peer]:
        """The least-loaded peer, if offloading is worthwhile.

        Offloading only makes sense when the local GPUs are overloaded
        (live application threads ≥ vGPU capacity) *and* a peer is
        sufficiently less loaded than this node would be after keeping
        the connection.
        """
        if not self.peers:
            return None
        runtime = self.runtime
        capacity = runtime.scheduler.total_vgpus
        live = sum(
            1
            for c in runtime.dispatcher.contexts
            if c.state.value != "done"
        )
        if capacity > 0 and live < capacity:
            return None  # local GPUs not saturated: keep the job
        projected = (live + 1) / capacity if capacity else float("inf")
        best = min(self.peers, key=lambda p: p.runtime.load_per_vgpu())
        peer_load = best.runtime.load_per_vgpu()
        if projected > peer_load + self.config.offload_load_margin:
            return best
        return None

    # ------------------------------------------------------------------
    def proxy(self, app_sock: Socket, peer: Peer) -> Generator:
        """Forward every call of one connection to ``peer`` over TCP.

        Transparent to the application: it still talks to the local
        runtime's socket; the local runtime relays requests and responses
        (paying the network's latency and bandwidth on each call and on
        every data payload).
        """
        peer.runtime.stats.offloads_in += 1
        remote = connect(
            self.env,
            peer.runtime.connections.listener,
            link=peer.link,
            client_name=f"{self.runtime.name}{OFFLOAD_TAG}",
        )
        while True:
            req: Request = yield app_sock.recv()
            yield from remote.send(req, nbytes=req.wire_bytes)
            resp: Response = yield remote.recv()
            yield from app_sock.send(resp, nbytes=resp.wire_bytes)
            if req.method == CallType.EXIT:
                remote.close()
                return
