"""Binding scheduler: grants vGPUs to contexts.

Keeps the dispatcher's three context lists (paper §4.3): *waiting*
contexts queue here for a vGPU; *assigned* contexts are the ones bound;
the *failed* list is managed by the dispatcher's recovery path but vGPU
retirement on device failure happens here.

The scheduling policy decides both which waiting context is served when a
vGPU frees and which idle vGPU a context is placed on.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.sim import Condition, Environment, Event
from repro.simcuda.device import GPUDevice
from repro.simcuda.driver import CudaDriver
from repro.simcuda.errors import CudaError, CudaRuntimeError

from repro.core.config import RuntimeConfig
from repro.core.context import Context, ContextState
from repro.core.policies import SchedulingPolicy
from repro.core.stats import RuntimeStats
from repro.core.vgpu import VirtualGPU
from repro.obs import MetricsRegistry, QUEUE_WAIT_BUCKETS_S, Tracer

__all__ = ["Scheduler"]


class Scheduler:
    """Owns the vGPUs and the waiting-contexts list."""

    def __init__(
        self,
        env: Environment,
        config: RuntimeConfig,
        driver: CudaDriver,
        policy: SchedulingPolicy,
        stats: RuntimeStats,
        obs: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.config = config
        self.driver = driver
        self.policy = policy
        self.stats = stats
        self.obs = obs or Tracer(env)
        metrics = metrics or MetricsRegistry()
        self._queue_wait = metrics.histogram(
            "queue_wait_seconds", "time from vGPU request to binding",
            buckets=QUEUE_WAIT_BUCKETS_S,
        )
        self.vgpus: List[VirtualGPU] = []
        #: waiting contexts, with the event each blocks on
        self._waiting: List[Context] = []
        self._waiting_events: Dict[Context, Event] = {}
        #: enqueue timestamps feeding the queue-wait histogram
        self._enqueued_at: Dict[Context, float] = {}
        #: observers notified when a vGPU becomes idle with no waiters
        #: (the migration manager hooks in here).
        self.idle_hooks: List[Callable[[VirtualGPU], None]] = []
        #: fired whenever a context joins the waiting list (wakes the
        #: CPU-phase reaper without busy polling).
        self.waiting_added = Condition(env)
        #: Wired by the runtime: bytes a context will need on a device
        #: (the paper's MemUsage-informed placement, §4.5: "whether
        #: binding an application thread to a GPU can potentially lead to
        #: exceeding its memory capacity").
        self.mem_needed_fn: Callable[[Context], int] = lambda c: 0
        #: Wired by the runtime under ``locality_binding`` (or the
        #: ``locality`` policy): the transfer-cost model.  When set,
        #: placement picks the idle vGPU with the cheapest modeled
        #: time-to-first-kernel instead of the policy's load heuristic.
        self.cost_model = None
        #: Wired by the runtime: called with (ctx, wait_seconds) at every
        #: queue-wait observation, feeding the per-tenant SLO monitor.
        self.queue_wait_hook: Optional[Callable[[Context, float], None]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Generator:
        """Spawn the configured vGPUs for every installed device."""
        for device in self.driver.devices:
            yield from self._spawn_vgpus(device)

    def _spawn_vgpus(self, device: GPUDevice) -> Generator:
        for index in range(self.config.vgpus_per_device):
            vgpu = VirtualGPU(self.env, self.driver, device, index)
            vgpu.obs = self.obs
            yield from vgpu.start()
            self.vgpus.append(vgpu)

    def add_device(self, device: GPUDevice) -> Generator:
        """Dynamic GPU upgrade: spawn vGPUs and serve waiting contexts."""
        yield from self._spawn_vgpus(device)
        self._grant_waiting()

    def retire_device(self, device: GPUDevice) -> List[Context]:
        """Dynamic downgrade / failure: retire the device's vGPUs.

        Returns the contexts that were bound there (the dispatcher moves
        them through recovery).
        """
        orphans: List[Context] = []
        for vgpu in self.vgpus:
            if vgpu.device is device:
                vgpu.retired = True
                if vgpu.bound_context is not None:
                    orphans.append(vgpu.bound_context)
        # Contexts queued for a binding would otherwise sleep forever on
        # their grant event: the retirement shrank (or emptied) the vGPU
        # pool they were waiting on.  Re-run a grant round if any healthy
        # device remains; fail every waiter if none does, so their
        # handlers can surface the error instead of hanging.
        if any(not d.failed for d in self.driver.devices):
            self._grant_waiting()
        elif self._waiting:
            waiters = list(self._waiting)
            self._waiting.clear()
            self._enqueued_at.clear()
            for ctx in waiters:
                ev = self._waiting_events.pop(ctx)
                ctx.state = ContextState.PENDING
                ev.fail(
                    CudaRuntimeError(
                        CudaError.cudaErrorDevicesUnavailable,
                        f"no healthy device to bind {ctx.owner}",
                    )
                )
            if self.obs.enabled:
                self.obs.queue_depth("waiting_contexts", 0)
        return orphans

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def total_vgpus(self) -> int:
        return sum(1 for v in self.vgpus if not v.retired)

    def idle_vgpus(self) -> List[VirtualGPU]:
        return [v for v in self.vgpus if v.idle and not getattr(v, "reserved", False)]

    def active_per_device(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for v in self.vgpus:
            if v.active:
                counts[v.device.device_id] = counts.get(v.device.device_id, 0) + 1
        return counts

    def bound_contexts(self) -> List[Context]:
        return [v.bound_context for v in self.vgpus if v.bound_context is not None]

    def bound_contexts_on(self, device: GPUDevice) -> List[Context]:
        return [
            v.bound_context
            for v in self.vgpus
            if v.device is device and v.bound_context is not None
        ]

    @property
    def waiting_count(self) -> int:
        return len(self._waiting)

    def load_per_vgpu(self) -> float:
        """Bound + waiting contexts per usable vGPU (offload metric)."""
        capacity = self.total_vgpus
        if capacity == 0:
            return float("inf")
        return (len(self.bound_contexts()) + len(self._waiting)) / capacity

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------
    def required_device(self, ctx: Context) -> Optional[GPUDevice]:
        """CUDA 4.0 semantics (§4.8): if a sibling thread of the same
        application is already bound, this context must use that device
        (the threads share data in one CUDA context on the GPU)."""
        if not self.config.cuda4_semantics or not ctx.application_id:
            return None
        for other in self.bound_contexts():
            if other is not ctx and other.application_id == ctx.application_id:
                return other.vgpu.device
        return None

    def _satisfying_idle(self, ctx: Context, idle: List[VirtualGPU]) -> List[VirtualGPU]:
        device = self.required_device(ctx)
        if device is None:
            return idle
        return [v for v in idle if v.device is device]

    def _share_capped(self, ctx: Context) -> bool:
        """vGPU-share gate (repro.qos): True when the context's tenant
        already holds its configured fraction of the node's vGPUs
        (rounded up to at least one) — the context must wait even if a
        vGPU is idle, leaving headroom for other tenants."""
        tenant = getattr(ctx, "tenant", None)
        if (
            not self.config.qos_enabled
            or tenant is None
            or tenant.vgpu_share is None
        ):
            return False
        cap = max(1, int(tenant.vgpu_share * self.total_vgpus))
        held = sum(
            1
            for c in self.bound_contexts()
            if getattr(c, "tenant", None) is tenant
        )
        return held >= cap

    def request_binding(self, ctx: Context, front: bool = False) -> Generator:
        """Block until ``ctx`` is bound to a vGPU.

        Raises
        ------
        CudaRuntimeError
            ``cudaErrorDevicesUnavailable`` when the node has no healthy
            device left — immediately, or when the last one retires while
            this context waits.  Queueing would otherwise sleep forever on
            a grant that can never come.
        """
        if ctx.bound:
            return
        if not any(not d.failed for d in self.driver.devices):
            raise CudaRuntimeError(
                CudaError.cudaErrorDevicesUnavailable,
                f"no healthy device to bind {ctx.owner}",
            )
        idle = self._satisfying_idle(ctx, self.idle_vgpus())
        if idle and not self._waiting and not self._share_capped(ctx):
            self._queue_wait.observe(0.0)
            if self.queue_wait_hook is not None:
                self.queue_wait_hook(ctx, 0.0)
            self._bind(ctx, self._choose_vgpu(ctx, idle))
            return
        ctx.state = ContextState.WAITING
        ev = Event(self.env)
        self._waiting_events[ctx] = ev
        self._enqueued_at[ctx] = self.env.now
        ctx.wait_since = self.env.now
        if front:
            self._waiting.insert(0, ctx)
        else:
            self._waiting.append(ctx)
        if self.obs.enabled:
            self.obs.queue_depth("waiting_contexts", len(self._waiting))
        self.waiting_added.notify_all()
        # A vGPU may be idle while waiters exist (policy reordering);
        # try a grant round before blocking.
        self._grant_waiting()
        span = getattr(ctx, "span", None)
        if span is not None:
            span.push("bind_wait")
        try:
            yield ev
        finally:
            if span is not None:
                span.pop()
        assert ctx.bound

    def release(self, ctx: Context, reason: str = "") -> None:
        """Unbind ``ctx`` from its vGPU and serve the next waiter."""
        vgpu = ctx.vgpu
        if vgpu is None:
            return
        vgpu.unbind(ctx, reason)
        if ctx.state is ContextState.ASSIGNED:
            ctx.state = ContextState.PENDING
        self.stats.unbindings += 1
        self._grant_waiting()
        if vgpu.idle and not self._waiting:
            for hook in self.idle_hooks:
                hook(vgpu)

    def cancel_wait(self, ctx: Context) -> None:
        """Remove a context from the waiting list (exit while queued)."""
        if ctx in self._waiting:
            self._waiting.remove(ctx)
            self._waiting_events.pop(ctx, None)
            self._enqueued_at.pop(ctx, None)
            if self.obs.enabled:
                self.obs.queue_depth("waiting_contexts", len(self._waiting))

    # ------------------------------------------------------------------
    def _choose_vgpu(self, ctx: Context, idle: List[VirtualGPU]) -> VirtualGPU:
        mem_needed = self.mem_needed_fn(ctx)
        if self.cost_model is not None:
            scored = self.cost_model.score_candidates(
                ctx, idle, self.active_per_device(), mem_needed
            )
            if scored:
                chosen, _cost = min(
                    scored,
                    key=lambda s: (s[1], s[0].device.device_id, s[0].index),
                )
                if self.obs.enabled:
                    self.obs.binding_decision(ctx, chosen, scored)
                return chosen
        vgpu = self.policy.select_vgpu(ctx, idle, self.active_per_device(), mem_needed)
        return vgpu if vgpu is not None else idle[0]

    def _bind(self, ctx: Context, vgpu: VirtualGPU) -> None:
        vgpu.bind(ctx)
        ctx.state = ContextState.ASSIGNED
        self.stats.bindings += 1

    def _grant_waiting(self) -> None:
        while self._waiting:
            idle = self.idle_vgpus()
            if not idle:
                return
            # Serve in policy order, skipping contexts whose device
            # affinity (CUDA 4.0 sibling constraint) cannot currently be
            # satisfied — they must not block unconstrained waiters.
            candidates = list(self._waiting)
            granted = False
            while candidates:
                ctx = self.policy.pick_next(candidates)
                if ctx is None:
                    return
                if self._share_capped(ctx):
                    # Tenant at its vGPU share: like an unsatisfiable
                    # affinity, it must not block other waiters.
                    candidates.remove(ctx)
                    continue
                usable = self._satisfying_idle(ctx, idle)
                if usable:
                    self._waiting.remove(ctx)
                    ev = self._waiting_events.pop(ctx)
                    enqueued = self._enqueued_at.pop(ctx, self.env.now)
                    self._queue_wait.observe(self.env.now - enqueued)
                    if self.queue_wait_hook is not None:
                        self.queue_wait_hook(ctx, self.env.now - enqueued)
                    if self.obs.enabled:
                        self.obs.queue_depth("waiting_contexts", len(self._waiting))
                    self._bind(ctx, self._choose_vgpu(ctx, usable))
                    ev.succeed()
                    granted = True
                    break
                candidates.remove(ctx)
            if not granted:
                return
