"""The frontend (intercept) library — the application side.

Applications link against this instead of the CUDA runtime; every call is
marshalled over the connection to the node runtime (API remoting, as in
gVirtuS).  One frontend instance per application thread, matching the
one-connection-per-thread design of §4.2.

The API mirrors :class:`repro.simcuda.runtime_api.CudaRuntimeAPI`, so the
workload models run unchanged on either the bare CUDA runtime or the
paper's runtime — exactly the property the real intercept library has.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Tuple

from repro.net.channel import LinkSpec, AFUNIX_LINK
from repro.net.rpc import RpcClient
from repro.net.socket import Listener, connect

from repro.core.protocol import CallType
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

__all__ = ["Frontend"]


class Frontend:
    """Client endpoint for one application thread."""

    def __init__(
        self,
        env,
        listener: Listener,
        link: LinkSpec = AFUNIX_LINK,
        name: str = "app",
        estimated_gpu_seconds: Optional[float] = None,
        application_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        tenant: Optional[str] = None,
        estimated_bytes: Optional[int] = None,
    ):
        self.env = env
        self._listener = listener
        self._link = link
        self.name = name
        self.estimated_gpu_seconds = estimated_gpu_seconds
        #: CUDA 4.0 semantics: threads of one application (same id) share
        #: GPU data and must be bound to the same device (§4.8).
        self.application_id = application_id
        #: QoS hint: absolute completion deadline in simulated seconds.
        self.deadline_s = deadline_s
        #: Tenant this connection belongs to (repro.qos); admission
        #: control, quotas and wfq scheduling key on it server-side.
        self.tenant = tenant
        #: Admission hint: expected peak allocation footprint in bytes.
        self.estimated_bytes = estimated_bytes
        self._rpc: Optional[RpcClient] = None

    # ------------------------------------------------------------------
    def open(self) -> Generator:
        """Establish the connection and send the identity handshake."""
        sock = connect(self.env, self._listener, link=self._link, client_name=self.name)
        self._rpc = RpcClient(sock)
        yield from self._rpc.call(
            "reproHello",
            owner=self.name,
            estimated_gpu_seconds=self.estimated_gpu_seconds,
            application_id=self.application_id,
            deadline_s=self.deadline_s,
            tenant=self.tenant,
            estimated_bytes=self.estimated_bytes,
        )

    @property
    def connected(self) -> bool:
        return self._rpc is not None

    @property
    def trace_id(self) -> Optional[int]:
        """The connection-scoped trace id stamped on every outgoing call
        (set once the connection is open).  All spans of this thread's
        calls share it, which is what lets the analyzer group a trace by
        application thread."""
        return self._rpc.trace_id if self._rpc is not None else None

    def _call(self, method: CallType, payload_bytes: int = 0, **args) -> Generator:
        if self._rpc is None:
            raise RuntimeError("frontend not connected; call open() first")
        result = yield from self._rpc.call(method, payload_bytes=payload_bytes, **args)
        return result

    # ------------------------------------------------------------------
    # registration (host startup code)
    # ------------------------------------------------------------------
    def register_fat_binary(self, fatbin: FatBinary) -> Generator:
        handle = yield from self._call(CallType.REGISTER_FATBIN, fatbin=fatbin)
        return handle

    def register_function(self, fatbin_handle: int, descriptor: KernelDescriptor) -> Generator:
        yield from self._call(
            CallType.REGISTER_FUNCTION,
            fatbin_handle=fatbin_handle,
            descriptor=descriptor,
        )

    def register_var(self, fatbin_handle: int, name: str) -> Generator:
        """``__cudaRegisterVar``: a device global variable."""
        yield from self._call(
            CallType.REGISTER_VAR, fatbin_handle=fatbin_handle, name=name
        )

    def register_texture(self, fatbin_handle: int, name: str) -> Generator:
        """``__cudaRegisterTexture``."""
        yield from self._call(
            CallType.REGISTER_TEXTURE, fatbin_handle=fatbin_handle, name=name
        )

    def register_shared_var(self, fatbin_handle: int, name: str) -> Generator:
        """``__cudaRegisterSharedVar``."""
        yield from self._call(
            CallType.REGISTER_SHARED_VAR, fatbin_handle=fatbin_handle, name=name
        )

    # ------------------------------------------------------------------
    # device management (overridden server-side)
    # ------------------------------------------------------------------
    def cuda_set_device(self, device_id: int) -> Generator:
        yield from self._call(CallType.SET_DEVICE, device=device_id)

    def cuda_get_device_count(self) -> Generator:
        count = yield from self._call(CallType.GET_DEVICE_COUNT)
        return count

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def cuda_malloc(self, size: int) -> Generator:
        vptr = yield from self._call(CallType.MALLOC, size=size)
        return vptr

    def cuda_free(self, vptr: int) -> Generator:
        yield from self._call(CallType.FREE, vptr=vptr)

    def cuda_memcpy_h2d(self, vptr: int, nbytes: int) -> Generator:
        yield from self._call(
            CallType.MEMCPY_H2D, payload_bytes=nbytes, vptr=vptr, nbytes=nbytes
        )

    def cuda_memcpy_d2h(self, vptr: int, nbytes: int) -> Generator:
        yield from self._call(CallType.MEMCPY_D2H, vptr=vptr, nbytes=nbytes)

    def register_nested(
        self, parent: int, members: Sequence[int], offsets: Sequence[int]
    ) -> Generator:
        """Declare a nested data structure to the runtime (§4.5)."""
        yield from self._call(
            CallType.REGISTER_NESTED,
            parent=parent,
            members=tuple(members),
            offsets=tuple(offsets),
        )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def cuda_configure_call(
        self,
        grid: Tuple[int, int, int] = (1, 1, 1),
        block: Tuple[int, int, int] = (256, 1, 1),
    ) -> Generator:
        yield from self._call(CallType.CONFIGURE_CALL, grid=grid, block=block)

    def cuda_launch(
        self,
        kernel: KernelDescriptor,
        args: Sequence[int],
        read_only: Sequence[int] = (),
    ) -> Generator:
        yield from self._call(
            CallType.LAUNCH,
            kernel=kernel,
            args=tuple(args),
            read_only=tuple(read_only),
        )

    def launch_kernel(
        self,
        kernel: KernelDescriptor,
        args: Sequence[int],
        read_only: Sequence[int] = (),
        grid: Tuple[int, int, int] = (1, 1, 1),
        block: Tuple[int, int, int] = (256, 1, 1),
    ) -> Generator:
        """Convenience: configure + launch in one go."""
        yield from self.cuda_configure_call(grid, block)
        yield from self.cuda_launch(kernel, args, read_only)

    def cuda_thread_synchronize(self) -> Generator:
        yield from self._call(CallType.THREAD_SYNCHRONIZE)

    def checkpoint(self) -> Generator:
        """Explicit user-specified checkpoint (§4.6)."""
        yield from self._call(CallType.CHECKPOINT)

    def cuda_thread_exit(self) -> Generator:
        yield from self._call(CallType.EXIT)
        self._rpc = None
