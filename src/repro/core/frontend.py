"""The frontend (intercept) library — the application side.

Applications link against this instead of the CUDA runtime; every call is
marshalled over the connection to the node runtime (API remoting, as in
gVirtuS).  One frontend instance per application thread, matching the
one-connection-per-thread design of §4.2.

The API mirrors :class:`repro.simcuda.runtime_api.CudaRuntimeAPI`, so the
workload models run unchanged on either the bare CUDA runtime or the
paper's runtime — exactly the property the real intercept library has.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from repro.net.channel import LinkSpec, AFUNIX_LINK
from repro.net.rpc import Request, RpcClient
from repro.net.socket import Listener, connect
from repro.sim import Lock

from repro.core.protocol import BATCHABLE_CALLS, CallType
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

__all__ = ["Frontend"]


class Frontend:
    """Client endpoint for one application thread.

    With ``batch_max_calls >= 2`` the frontend journals asynchronous
    calls (:data:`~repro.core.protocol.BATCHABLE_CALLS`) instead of
    issuing them, and ships up to N in one batch frame — the control
    plane then pays the link's per-message cost and the dispatcher's
    scheduler round-trip once per *batch*.  Any synchronizing call (it
    needs a value, or the application could observe its effect) is a
    flush barrier: it rides as the last call of the pending batch and
    returns its own result.  Errors of journaled calls are deferred to
    the next flush, matching the asynchronous-launch error semantics of
    the real CUDA runtime.
    """

    def __init__(
        self,
        env,
        listener: Listener,
        link: LinkSpec = AFUNIX_LINK,
        name: str = "app",
        estimated_gpu_seconds: Optional[float] = None,
        application_id: Optional[str] = None,
        deadline_s: Optional[float] = None,
        tenant: Optional[str] = None,
        estimated_bytes: Optional[int] = None,
        batch_max_calls: int = 1,
        batch_max_delay_s: Optional[float] = None,
    ):
        self.env = env
        self._listener = listener
        self._link = link
        self.name = name
        self.estimated_gpu_seconds = estimated_gpu_seconds
        #: CUDA 4.0 semantics: threads of one application (same id) share
        #: GPU data and must be bound to the same device (§4.8).
        self.application_id = application_id
        #: QoS hint: absolute completion deadline in simulated seconds.
        self.deadline_s = deadline_s
        #: Tenant this connection belongs to (repro.qos); admission
        #: control, quotas and wfq scheduling key on it server-side.
        self.tenant = tenant
        #: Admission hint: expected peak allocation footprint in bytes.
        self.estimated_bytes = estimated_bytes
        self._rpc: Optional[RpcClient] = None
        #: Batching knobs (``RuntimeConfig.batch_max_calls`` /
        #: ``batch_max_delay_s``); 1 = every call is its own RPC, the
        #: historic behavior down to identical simulated times.
        self.batch_max_calls = batch_max_calls
        self.batch_max_delay_s = batch_max_delay_s
        self._batch: List[Request] = []
        #: Bumped on every flush; lets a pending delay-timer recognize
        #: that "its" batch is already gone.
        self._batch_generation = 0
        #: Serializes flushes against barrier calls — only one RPC may be
        #: in flight on the connection.  Touched only when batching.
        self._flush_lock = Lock(env)
        #: Error raised by a timer-driven flush, surfaced to the
        #: application at its next call (deferred error reporting).
        self._deferred_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def open(self) -> Generator:
        """Establish the connection and send the identity handshake."""
        sock = connect(self.env, self._listener, link=self._link, client_name=self.name)
        self._rpc = RpcClient(sock)
        yield from self._rpc.call(
            "reproHello",
            owner=self.name,
            estimated_gpu_seconds=self.estimated_gpu_seconds,
            application_id=self.application_id,
            deadline_s=self.deadline_s,
            tenant=self.tenant,
            estimated_bytes=self.estimated_bytes,
        )

    @property
    def connected(self) -> bool:
        return self._rpc is not None

    @property
    def trace_id(self) -> Optional[int]:
        """The connection-scoped trace id stamped on every outgoing call
        (set once the connection is open).  All spans of this thread's
        calls share it, which is what lets the analyzer group a trace by
        application thread."""
        return self._rpc.trace_id if self._rpc is not None else None

    @property
    def _batching(self) -> bool:
        return self.batch_max_calls >= 2

    def _call(self, method: CallType, payload_bytes: int = 0, **args) -> Generator:
        if self._rpc is None:
            raise RuntimeError("frontend not connected; call open() first")
        if self._batching:
            if method in BATCHABLE_CALLS:
                self._enqueue(method, payload_bytes, args)
                if len(self._batch) >= self.batch_max_calls:
                    yield from self._flush_batch()
                return None
            if self._batch or self._deferred_error is not None:
                # Flush barrier: ship the pending batch with this call as
                # its tail and return this call's own result.
                self._enqueue(method, payload_bytes, args)
                responses = yield from self._flush_batch()
                return responses[-1].unwrap()
        result = yield from self._rpc.call(method, payload_bytes=payload_bytes, **args)
        return result

    def _enqueue(self, method: CallType, payload_bytes: int, args: dict) -> None:
        """Journal a call into the pending batch (no wire traffic yet).

        ``sent_at`` records the *enqueue* time — the server credits the
        span's client-side wait to the ``batch_queue`` phase from here.
        """
        req = Request(method=method, args=args, payload_bytes=payload_bytes)
        req.trace_id = self._rpc.trace_id
        req.span_id = req.request_id
        req.sent_at = self.env.now
        self._batch.append(req)
        if len(self._batch) == 1 and self.batch_max_delay_s is not None:
            self.env.process(
                self._delayed_flush(self._batch_generation),
                name=f"batch-timer-{self.name}",
            )

    def _flush_batch(self) -> Generator:
        """Ship the pending batch; returns the per-call responses.

        Raises the first error any batched call produced (deferred-error
        semantics) — calls after the failing one carry ``BATCH_ABORTED``
        and the application sees the root cause.
        """
        yield self._flush_lock.acquire()
        try:
            if self._deferred_error is not None:
                error, self._deferred_error = self._deferred_error, None
                raise error
            if not self._batch:
                return []
            batch, self._batch = self._batch, []
            self._batch_generation += 1
            responses = yield from self._rpc.call_batch(batch)
            for resp in responses:
                if resp.error is not None:
                    raise resp.error
            return responses
        finally:
            self._flush_lock.release()

    def _delayed_flush(self, generation: int) -> Generator:
        """``batch_max_delay_s`` timer: flush a batch that went stale."""
        yield self.env.timeout(self.batch_max_delay_s)
        if (
            generation != self._batch_generation
            or not self._batch
            or self._rpc is None
        ):
            return
        try:
            yield from self._flush_batch()
        except Exception as exc:  # noqa: BLE001 - deferred to the app's next call
            self._deferred_error = exc

    def flush(self) -> Generator:
        """Explicitly ship any journaled calls (and surface their errors)."""
        if self._batching and (self._batch or self._deferred_error is not None):
            yield from self._flush_batch()

    # ------------------------------------------------------------------
    # registration (host startup code)
    # ------------------------------------------------------------------
    def register_fat_binary(self, fatbin: FatBinary) -> Generator:
        handle = yield from self._call(CallType.REGISTER_FATBIN, fatbin=fatbin)
        return handle

    def register_function(self, fatbin_handle: int, descriptor: KernelDescriptor) -> Generator:
        yield from self._call(
            CallType.REGISTER_FUNCTION,
            fatbin_handle=fatbin_handle,
            descriptor=descriptor,
        )

    def register_var(self, fatbin_handle: int, name: str) -> Generator:
        """``__cudaRegisterVar``: a device global variable."""
        yield from self._call(
            CallType.REGISTER_VAR, fatbin_handle=fatbin_handle, name=name
        )

    def register_texture(self, fatbin_handle: int, name: str) -> Generator:
        """``__cudaRegisterTexture``."""
        yield from self._call(
            CallType.REGISTER_TEXTURE, fatbin_handle=fatbin_handle, name=name
        )

    def register_shared_var(self, fatbin_handle: int, name: str) -> Generator:
        """``__cudaRegisterSharedVar``."""
        yield from self._call(
            CallType.REGISTER_SHARED_VAR, fatbin_handle=fatbin_handle, name=name
        )

    # ------------------------------------------------------------------
    # device management (overridden server-side)
    # ------------------------------------------------------------------
    def cuda_set_device(self, device_id: int) -> Generator:
        yield from self._call(CallType.SET_DEVICE, device=device_id)

    def cuda_get_device_count(self) -> Generator:
        count = yield from self._call(CallType.GET_DEVICE_COUNT)
        return count

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def cuda_malloc(self, size: int) -> Generator:
        vptr = yield from self._call(CallType.MALLOC, size=size)
        return vptr

    def cuda_free(self, vptr: int) -> Generator:
        yield from self._call(CallType.FREE, vptr=vptr)

    def cuda_memcpy_h2d(self, vptr: int, nbytes: int) -> Generator:
        yield from self._call(
            CallType.MEMCPY_H2D, payload_bytes=nbytes, vptr=vptr, nbytes=nbytes
        )

    def cuda_memcpy_d2h(self, vptr: int, nbytes: int) -> Generator:
        yield from self._call(CallType.MEMCPY_D2H, vptr=vptr, nbytes=nbytes)

    def register_nested(
        self, parent: int, members: Sequence[int], offsets: Sequence[int]
    ) -> Generator:
        """Declare a nested data structure to the runtime (§4.5)."""
        yield from self._call(
            CallType.REGISTER_NESTED,
            parent=parent,
            members=tuple(members),
            offsets=tuple(offsets),
        )

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def cuda_configure_call(
        self,
        grid: Tuple[int, int, int] = (1, 1, 1),
        block: Tuple[int, int, int] = (256, 1, 1),
    ) -> Generator:
        yield from self._call(CallType.CONFIGURE_CALL, grid=grid, block=block)

    def cuda_launch(
        self,
        kernel: KernelDescriptor,
        args: Sequence[int],
        read_only: Sequence[int] = (),
    ) -> Generator:
        yield from self._call(
            CallType.LAUNCH,
            kernel=kernel,
            args=tuple(args),
            read_only=tuple(read_only),
        )

    def launch_kernel(
        self,
        kernel: KernelDescriptor,
        args: Sequence[int],
        read_only: Sequence[int] = (),
        grid: Tuple[int, int, int] = (1, 1, 1),
        block: Tuple[int, int, int] = (256, 1, 1),
    ) -> Generator:
        """Convenience: configure + launch in one go."""
        yield from self.cuda_configure_call(grid, block)
        yield from self.cuda_launch(kernel, args, read_only)

    # ------------------------------------------------------------------
    # graph capture/replay (runtime extension)
    # ------------------------------------------------------------------
    def graph_begin_capture(self) -> Generator:
        """Start recording configure/launch calls instead of executing
        them (CUDA stream-capture semantics: nothing runs while
        capturing)."""
        yield from self._call(CallType.GRAPH_BEGIN_CAPTURE)

    def graph_end_capture(self) -> Generator:
        """Stop recording; instantiates the captured sequence server-side
        and returns the graph handle."""
        handle = yield from self._call(CallType.GRAPH_END_CAPTURE)
        return handle

    def graph_launch(self, graph: int) -> Generator:
        """Re-issue an instantiated graph: every captured kernel runs,
        for a single control-plane charge."""
        yield from self._call(CallType.GRAPH_LAUNCH, graph=graph)

    def cuda_thread_synchronize(self) -> Generator:
        yield from self._call(CallType.THREAD_SYNCHRONIZE)

    def checkpoint(self) -> Generator:
        """Explicit user-specified checkpoint (§4.6)."""
        yield from self._call(CallType.CHECKPOINT)

    def cuda_thread_exit(self) -> Generator:
        yield from self._call(CallType.EXIT)
        self._rpc = None
