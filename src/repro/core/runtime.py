"""NodeRuntime: the per-node daemon (paper Figure 3).

Wires together the connection manager, dispatcher, scheduler (vGPUs),
memory manager, migration manager and offload manager, and exposes the
operational surface the experiments drive: start-up, GPU failure /
hotplug, and load metrics.
"""

from __future__ import annotations

import itertools
from typing import Generator, List, Optional, Set

from repro.sim import Environment, TimerWheel
from repro.simcuda.device import GPUDevice, GPUSpec
from repro.simcuda.driver import CudaDriver

from repro.core.config import RuntimeConfig
from repro.core.connection import ConnectionManager
from repro.core.context import Context, ContextState
from repro.core.dispatcher import Dispatcher
from repro.core.memory.costmodel import TransferCostModel
from repro.core.memory.manager import MemoryManager
from repro.core.migration import MigrationManager
from repro.core.offload import OffloadManager
from repro.core.policies import make_policy
from repro.core.scheduler import Scheduler
from repro.core.stats import RuntimeStats
from repro.obs import MetricsRegistry, SLOMonitor, Tracer
from repro.qos import AdmissionController, TenantRegistry

__all__ = ["NodeRuntime"]

_runtime_seq = itertools.count()


class NodeRuntime:
    """The runtime daemon for one compute node."""

    def __init__(
        self,
        env: Environment,
        driver: CudaDriver,
        config: Optional[RuntimeConfig] = None,
        name: Optional[str] = None,
    ):
        self.env = env
        self.driver = driver
        self.config = config or RuntimeConfig()
        self.name = name or f"runtime{next(_runtime_seq)}"
        #: Shared timer wheel: every recurring tick on this node (monitor
        #: sampling, the CPU-phase reaper's rescan) multiplexes onto one
        #: pending kernel Timeout instead of one per timer.
        self.timers = TimerWheel(env)
        self.stats = RuntimeStats()
        #: Structured event bus (repro.obs); disabled unless configured.
        self.obs = Tracer(env, enabled=self.config.tracing, node=self.name)
        #: One consistent metrics schema over this node: wraps the flat
        #: RuntimeStats counters, adds live gauges and the histograms the
        #: hot paths feed.  Always on (snapshots are pull-based).
        self.metrics = MetricsRegistry(node=self.name)
        self.metrics.attach_stats(self.stats)
        self.memory = MemoryManager(env, self.config, self.stats, obs=self.obs,
                                    metrics=self.metrics)
        self.scheduler = Scheduler(
            env, self.config, driver, make_policy(self.config.policy), self.stats,
            obs=self.obs, metrics=self.metrics,
        )
        self.connections = ConnectionManager(
            env, name=self.name, backlog_limit=self.config.listener_backlog
        )
        self.connections.obs = self.obs
        #: Multi-tenant QoS (repro.qos): tenant registry + admission
        #: control.  Always constructed; both are inert no-ops until
        #: ``config.qos_enabled`` / a tenant name arrives on a handshake.
        self.qos = TenantRegistry()
        self.qos.on_register = self._on_tenant_registered
        self.admission = AdmissionController(
            env, self.config, self.qos, stats=self.stats, obs=self.obs
        )
        #: Per-tenant sliding-window turnaround/queue-wait accounting and
        #: SLO burn rates.  Always on, like the metrics registry.
        self.slo = SLOMonitor(env, self.config)
        self.scheduler.queue_wait_hook = self.slo.observe_queue_wait
        self.dispatcher = Dispatcher(self)
        self.migration = MigrationManager(self)
        self.offloader = OffloadManager(self)
        self._failed_devices: Set[int] = set()
        self._started = False
        # Live gauges: pull-based, so node_report()/exports always see
        # current state without the hot paths pushing updates.
        self.metrics.gauge("vgpus_total", "usable vGPUs",
                           fn=lambda: self.scheduler.total_vgpus)
        self.metrics.gauge("vgpus_active", "vGPUs serving a context",
                           fn=lambda: sum(1 for v in self.scheduler.vgpus if v.active))
        self.metrics.gauge("waiting_contexts", "contexts queued for a vGPU",
                           fn=lambda: self.scheduler.waiting_count)
        self.metrics.gauge("pending_connections", "accepted, un-dispatched connections",
                           fn=lambda: self.connections.pending_count)
        self.metrics.gauge("load_per_vgpu", "live application threads per vGPU",
                           fn=self.load_per_vgpu)
        self.metrics.gauge("swap_used_bytes", "host swap-area occupancy",
                           fn=lambda: self.memory.swap.used_bytes)
        self.metrics.gauge("swap_area_used_bytes", "host swap-area bytes allocated",
                           fn=lambda: self.memory.swap.used_bytes)
        self.metrics.gauge("swap_area_peak_bytes", "high-water mark of swap-area occupancy",
                           fn=lambda: self.memory.swap.peak_used)
        self.metrics.gauge("copy_exec_overlap_seconds",
                           "seconds the copy and exec engines ran concurrently",
                           fn=lambda: sum(d.copy_exec_overlap_seconds
                                          for d in self.driver.devices))
        self.metrics.gauge("listener_backlog", "un-accepted connections on the listener",
                           fn=lambda: self.connections.listener.backlog)
        self.metrics.gauge("listener_refused", "connections refused by the accept backlog",
                           fn=lambda: self.connections.listener.refused)
        self.metrics.gauge("admitted_contexts", "contexts past admission control",
                           fn=lambda: self.admission.admitted_count)
        # (call_latency_seconds / queue_wait_seconds / swap_*_bytes
        # histograms are created by the dispatcher, scheduler and memory
        # manager against this same registry.)
        # Wire the memory manager's collaboration points.
        self.memory.unbind_callback = self._unbind_after_inter_swap
        self.memory.bound_contexts_on = self.scheduler.bound_contexts_on
        self.memory.devices_fn = lambda: [
            d for d in self.driver.devices if not d.failed
        ]
        # Memory-informed placement (§4.5 MemUsage/CapacityList).
        self.scheduler.mem_needed_fn = self.memory.page_table.total_bytes
        # Single replay implementation (§4.6): full-node restart replays
        # through the dispatcher's recovery loop.
        self.memory.replay_fn = self.dispatcher.replay_journal
        # Engine-occupancy tracing: the driver reports every copy/exec
        # span; forwarded onto the event bus when tracing is enabled.
        self.driver.span_hook = self._on_engine_span
        # Transfer-cost model (§4.4 cost-driven dynamic binding).  Always
        # constructed and fed kernel observations (via memory.cost_model)
        # so its EWMA is warm, but it only *influences* decisions when
        # wired into the scheduler / migration / eviction below — which
        # happens under ``locality_binding`` or the ``locality`` policy,
        # keeping the default configuration behavior-identical.
        self.cost_model = TransferCostModel(
            self.config, self.memory.page_table, self.memory.swap, self.scheduler
        )
        self.memory.cost_model = self.cost_model
        policy = self.scheduler.policy
        if hasattr(policy, "cost_model"):
            policy.cost_model = self.cost_model
        if hasattr(policy, "idle_vgpus_fn"):
            policy.idle_vgpus_fn = self.scheduler.idle_vgpus
        if self.config.locality_binding or self.config.policy == "locality":
            self.scheduler.cost_model = self.cost_model
        if self.config.locality_binding:
            self.migration.cost_model = self.cost_model
            if hasattr(self.memory.eviction_policy, "cost_fn"):
                self.memory.eviction_policy.cost_fn = (
                    lambda ctx, pte: self.cost_model.evict_cost(ctx, pte, env.now)
                )
        # History-estimator policies (sjf_est/hrrn): a node-local
        # estimator fed by the dispatcher at context exit.  The
        # trace-replay harness replaces it with one shared cluster-wide
        # instance so every node's policy sees the head node's history.
        if hasattr(policy, "estimator") and policy.estimator is None:
            from repro.core.estimator import RuntimeEstimator

            policy.estimator = RuntimeEstimator()
        # Fair-share needs the whole tenant population for its group
        # aggregates, not just the tenants currently waiting.
        if hasattr(policy, "tenants_fn") and policy.tenants_fn is None:
            policy.tenants_fn = self.qos.tenants

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Generator:
        """Spawn vGPUs (one CUDA context each) and begin serving."""
        if self._started:
            return
        self._started = True
        if self.config.macro_step:
            # Macro-stepping is an environment-wide execution mode (the
            # kernel primitives consult it), opted into by the runtime.
            self.env.macro_step = True
        self.driver.concurrent_kernels = self.config.kernel_consolidation
        self.driver.launch_control_plane_s = self.config.launch_control_plane_s
        for device in self.driver.devices:
            device.allocator.mode = self.config.allocator_placement
        yield from self.scheduler.start()
        self.connections.start()
        self.dispatcher.start()
        if self.config.unbind_on_cpu_phase_s is not None:
            self._reaper_idle()

    @property
    def listener(self):
        """Where frontends connect."""
        return self.connections.listener

    # ------------------------------------------------------------------
    # device availability (upgrade / downgrade / failure, §4.6)
    # ------------------------------------------------------------------
    def fail_device(self, device: GPUDevice) -> None:
        """Inject a device failure (or hard removal)."""
        device.fail()
        self.note_device_failure(device)

    def note_device_failure(self, device: GPUDevice) -> None:
        """Idempotent: retire the device's vGPUs.  Contexts bound there
        discover the failure on their next call and go through the
        dispatcher's recovery path."""
        if device.device_id in self._failed_devices:
            return
        self._failed_devices.add(device.device_id)
        self.scheduler.retire_device(device)

    def add_device(self, spec: GPUSpec) -> Generator:
        """Dynamic upgrade: install a GPU and spawn vGPUs on it."""
        device = self.driver.add_device(spec)
        device.allocator.mode = self.config.allocator_placement
        yield from self.scheduler.add_device(device)
        return device

    def remove_device_gracefully(self, device: GPUDevice) -> Generator:
        """Dynamic downgrade: drain the device, migrating its contexts.

        Bound contexts are swapped out and returned to the scheduler so
        they rebind elsewhere on their next launch; then the device is
        removed from the driver.
        """
        victims: List[Context] = list(self.scheduler.bound_contexts_on(device))
        for ctx in victims:
            yield ctx.lock.acquire()
            try:
                if ctx.bound and ctx.vgpu.device is device:
                    yield from self.memory.swap_out_context(ctx)
                    self.scheduler.release(ctx, "device downgrade")
            finally:
                ctx.lock.release()
        for vgpu in self.scheduler.vgpus:
            if vgpu.device is device:
                vgpu.retired = True
        self.driver.remove_device(device)
        self._failed_devices.add(device.device_id)

    # ------------------------------------------------------------------
    # collaboration points
    # ------------------------------------------------------------------
    def _unbind_after_inter_swap(self, victim: Context, reason: str) -> None:
        self.scheduler.release(victim, reason)

    def _on_tenant_registered(self, tenant) -> None:
        """Per-tenant observability: callback gauges so exports and
        node_report() always see live usage without push updates."""
        slug = "".join(c if c.isalnum() else "_" for c in tenant.name)
        self.metrics.gauge(
            f"tenant_gpu_seconds_{slug}",
            f"GPU seconds consumed by tenant {tenant.name}",
            fn=lambda t=tenant: t.gpu_seconds_used,
        )
        self.metrics.gauge(
            f"tenant_mem_bytes_{slug}",
            f"device memory held by tenant {tenant.name}",
            fn=lambda t=tenant: t.device_bytes(self.memory.page_table),
        )
        self.metrics.gauge(
            f"tenant_swap_out_bytes_{slug}",
            f"cumulative device-to-host swap traffic of tenant {tenant.name}",
            fn=lambda t=tenant: t.swap_bytes_out_total,
        )
        self.metrics.gauge(
            f"tenant_swap_in_bytes_{slug}",
            f"cumulative host-to-device swap traffic of tenant {tenant.name}",
            fn=lambda t=tenant: t.swap_bytes_in_total,
        )
        self.metrics.gauge(
            f"tenant_turnaround_burn_rate_{slug}",
            f"SLO error-budget burn rate on call turnaround for tenant {tenant.name}",
            fn=lambda t=tenant: self.slo.burn_rate(t.name, "turnaround"),
        )
        self.metrics.gauge(
            f"tenant_queue_wait_burn_rate_{slug}",
            f"SLO error-budget burn rate on queue wait for tenant {tenant.name}",
            fn=lambda t=tenant: self.slo.burn_rate(t.name, "queue_wait"),
        )

    def _on_engine_span(
        self, device: GPUDevice, engine: str, op: str, nbytes: int,
        owner: str, begin_at: float,
    ) -> None:
        if self.obs.enabled:
            self.obs.engine_span(device, engine, op, nbytes, owner, begin_at)

    def _reaper_idle(self, _event=None) -> None:
        """CPU-phase reaper, idle half: unbind contexts lingering in CPU
        phases while others wait for a vGPU (time-sharing beyond memory
        pressure).  While nobody queues, park on the scheduler's
        ``waiting_added`` condition — a recurring rescan would keep the
        event queue alive past the last application."""
        if self.scheduler.waiting_count == 0:
            self.scheduler.waiting_added.wait().callbacks.append(self._reaper_idle)
            return
        threshold = self.config.unbind_on_cpu_phase_s
        self.timers.call_after(max(threshold / 2, 1e-3), self._reaper_scan)

    def _reaper_scan(self) -> None:
        """CPU-phase reaper, active half: one rescan tick off the node's
        timer wheel."""
        threshold = self.config.unbind_on_cpu_phase_s
        if self.scheduler.waiting_count > 0:
            for ctx in self.scheduler.bound_contexts():
                if (
                    ctx.in_cpu_phase
                    and ctx.cpu_phase_duration(self.env.now) >= threshold
                    and not ctx.lock.locked
                    and not ctx.excluded_from_sharing
                    and ctx.state is ContextState.ASSIGNED
                ):
                    self.env.process(self._reap(ctx), name=f"reap-{ctx.owner}")
        self._reaper_idle()

    def _reap(self, ctx: Context) -> Generator:
        yield ctx.lock.acquire()
        try:
            if (
                ctx.bound
                and ctx.in_cpu_phase
                and self.scheduler.waiting_count > 0
                and ctx.state is ContextState.ASSIGNED
            ):
                if self.config.locality_binding:
                    # Retention unbind: dirty chunks go to swap but the
                    # device copy stays cached for a same-vGPU rebind.
                    yield from self.memory.unbind_retain(ctx)
                else:
                    yield from self.memory.swap_out_context(ctx)
                self.scheduler.release(ctx, "cpu-phase unbind")
        finally:
            ctx.lock.release()

    # ------------------------------------------------------------------
    def contexts(self) -> List[Context]:
        return list(self.dispatcher.contexts)

    def load_per_vgpu(self) -> float:
        """Offload metric (§4.7): live application threads on this node —
        connections pending plus contexts not yet finished — per usable
        vGPU."""
        capacity = self.scheduler.total_vgpus
        if capacity == 0:
            return float("inf")
        live = sum(1 for c in self.dispatcher.contexts if c.state is not ContextState.DONE)
        return (live + self.connections.pending_count) / capacity

    def __repr__(self) -> str:
        return (
            f"<NodeRuntime {self.name} devices={self.driver.device_count()} "
            f"vgpus={self.scheduler.total_vgpus} waiting={self.scheduler.waiting_count}>"
        )
