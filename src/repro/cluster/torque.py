"""TORQUE-like cluster resource manager (paper §5.4).

Jobs are submitted at the head node and executed on compute nodes.  Two
modes reproduce the paper's integration scenarios:

``TorqueMode.NATIVE``
    TORQUE is GPU-aware but, relying on the bare CUDA runtime, cannot
    share GPUs across jobs: it enqueues jobs on the head node and submits
    one to a compute node only when one of that node's GPUs is free
    (strict serialization — one job per GPU).

``TorqueMode.OBLIVIOUS``
    The GPUs are hidden from TORQUE (the paper's configuration for its
    runtime): the scheduler divides the workload equally between the
    compute nodes — round-robin — and submits immediately; everything
    GPU-related is the node runtime's problem.  On an unbalanced cluster
    this overloads the smaller node, which is exactly what inter-node
    offloading then repairs.

``TorqueMode.GPU_AWARE``
    The paper's second interaction form (§2): "the node-level runtime may
    expose some information to the cluster-level scheduler (e.g.: number
    of GPUs, load level, etc.), so as to guide the cluster-level
    scheduling decisions."  Each job goes to the node whose runtime
    currently reports the lowest load per vGPU.
"""

from __future__ import annotations

import enum
from typing import Dict, Generator, List

from repro.sim import Environment, Store

from repro.cluster.jobs import Job, JobOutcome
from repro.cluster.node import ComputeNode
from repro.core.monitor import node_report

__all__ = ["Torque", "TorqueMode"]


class TorqueMode(enum.Enum):
    NATIVE = "native"        # GPU-aware, serializing (bare CUDA baseline)
    OBLIVIOUS = "oblivious"  # GPUs hidden; equal division among nodes
    GPU_AWARE = "gpu-aware"  # runtimes expose load; least-loaded placement


class Torque:
    """Head-node batch scheduler."""

    def __init__(
        self,
        env: Environment,
        nodes: List[ComputeNode],
        mode: TorqueMode = TorqueMode.OBLIVIOUS,
    ):
        if not nodes:
            raise ValueError("TORQUE needs at least one compute node")
        self.env = env
        self.nodes = nodes
        self.mode = mode
        self.outcomes: List[JobOutcome] = []
        self._rr = 0
        #: NATIVE mode: free GPU slots per node.
        self._free_slots: Dict[str, int] = {n.name: n.gpu_count for n in nodes}
        self._slot_freed: Store = Store(env)

    # ------------------------------------------------------------------
    def run_batch(self, jobs: List[Job]) -> Generator:
        """Submit a batch and wait for every job; returns the outcomes."""
        submitted_at = self.env.now
        if self.mode is TorqueMode.OBLIVIOUS:
            procs = [
                self.env.process(
                    self._run_job(job, self._next_node(), submitted_at),
                    name=f"torque-{job.name}",
                )
                for job in jobs
            ]
            for p in procs:
                yield p
        elif self.mode is TorqueMode.GPU_AWARE:
            procs = []
            for job in jobs:
                node = self._least_loaded_node()
                procs.append(
                    self.env.process(
                        self._run_job(job, node, submitted_at),
                        name=f"torque-{job.name}",
                    )
                )
                # Let the runtime register the new connection before the
                # next placement decision reads its load.
                yield self.env.timeout(1e-3)
            for p in procs:
                yield p
        else:
            yield from self._run_native(jobs, submitted_at)
        self.outcomes = [job.outcome for job in jobs]
        return self.outcomes

    # ------------------------------------------------------------------
    def _next_node(self) -> ComputeNode:
        node = self.nodes[self._rr % len(self.nodes)]
        self._rr += 1
        return node

    def _least_loaded_node(self) -> ComputeNode:
        """GPU-aware placement from the runtimes' exposed load metric.

        Placement goes through :func:`node_report` — the same snapshot a
        real head node would poll — rather than reaching into runtime
        internals, so anything the report exposes (queue depths, the
        ``metrics`` sub-dict) is available to richer policies.
        """
        def load(node: ComputeNode) -> float:
            if node.runtime is None:
                return float("inf")
            return node_report(node.runtime)["load_per_vgpu"]

        return min(self.nodes, key=load)

    def _run_job(self, job: Job, node: ComputeNode, submitted_at: float) -> Generator:
        yield from job.execute(node, submitted_at)

    def _run_native(self, jobs: List[Job], submitted_at: float) -> Generator:
        """GPU-aware serialization: hold jobs at the head node until a
        GPU frees on some compute node."""
        pending = list(jobs)
        running = []
        while pending:
            node = self._node_with_free_slot()
            if node is None:
                yield self._slot_freed.get()  # wait for any completion
                continue
            job = pending.pop(0)
            self._free_slots[node.name] -= 1
            running.append(
                self.env.process(
                    self._run_native_job(job, node, submitted_at),
                    name=f"torque-{job.name}",
                )
            )
        for p in running:
            yield p

    def _run_native_job(self, job: Job, node: ComputeNode, submitted_at: float) -> Generator:
        try:
            yield from job.execute(node, submitted_at)
        finally:
            self._free_slots[node.name] += 1
            self._slot_freed.put(node.name)

    def _node_with_free_slot(self):
        for node in self.nodes:
            if self._free_slots[node.name] > 0:
                return node
        return None

    # ------------------------------------------------------------------
    # metrics (the paper's "Total" and "Avg" bars)
    # ------------------------------------------------------------------
    @property
    def total_execution_time(self) -> float:
        """First submission → last completion."""
        if not self.outcomes:
            return 0.0
        start = min(o.submitted_at for o in self.outcomes)
        end = max(o.finished_at for o in self.outcomes if o.finished_at is not None)
        return end - start

    @property
    def average_turnaround(self) -> float:
        ts = [o.turnaround for o in self.outcomes if o.turnaround is not None]
        return sum(ts) / len(ts) if ts else 0.0
