"""Jobs: units of cluster-level scheduling.

A :class:`Job` wraps an application body — a callable producing the
simulation generator that actually runs the application on a node — with
submission/completion bookkeeping.  Bodies are supplied by
:mod:`repro.workloads` (they drive either the bare CUDA runtime API or
the paper's frontend, so the same job runs under every configuration the
evaluation compares).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Generator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import ComputeNode

__all__ = ["Job", "JobOutcome"]

_job_seq = itertools.count(1)


@dataclasses.dataclass
class JobOutcome:
    """What the experiment harness records per job."""

    name: str
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[BaseException] = None

    @property
    def turnaround(self) -> Optional[float]:
        """Submission → completion (the per-job metric averaged in the
        paper's 'Avg' bars)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def execution_time(self) -> Optional[float]:
        if self.finished_at is None or self.started_at is None:
            return None
        return self.finished_at - self.started_at

    @property
    def ok(self) -> bool:
        return self.finished_at is not None and self.error is None


class Job:
    """One batch job."""

    def __init__(
        self,
        name: str,
        body: Callable[["ComputeNode"], Generator],
        tag: Optional[str] = None,
    ):
        self.job_id = next(_job_seq)
        self.name = name
        self.body = body
        #: Workload label (e.g. "MM-L") for per-class reporting.
        self.tag = tag or name
        self.outcome: Optional[JobOutcome] = None

    def execute(self, node: "ComputeNode", submitted_at: float) -> Generator:
        """Run the job on ``node``; records the outcome."""
        outcome = JobOutcome(name=self.name, submitted_at=submitted_at)
        self.outcome = outcome
        outcome.started_at = node.env.now
        try:
            yield from self.body(node)
        except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
            outcome.error = exc
            raise
        finally:
            outcome.finished_at = node.env.now

    def __repr__(self) -> str:
        return f"<Job #{self.job_id} {self.name!r} ({self.tag})>"
