"""VM-based cloud deployment (paper Figure 2a, §2).

The paper's first deployment scenario: a VM-based cloud computing
service (Eucalyptus-like).  Virtual machines run on the compute nodes;
CUDA applications inside the guests link the intercept library, which
reaches the host-side runtime daemon over *VM sockets* (the gVirtuS
virtualized transport) instead of afunix — same protocol, higher
per-message cost.

Components:

- :class:`VMSpec` / :class:`VirtualMachine` — guest descriptions and
  instances; each VM has its own vCPUs (backed by host cores) and hosts
  guest applications;
- :class:`CloudManager` — the cluster-level scheduler of Figure 2a: it
  places VMs on nodes by first-fit over vCPU capacity, oblivious to the
  GPUs (which only the node runtimes manage).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Generator, List, Optional

from repro.net.channel import LinkSpec
from repro.sim import Environment, Resource

from repro.cluster.node import ComputeNode
from repro.core.frontend import Frontend
from repro.core.monitor import node_report

__all__ = ["VMSpec", "VirtualMachine", "CloudManager", "VM_SOCKET_LINK"]

#: gVirtuS "proprietary VM-sockets": the guest/host hop costs noticeably
#: more per message than afunix and sustains less bandwidth.
VM_SOCKET_LINK = LinkSpec(
    name="vmsocket", latency_s=10e-6, bandwidth_bps=2.0e9, per_message_overhead_s=25e-6
)

_vm_seq = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class VMSpec:
    """Requested guest shape."""

    name: str
    vcpus: int = 2
    memory_bytes: int = 4 * 1024**3

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("a VM needs at least one vCPU")


class VirtualMachine:
    """A booted guest on one compute node."""

    def __init__(self, env: Environment, spec: VMSpec, node: ComputeNode):
        self.env = env
        self.spec = spec
        self.node = node
        self.vm_id = next(_vm_seq)
        #: Guest-visible CPUs.  Each vCPU burn also occupies a host core,
        #: so guests contend both among their own threads and with other
        #: VMs on the node.
        self.vcpus = Resource(env, capacity=spec.vcpus)
        self.running = False

    def boot(self) -> Generator:
        """Guest boot (costs simulated time, as VM provisioning does)."""
        yield self.env.timeout(2.0)
        self.running = True

    def shutdown(self) -> None:
        self.running = False

    # ------------------------------------------------------------------
    def cpu_phase(self, seconds: float) -> Generator:
        """A guest CPU phase: one vCPU + one host core for ``seconds``."""
        if seconds <= 0:
            return
        if not self.running:
            raise RuntimeError(f"{self.spec.name} is not running")
        with self.vcpus.request() as vreq:
            yield vreq
            yield from self.node.cpu_phase(seconds)

    def frontend(
        self,
        name: str,
        estimated_gpu_seconds: Optional[float] = None,
        application_id: Optional[str] = None,
    ) -> Frontend:
        """An intercept-library endpoint for a guest application thread.

        Uses the VM-socket link to the *host* runtime daemon — the guest
        never sees the GPUs directly (Figure 2a).
        """
        if not self.running:
            raise RuntimeError(f"{self.spec.name} is not running")
        if self.node.runtime is None:
            raise RuntimeError(f"{self.node.name} runs no runtime daemon")
        return Frontend(
            self.env,
            self.node.runtime.listener,
            link=VM_SOCKET_LINK,
            name=f"{self.spec.name}/{name}",
            estimated_gpu_seconds=estimated_gpu_seconds,
            application_id=application_id,
        )

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return f"<VirtualMachine {self.spec.name} on {self.node.name} {state}>"


class CloudManager:
    """Eucalyptus-like VM placement over the compute nodes."""

    def __init__(self, env: Environment, nodes: List[ComputeNode]):
        if not nodes:
            raise ValueError("the cloud needs at least one node")
        self.env = env
        self.nodes = nodes
        self.vms: List[VirtualMachine] = []
        #: vCPUs already promised per node (no overcommit by default).
        self._committed = {node.name: 0 for node in nodes}
        self.overcommit_factor = 1.0

    def capacity(self, node: ComputeNode) -> int:
        return int(node.cpu.capacity * self.overcommit_factor)

    def launch_vm(self, spec: VMSpec) -> Generator:
        """Place and boot a VM; returns the instance.

        Raises :class:`RuntimeError` when no node has enough free vCPUs
        (the "rent more hardware" point of the paper's hybrid-cloud
        discussion).
        """
        node = self._place(spec)
        if node is None:
            raise RuntimeError(
                f"no capacity for {spec.name} ({spec.vcpus} vCPUs)"
            )
        self._committed[node.name] += spec.vcpus
        vm = VirtualMachine(self.env, spec, node)
        self.vms.append(vm)
        yield from vm.boot()
        return vm

    def terminate_vm(self, vm: VirtualMachine) -> None:
        vm.shutdown()
        self.vms.remove(vm)
        self._committed[vm.node.name] -= vm.spec.vcpus

    def _place(self, spec: VMSpec) -> Optional[ComputeNode]:
        for node in self.nodes:  # first-fit
            if self._committed[node.name] + spec.vcpus <= self.capacity(node):
                return node
        return None

    def vms_on(self, node: ComputeNode) -> List[VirtualMachine]:
        return [vm for vm in self.vms if vm.node is node]

    def node_reports(self) -> Dict[str, Dict[str, object]]:
        """Monitoring view over the cloud (the Figure 2a dashboard): each
        node's :func:`node_report` snapshot — including its ``metrics``
        sub-dict — augmented with VM occupancy."""
        reports: Dict[str, Dict[str, object]] = {}
        for node in self.nodes:
            if node.runtime is not None:
                report = node_report(node.runtime)
            else:
                report = {"node": node.name, "gpus": node.gpu_count}
            report["vms"] = len(self.vms_on(node))
            report["vcpus_committed"] = self._committed[node.name]
            reports[node.name] = report
        return reports
