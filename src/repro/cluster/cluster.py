"""Cluster assembly: nodes + runtime peering.

Builds the multi-node topologies of §5.4: a head node (where TORQUE runs
and jobs are submitted) and compute nodes whose runtimes may be peered
for inter-node offloading over the cluster interconnect.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.net.channel import LinkSpec, TCP_10GBE_LINK
from repro.sim import Environment
from repro.simcuda.device import GPUSpec

from repro.cluster.node import ComputeNode
from repro.core.config import RuntimeConfig

__all__ = ["Cluster"]


class Cluster:
    """A set of compute nodes sharing an interconnect."""

    def __init__(self, env: Environment, interconnect: LinkSpec = TCP_10GBE_LINK):
        self.env = env
        self.interconnect = interconnect
        self.nodes: List[ComputeNode] = []

    def add_node(
        self,
        name: str,
        gpu_specs: List[GPUSpec],
        cpu_threads: int = 16,
        runtime_config: Optional[RuntimeConfig] = None,
    ) -> ComputeNode:
        node = ComputeNode(
            self.env,
            name,
            gpu_specs,
            cpu_threads=cpu_threads,
            runtime_config=runtime_config,
        )
        self.nodes.append(node)
        return node

    def peer_runtimes(self) -> None:
        """Fully mesh the node runtimes for inter-node offloading."""
        with_runtime = [n for n in self.nodes if n.runtime is not None]
        for a in with_runtime:
            for b in with_runtime:
                if a is not b:
                    a.runtime.offloader.add_peer(b.runtime, link=self.interconnect)

    def start(self) -> Generator:
        """Boot every node."""
        for node in self.nodes:
            yield from node.start()

    @property
    def total_gpus(self) -> int:
        return sum(n.gpu_count for n in self.nodes)

    def __repr__(self) -> str:
        return f"<Cluster nodes={len(self.nodes)} gpus={self.total_gpus}>"
