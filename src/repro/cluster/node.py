"""Compute nodes.

A node bundles CPUs (a ``Resource`` with one slot per hardware thread),
GPUs (a :class:`~repro.simcuda.driver.CudaDriver`), and optionally the
paper's runtime daemon.  The testbed nodes (§5.1) have dual quad-core
Xeon E5620s (16 hardware threads) and 48 GB of memory.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim import Environment, Resource
from repro.simcuda.device import GPUSpec
from repro.simcuda.driver import CudaDriver

from repro.core.config import RuntimeConfig
from repro.core.runtime import NodeRuntime

__all__ = ["ComputeNode"]


class ComputeNode:
    """One cluster node: CPUs + GPUs (+ optionally the runtime daemon)."""

    def __init__(
        self,
        env: Environment,
        name: str,
        gpu_specs: List[GPUSpec],
        cpu_threads: int = 16,
        runtime_config: Optional[RuntimeConfig] = None,
    ):
        self.env = env
        self.name = name
        self.cpu = Resource(env, capacity=cpu_threads)
        self.driver = CudaDriver(env, gpu_specs)
        self.runtime: Optional[NodeRuntime] = None
        if runtime_config is not None:
            self.runtime = NodeRuntime(env, self.driver, runtime_config, name=f"{name}-rt")

    def start(self) -> Generator:
        """Boot the node (starts the runtime daemon when configured)."""
        if self.runtime is not None:
            yield from self.runtime.start()

    # ------------------------------------------------------------------
    def cpu_phase(self, seconds: float) -> Generator:
        """Run a CPU phase: occupy one hardware thread for ``seconds``.

        Under multi-tenancy the threads are a real resource — queueing
        here models CPU contention among concurrent jobs.
        """
        if seconds <= 0:
            return
        with self.cpu.request() as req:
            yield req
            yield self.env.timeout(seconds)

    @property
    def gpu_count(self) -> int:
        return self.driver.device_count()

    def __repr__(self) -> str:
        return f"<ComputeNode {self.name} gpus={self.gpu_count} cpus={self.cpu.capacity}>"
