"""Cluster substrate: compute nodes, jobs, and a TORQUE-like batch
scheduler (paper §2, §5.4).

The cluster-level scheduler performs *coarse-grained* scheduling (jobs →
nodes); the node-level runtime performs *fine-grained* scheduling
(library calls → GPUs).  Two integration modes from the paper:

- **native**: TORQUE is GPU-aware and serializes — a job is submitted to
  a compute node only when one of its GPUs is free (the bare-CUDA
  baseline of §5.4);
- **oblivious**: the GPUs are hidden from TORQUE, which divides the
  workload equally among the nodes and submits immediately; GPU sharing
  and load balancing happen inside the paper's runtime.
"""

from repro.cluster.node import ComputeNode
from repro.cluster.jobs import Job, JobOutcome
from repro.cluster.cluster import Cluster
from repro.cluster.torque import Torque, TorqueMode
from repro.cluster.vmcloud import CloudManager, VirtualMachine, VMSpec

__all__ = [
    "CloudManager",
    "Cluster",
    "ComputeNode",
    "Job",
    "JobOutcome",
    "Torque",
    "TorqueMode",
    "VirtualMachine",
    "VMSpec",
]
