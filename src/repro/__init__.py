"""repro — reproduction of Becchi et al., "A Virtual Memory Based Runtime
to Support Multi-tenancy in Clusters with GPUs" (HPDC 2012).

Layout
------
- :mod:`repro.sim`       discrete-event simulation kernel
- :mod:`repro.simcuda`   simulated CUDA driver/runtime + GPU hardware models
- :mod:`repro.net`       simulated sockets / channels
- :mod:`repro.cluster`   nodes, cluster, TORQUE-like batch scheduler
- :mod:`repro.core`      the paper's runtime (dispatcher, vGPUs, memory
  manager with GPU virtual memory, swap, dynamic binding, fault tolerance,
  offloading)
- :mod:`repro.workloads` Table 2 benchmark application models
- :mod:`repro.experiments` drivers reproducing every figure of §5
"""

__version__ = "0.1.0"
