"""Request/response framing over sockets.

The frontend library marshals each intercepted CUDA call into a
:class:`Request` and waits for the matching :class:`Response` — the API
remoting pattern of gVirtuS/vCUDA/rCUDA that the paper builds on.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.net.socket import Socket

__all__ = [
    "Request",
    "Response",
    "BatchRequest",
    "BatchResponse",
    "RpcClient",
    "RpcServer",
]

_request_ids = itertools.count(1)
_trace_ids = itertools.count(1)

#: Baseline marshalled size of a call that carries no bulk data.
HEADER_BYTES = 64


@dataclasses.dataclass(slots=True)
class Request:
    """One marshalled call.

    ``trace_id``/``span_id``/``sent_at`` are the causal-tracing header:
    the client stamps the connection's trace id, the call's span id (its
    request id) and the send timestamp, so the server can attribute the
    request's wire time and group all spans of one connection.  They are
    metadata about the call, not part of it — ``wire_bytes`` is
    unchanged and nothing on the serving path depends on them.
    """

    method: str
    args: Dict[str, Any] = dataclasses.field(default_factory=dict)
    payload_bytes: int = 0
    request_id: int = dataclasses.field(default_factory=lambda: next(_request_ids))
    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    sent_at: Optional[float] = None

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes


@dataclasses.dataclass(slots=True)
class Response:
    """The return code / value of a call."""

    request_id: int
    value: Any = None
    error: Optional[BaseException] = None
    payload_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value


@dataclasses.dataclass(slots=True)
class BatchRequest:
    """N journaled calls shipped as one wire message.

    Control-plane batching: the frontend accumulates asynchronous calls
    and sends them as a single frame, paying the link's per-message
    overhead and the round-trip latency once instead of N times.  Each
    inner :class:`Request` keeps its own ids and its *enqueue* timestamp
    in ``sent_at`` (so the server can attribute client-side batch-queue
    time per call); ``sent_at`` on the frame itself is when the batch
    actually hit the wire.
    """

    calls: List[Request]
    request_id: int = dataclasses.field(default_factory=lambda: next(_request_ids))
    trace_id: Optional[int] = None
    sent_at: Optional[float] = None

    @property
    def wire_bytes(self) -> int:
        # One frame header plus every call's marshalled form (the inner
        # headers still ship — only the per-message cost is amortized).
        return HEADER_BYTES + sum(r.wire_bytes for r in self.calls)


@dataclasses.dataclass(slots=True)
class BatchResponse:
    """Per-call results of a :class:`BatchRequest`, in submission order.

    Every inner call gets a :class:`Response` — value, or its own typed
    error (calls after a mid-batch failure carry ``BATCH_ABORTED``).
    """

    request_id: int
    responses: List[Response]

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + sum(r.wire_bytes for r in self.responses)


class RpcClient:
    """Synchronous call interface over a socket (one call in flight)."""

    def __init__(self, socket: Socket):
        self.socket = socket
        #: Connection-scoped causal trace id, stamped on every request.
        self.trace_id = next(_trace_ids)

    def call(
        self, method: str, payload_bytes: int = 0, response_bytes: int = 0, **args: Any
    ) -> Generator:
        """Issue a call and wait for its response; returns the value,
        re-raising any server-side exception."""
        req = Request(method=method, args=args, payload_bytes=payload_bytes)
        req.trace_id = self.trace_id
        req.span_id = req.request_id
        req.sent_at = self.socket.env.now
        yield from self.socket.send(req, nbytes=req.wire_bytes)
        resp = yield self.socket.recv()
        if not isinstance(resp, Response) or resp.request_id != req.request_id:
            raise ProtocolError(
                f"out-of-order response: expected #{req.request_id}, got {resp!r}"
            )
        return resp.unwrap()

    def call_batch(self, calls: List[Request]) -> Generator:
        """Ship ``calls`` as one :class:`BatchRequest`; returns the list
        of per-call :class:`Response` objects (errors NOT re-raised —
        the caller owns deferred-error semantics)."""
        batch = BatchRequest(calls=list(calls))
        batch.trace_id = self.trace_id
        batch.sent_at = self.socket.env.now
        yield from self.socket.send(batch, nbytes=batch.wire_bytes)
        resp = yield self.socket.recv()
        if not isinstance(resp, BatchResponse) or resp.request_id != batch.request_id:
            raise ProtocolError(
                f"out-of-order batch response: expected #{batch.request_id}, got {resp!r}"
            )
        if len(resp.responses) != len(batch.calls):
            raise ProtocolError(
                f"batch #{batch.request_id}: {len(batch.calls)} calls, "
                f"{len(resp.responses)} responses"
            )
        return resp.responses


class ProtocolError(Exception):
    """Framing violated (mismatched response ids)."""


class RpcServer:
    """Serves calls on one socket via a handler coroutine-function.

    ``handler(request)`` must be a generator returning the response value;
    exceptions it raises are marshalled back to the client.
    """

    def __init__(self, socket: Socket, handler: Callable[[Request], Generator]):
        self.socket = socket
        self.handler = handler
        self.calls_served = 0

    def serve(self) -> Generator:
        """Serve until the socket closes (run as an env.process)."""
        while True:
            req = yield self.socket.recv()
            if req is None:  # sentinel: client hung up
                return
            value, error, resp_bytes = None, None, 0
            try:
                value = yield from self.handler(req)
                if isinstance(value, tuple) and len(value) == 2 and value[0] == "__bytes__":
                    resp_bytes, value = value[1], None
            except BaseException as exc:  # noqa: BLE001 - marshal any error
                error = exc
            resp = Response(
                request_id=req.request_id, value=value, error=error, payload_bytes=resp_bytes
            )
            self.calls_served += 1
            yield from self.socket.send(resp, nbytes=resp.wire_bytes)
