"""Request/response framing over sockets.

The frontend library marshals each intercepted CUDA call into a
:class:`Request` and waits for the matching :class:`Response` — the API
remoting pattern of gVirtuS/vCUDA/rCUDA that the paper builds on.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, Generator, Optional

from repro.net.socket import Socket

__all__ = ["Request", "Response", "RpcClient", "RpcServer"]

_request_ids = itertools.count(1)
_trace_ids = itertools.count(1)

#: Baseline marshalled size of a call that carries no bulk data.
HEADER_BYTES = 64


@dataclasses.dataclass(slots=True)
class Request:
    """One marshalled call.

    ``trace_id``/``span_id``/``sent_at`` are the causal-tracing header:
    the client stamps the connection's trace id, the call's span id (its
    request id) and the send timestamp, so the server can attribute the
    request's wire time and group all spans of one connection.  They are
    metadata about the call, not part of it — ``wire_bytes`` is
    unchanged and nothing on the serving path depends on them.
    """

    method: str
    args: Dict[str, Any] = dataclasses.field(default_factory=dict)
    payload_bytes: int = 0
    request_id: int = dataclasses.field(default_factory=lambda: next(_request_ids))
    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    sent_at: Optional[float] = None

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes


@dataclasses.dataclass(slots=True)
class Response:
    """The return code / value of a call."""

    request_id: int
    value: Any = None
    error: Optional[BaseException] = None
    payload_bytes: int = 0

    @property
    def wire_bytes(self) -> int:
        return HEADER_BYTES + self.payload_bytes

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value


class RpcClient:
    """Synchronous call interface over a socket (one call in flight)."""

    def __init__(self, socket: Socket):
        self.socket = socket
        #: Connection-scoped causal trace id, stamped on every request.
        self.trace_id = next(_trace_ids)

    def call(
        self, method: str, payload_bytes: int = 0, response_bytes: int = 0, **args: Any
    ) -> Generator:
        """Issue a call and wait for its response; returns the value,
        re-raising any server-side exception."""
        req = Request(method=method, args=args, payload_bytes=payload_bytes)
        req.trace_id = self.trace_id
        req.span_id = req.request_id
        req.sent_at = self.socket.env.now
        yield from self.socket.send(req, nbytes=req.wire_bytes)
        resp = yield self.socket.recv()
        if not isinstance(resp, Response) or resp.request_id != req.request_id:
            raise ProtocolError(
                f"out-of-order response: expected #{req.request_id}, got {resp!r}"
            )
        return resp.unwrap()


class ProtocolError(Exception):
    """Framing violated (mismatched response ids)."""


class RpcServer:
    """Serves calls on one socket via a handler coroutine-function.

    ``handler(request)`` must be a generator returning the response value;
    exceptions it raises are marshalled back to the client.
    """

    def __init__(self, socket: Socket, handler: Callable[[Request], Generator]):
        self.socket = socket
        self.handler = handler
        self.calls_served = 0

    def serve(self) -> Generator:
        """Serve until the socket closes (run as an env.process)."""
        while True:
            req = yield self.socket.recv()
            if req is None:  # sentinel: client hung up
                return
            value, error, resp_bytes = None, None, 0
            try:
                value = yield from self.handler(req)
                if isinstance(value, tuple) and len(value) == 2 and value[0] == "__bytes__":
                    resp_bytes, value = value[1], None
            except BaseException as exc:  # noqa: BLE001 - marshal any error
                error = exc
            resp = Response(
                request_id=req.request_id, value=value, error=error, payload_bytes=resp_bytes
            )
            self.calls_served += 1
            yield from self.socket.send(resp, nbytes=resp.wire_bytes)
