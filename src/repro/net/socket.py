"""Bidirectional sockets over a pair of channels.

``connect(env, listener, link)`` creates a socket pair: the client end is
returned to the caller; the server end is delivered to whoever accepts on
the :class:`Listener`.  This mirrors the gVirtuS connection setup: each
application thread opens a separate connection to the runtime daemon
(paper §4.2).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from repro.sim import Environment, Store
from repro.net.channel import Channel, LinkSpec, AFUNIX_LINK

__all__ = ["Socket", "Listener", "connect"]

_socket_ids = itertools.count(1)


class Socket:
    """One endpoint of an established connection."""

    def __init__(self, env: Environment, tx: Channel, rx: Channel, peer_name: str = ""):
        self.env = env
        self.socket_id = next(_socket_ids)
        self._tx = tx
        self._rx = rx
        self.peer_name = peer_name
        self.closed = False

    def send(self, payload: Any, nbytes: int = 0) -> Generator:
        """Transmit; completes when the message is on the wire.

        Returns the channel's generator directly instead of delegating
        through an extra ``yield from`` frame — the per-call overhead on
        the hottest path in the simulator."""
        if self.closed:
            raise ConnectionError("socket closed")
        return self._tx.send(payload, nbytes)

    def recv(self):
        """Event for the next incoming message."""
        return self._rx.recv()

    @property
    def pending(self) -> int:
        return self._rx.pending

    @property
    def bytes_sent(self) -> int:
        return self._tx.bytes_sent

    def attach_observer(self, fn) -> None:
        """Observability hook: ``fn(direction, action, nbytes, pending)``
        is called for activity on both underlying channels, with
        direction "rx"/"tx" relative to this endpoint."""
        self._rx.on_activity = lambda action, n, pending: fn("rx", action, n, pending)
        self._tx.on_activity = lambda action, n, pending: fn("tx", action, n, pending)

    def close(self) -> None:
        self.closed = True
        self._tx.close()

    def __repr__(self) -> str:
        return f"<Socket #{self.socket_id} peer={self.peer_name!r}>"


class Listener:
    """A listening endpoint; ``accept()`` yields server-side sockets.

    ``backlog_limit`` caps un-accepted connections, like the ``backlog``
    argument of ``listen(2)``: when the limit is reached further
    ``connect()`` attempts fail fast with :class:`ConnectionRefusedError`
    instead of queueing unboundedly.  ``None`` (the default) keeps the
    historical unbounded behavior.
    """

    def __init__(self, env: Environment, name: str = "", backlog_limit: Optional[int] = None):
        if backlog_limit is not None and backlog_limit < 1:
            raise ValueError(f"backlog_limit must be >= 1, got {backlog_limit}")
        self.env = env
        self.name = name
        self.backlog_limit = backlog_limit
        self._backlog: Store = Store(env)
        #: Connections refused because the backlog was full.
        self.refused = 0

    def accept(self):
        """Event for the next incoming connection's server-side socket."""
        return self._backlog.get()

    @property
    def backlog(self) -> int:
        return len(self._backlog.items)

    def _enqueue(self, sock: Socket) -> None:
        if self.backlog_limit is not None and self.backlog >= self.backlog_limit:
            self.refused += 1
            raise ConnectionRefusedError(
                f"{self.name or 'listener'}: accept backlog full "
                f"({self.backlog}/{self.backlog_limit})"
            )
        self._backlog.put(sock)


def connect(
    env: Environment,
    listener: Listener,
    link: Optional[LinkSpec] = None,
    client_name: str = "",
) -> Socket:
    """Establish a connection; returns the client socket synchronously.

    Connection setup cost is one link round trip, charged to the first
    message instead of modelled separately (negligible at the call rates
    the experiments use).
    """
    link = link or AFUNIX_LINK
    c2s = Channel(env, link)
    s2c = Channel(env, link)
    client = Socket(env, tx=c2s, rx=s2c, peer_name=listener.name)
    server = Socket(env, tx=s2c, rx=c2s, peer_name=client_name)
    listener._enqueue(server)
    return client
