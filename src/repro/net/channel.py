"""Unidirectional, in-order message channels with latency and bandwidth.

A :class:`Channel` delivers messages in FIFO order.  Each message of
``nbytes`` occupies the link for ``nbytes/bandwidth`` seconds (store-and-
forward) and arrives ``latency`` seconds after transmission completes.
Successive messages pipeline: transmission serializes, propagation
overlaps — the standard first-order model of a socket over a link.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Generator

from repro.sim import Environment, Event, Store, Timeout, Waiter

__all__ = ["LinkSpec", "Channel", "AFUNIX_LINK", "TCP_GBE_LINK", "TCP_10GBE_LINK"]


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """Link parameters.

    Attributes
    ----------
    name:
        Human-readable label.
    latency_s:
        One-way propagation delay.
    bandwidth_bps:
        Bytes per second the link sustains.
    per_message_overhead_s:
        Fixed software cost per message (syscalls, marshalling).
    """

    name: str
    latency_s: float
    bandwidth_bps: float
    per_message_overhead_s: float = 0.0

    def transmit_seconds(self, nbytes: int) -> float:
        """Time the sender occupies the link for one message."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        return self.per_message_overhead_s + nbytes / self.bandwidth_bps


#: Same-host afunix socket (gVirtuS non-virtualized path): sub-µs latency,
#: memory-bandwidth-ish throughput, but a real per-call overhead — this is
#: the dominant component of the runtime's interception cost.
AFUNIX_LINK = LinkSpec(
    name="afunix", latency_s=2e-6, bandwidth_bps=4e9, per_message_overhead_s=8e-6
)

#: Gigabit Ethernet TCP (conservative inter-node path).
TCP_GBE_LINK = LinkSpec(
    name="tcp-1gbe", latency_s=100e-6, bandwidth_bps=0.110e9, per_message_overhead_s=20e-6
)

#: 10 GbE TCP (the HPC-cluster interconnect we assume for offloading).
TCP_10GBE_LINK = LinkSpec(
    name="tcp-10gbe", latency_s=50e-6, bandwidth_bps=1.1e9, per_message_overhead_s=15e-6
)


class _Delivery(Timeout):
    """Macro-mode message propagation: ONE scheduled event.

    Replaces the per-message ``_deliver`` process (an Initialize event, a
    latency timeout, a Process-completion event and a StorePut event) with
    a single timeout carrying the payload, whose callback hands the
    message straight to the inbox's first live getter — or queues it.
    Fires at exactly the timestamp the process version delivered at.
    """

    __slots__ = ("_channel", "_payload")

    def __init__(self, channel: "Channel", payload: Any):
        super().__init__(channel.env, channel.link.latency_s)
        self._channel = channel
        self._payload = payload
        self.callbacks.append(_deliver_payload)


def _deliver_payload(event: "_Delivery") -> None:
    channel = event._channel
    env = channel.env
    inbox = channel._inbox
    getters = inbox._getters
    while getters:
        getter = getters.popleft()
        if getter._cancelled:  # purged lazily, like Store._settle
            continue
        if env.peek() > env._now:
            # Nothing else is scheduled at this instant, so the stock
            # grant event would be the very next pop: resume the receiver
            # inside this callback instead of scheduling its wake-up —
            # same timestamp, one heap event fewer per message.
            getter._ok = True
            getter._value = event._payload
            callbacks, getter.callbacks = getter.callbacks, None
            for callback in callbacks:
                callback(getter)
        else:
            # Same-tick company (e.g. an URGENT process start already in
            # the heap): preserve stock ordering via a real grant event.
            getter.succeed(event._payload)
        break
    else:
        inbox.items.append(event._payload)
    if channel.on_activity is not None:
        channel.on_activity("deliver", 0, channel.pending)


class Channel:
    """One direction of a socket: FIFO delivery with link timing."""

    def __init__(self, env: Environment, link: LinkSpec):
        self.env = env
        self.link = link
        self._inbox: Store = Store(env)
        self._tx_free = env.event()
        self._tx_free.succeed()
        #: Macro-mode transmitter state: a plain busy flag plus a FIFO of
        #: waiting senders (woken one at a time) instead of the broadcast
        #: ``_tx_free`` event — no heap event at all when nobody waits.
        self._tx_busy = False
        self._tx_waiters: deque = deque()
        self.messages_sent = 0
        self.bytes_sent = 0
        self.closed = False
        #: Optional observability hook: ``fn(action, nbytes, pending)``
        #: with action "send" (transmission complete) or "deliver"
        #: (message reached the inbox).  Costs nothing while unset.
        self.on_activity = None

    def send(self, payload: Any, nbytes: int = 0) -> Generator:
        """Transmit ``payload``; completes when the link is released.

        The payload arrives at the receiver ``latency_s`` after the
        transmission finishes.
        """
        if self.closed:
            raise ConnectionError(f"channel over {self.link.name} is closed")
        env = self.env
        if env.macro_step:
            # Macro path: same link timing, 3 heap events per message
            # instead of 7 — the transmit timeout, the _Delivery event,
            # and the receiver's wake-up; transmitter hand-off is a flag
            # plus a FIFO (one wake per release, only when contended).
            while self._tx_busy:
                waiter = Waiter(env)
                waiter._on_cancel = self._tx_waiters.remove
                self._tx_waiters.append(waiter)
                yield waiter
            self._tx_busy = True
            try:
                yield env.timeout(self.link.transmit_seconds(nbytes))
                self.messages_sent += 1
                self.bytes_sent += nbytes
                if self.on_activity is not None:
                    self.on_activity("send", nbytes, self.pending)
                _Delivery(self, payload)
            finally:
                self._tx_busy = False
                waiters = self._tx_waiters
                while waiters:
                    nxt = waiters.popleft()
                    if not nxt._cancelled:
                        nxt.succeed()
                        break
            return
        # Serialize on the transmitter (``callbacks is None`` is the
        # processed check, minus the property call — this is the
        # simulator's single hottest wait loop).
        while self._tx_free.callbacks is not None:
            yield self._tx_free
        self._tx_free = Event(env)
        try:
            yield env.timeout(self.link.transmit_seconds(nbytes))
            self.messages_sent += 1
            self.bytes_sent += nbytes
            if self.on_activity is not None:
                self.on_activity("send", nbytes, self.pending)
            env.process(self._deliver(payload))
        finally:
            self._tx_free.succeed()

    def _deliver(self, payload: Any) -> Generator:
        yield self.env.timeout(self.link.latency_s)
        self._inbox.put(payload)
        if self.on_activity is not None:
            self.on_activity("deliver", 0, self.pending)

    def recv(self):
        """Event yielding the next message (blocks while empty)."""
        return self._inbox.get()

    def try_recv(self) -> Any:
        """Non-blocking receive; returns None when empty."""
        if self._inbox.items:
            ev = self._inbox.get()
            return ev.value
        return None

    @property
    def pending(self) -> int:
        """Messages delivered but not yet received."""
        return len(self._inbox.items)

    def close(self) -> None:
        self.closed = True
