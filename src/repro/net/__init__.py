"""Simulated communication substrate.

The paper's prototype uses the gVirtuS socket framework: afunix sockets
between application and runtime on the same host (or VM sockets in a
virtualized deployment), and TCP sockets between nodes for inter-node
offloading (§3, §4.7).  This package models both as latency+bandwidth
channels on the simulation clock.
"""

from repro.net.channel import Channel, LinkSpec, AFUNIX_LINK, TCP_GBE_LINK, TCP_10GBE_LINK
from repro.net.socket import Listener, Socket, connect
from repro.net.rpc import RpcClient, RpcServer, Request, Response

__all__ = [
    "AFUNIX_LINK",
    "Channel",
    "connect",
    "LinkSpec",
    "Listener",
    "Request",
    "Response",
    "RpcClient",
    "RpcServer",
    "RpcServer",
    "Socket",
    "TCP_10GBE_LINK",
    "TCP_GBE_LINK",
]
