"""Fat binaries and symbol registration.

Before a CUDA application issues any user-visible call, the host-side
startup code registers the device machine code and symbols with the
runtime: ``__cudaRegisterFatBinary``, ``__cudaRegisterFunction``,
``__cudaRegisterVar``, ``__cudaRegisterTexture`` …  The paper's dispatcher
exploits the fact that these internal calls "are always issued to the
runtime prior to CUDA contexts' creation on the GPU" and can therefore be
serviced before application-to-GPU binding (§4.3).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional

from repro.simcuda.kernels import KernelDescriptor

__all__ = ["FatBinary"]

_fatbin_handles = itertools.count(1)


@dataclasses.dataclass
class FatBinary:
    """The device-code image of one application binary."""

    handle: int = dataclasses.field(default_factory=lambda: next(_fatbin_handles))
    functions: Dict[str, KernelDescriptor] = dataclasses.field(default_factory=dict)
    variables: List[str] = dataclasses.field(default_factory=list)
    textures: List[str] = dataclasses.field(default_factory=list)
    shared_vars: List[str] = dataclasses.field(default_factory=list)
    #: Raw PTX image, when the binary embeds one.  The runtime parses it
    #: at registration time to detect dynamic allocation / pointer
    #: nesting (§1) without trusting the application.
    ptx_source: Optional[str] = None

    @classmethod
    def from_ptx(
        cls,
        source: str,
        flops: Optional[Dict[str, float]] = None,
        default_flops: float = 1e9,
    ) -> "FatBinary":
        """Build a fat binary from PTX text, registering one kernel per
        ``.entry`` with flags derived by the PTX analyses.

        ``flops`` maps kernel names to per-launch work (the timing-model
        input a real PTX image does not carry); unmapped kernels get
        ``default_flops``.
        """
        from repro.simcuda.ptx import parse_ptx

        module = parse_ptx(source)
        fatbin = cls(ptx_source=source)
        for name, kernel in module.kernels.items():
            work = (flops or {}).get(name, default_flops)
            fatbin.register_function(kernel.to_descriptor(flops=work))
        return fatbin

    def register_function(self, descriptor: KernelDescriptor) -> None:
        if descriptor.name in self.functions:
            raise ValueError(f"function {descriptor.name!r} already registered")
        self.functions[descriptor.name] = descriptor

    def register_var(self, name: str) -> None:
        self.variables.append(name)

    def register_texture(self, name: str) -> None:
        self.textures.append(name)

    def register_shared_var(self, name: str) -> None:
        self.shared_vars.append(name)

    def lookup(self, name: str) -> KernelDescriptor:
        return self.functions[name]

    @property
    def needs_exclusion_from_sharing(self) -> bool:
        """True if any kernel uses device-side dynamic allocation — such
        applications are served but excluded from sharing/dynamic
        scheduling (§1)."""
        return any(fn.uses_dynamic_alloc for fn in self.functions.values())

    @property
    def has_pointer_nesting(self) -> bool:
        """True if any kernel dereferences nested pointers; these require
        nested-structure registration through the runtime API (§1)."""
        return any(fn.has_pointer_nesting for fn in self.functions.values())
