"""GPU hardware models.

A :class:`GPUSpec` is a static description of a device (the knobs that
drive the timing model); a :class:`GPUDevice` is the live simulation
object: it owns the device-memory allocator, the kernel execution engine
(one kernel at a time, FCFS across contexts — the CUDA 3.x behaviour the
paper describes) and a DMA copy engine, and it can fail and recover.

The three presets are the cards of the paper's testbed (§5.1):

========== ===== ========= ========= ========== =========
card        SMs  cores/SM  clock GHz  memory     role
========== ===== ========= ========= ========== =========
C2050        14        32      1.15      3 GB    fast
C1060        30         8      1.30      4 GB    medium
Quadro2000    4        48      1.25      1 GB    slow
========== ===== ========= ========= ========== =========
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Optional

from typing import Dict

from repro.sim import Container, Environment, Resource
from repro.simcuda.allocator import DeviceAllocator

__all__ = [
    "GPUSpec",
    "GPUDevice",
    "TESLA_C2050",
    "TESLA_C1060",
    "QUADRO_2000",
    "TESLA_T4",
    "TESLA_P100",
    "TESLA_V100",
    "DEVICE_SPECS",
    "device_spec",
]

GIB = 1024**3
MIB = 1024**2


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Tesla C2050"``.
    sm_count, cores_per_sm, clock_ghz:
        Compute configuration; effective throughput is derived from these.
    memory_bytes:
        Device memory capacity.
    pcie_gbps:
        Host↔device bandwidth in GB/s (PCIe 2.0 x16 era: ~5 GB/s).
    efficiency:
        Fraction of peak FLOPs the benchmark kernels sustain.
    max_contexts:
        Hard limit on concurrent CUDA contexts the runtime can support
        (the paper experimentally observed 8 on a C2050).
    context_reservation_bytes:
        Device memory reserved per CUDA context at creation.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    memory_bytes: int
    pcie_gbps: float = 5.0
    efficiency: float = 0.55
    max_contexts: int = 8
    context_reservation_bytes: int = 64 * MIB

    @property
    def core_count(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOPS (2 FLOPs/cycle, fused multiply-add)."""
        return self.core_count * self.clock_ghz * 2.0

    @property
    def effective_gflops(self) -> float:
        """Sustained throughput used by the timing model."""
        return self.peak_gflops * self.efficiency

    def relative_speed(self, other: "GPUSpec") -> float:
        """How many times faster this device is than ``other``."""
        return self.effective_gflops / other.effective_gflops


TESLA_C2050 = GPUSpec(
    name="Tesla C2050",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    memory_bytes=3 * GIB,
)

TESLA_C1060 = GPUSpec(
    name="Tesla C1060",
    sm_count=30,
    cores_per_sm=8,
    clock_ghz=1.30,
    memory_bytes=4 * GIB,
    # The evaluation's benchmarks are largely bandwidth-bound; at the
    # application level a C1060 (102 GB/s) delivers ~85% of an ECC-on
    # C2050 (~120 GB/s effective), far better than its FLOPs ratio.  The
    # higher sustained-efficiency factor encodes that calibration.
    efficiency=0.77,
)

QUADRO_2000 = GPUSpec(
    name="Quadro 2000",
    sm_count=4,
    cores_per_sm=48,
    clock_ghz=1.25,
    memory_bytes=1 * GIB,
)

#: The paper's §7 future work: "we intend to extend our runtime to
#: support other many-core devices, such as the Intel MIC."  The runtime
#: is device-agnostic — any accelerator with separate memory and a
#: library-call interface fits — so a Knights-Corner-era MIC is just
#: another spec: 61 in-order cores with 512-bit (16-lane) vector units.
INTEL_MIC = GPUSpec(
    name="Intel MIC (Knights Corner)",
    sm_count=61,
    cores_per_sm=16,
    clock_ghz=1.1,
    memory_bytes=8 * GIB,
    pcie_gbps=5.0,
    efficiency=0.45,
    max_contexts=16,  # a full Linux on the card: more generous than CUDA
    context_reservation_bytes=32 * MIB,
)

#: Cluster-trace-era datacenter cards (Alibaba ``cluster-trace-gpu-v2020``
#: heterogeneity: T4 inference boxes, P100/V100 training boxes).  The
#: paper's timing model only needs SM geometry, clocks, memory size and
#: host-link bandwidth; the efficiency factors are calibrated the same
#: way as the testbed cards — application-level sustained throughput,
#: not marketing FLOPs.  These presets back the trace-replay harness's
#: ``gpu_type`` column (:mod:`repro.workloads.trace_replay`).

TESLA_T4 = GPUSpec(
    name="Tesla T4",
    sm_count=40,
    cores_per_sm=64,
    clock_ghz=1.59,
    memory_bytes=16 * GIB,
    pcie_gbps=12.0,          # PCIe 3.0 x16
    efficiency=0.35,         # 70 W inference card: heavily power-capped
    max_contexts=16,
    context_reservation_bytes=96 * MIB,
)

TESLA_P100 = GPUSpec(
    name="Tesla P100",
    sm_count=56,
    cores_per_sm=64,
    clock_ghz=1.30,
    memory_bytes=16 * GIB,
    pcie_gbps=12.0,          # PCIe 3.0 x16 (NVLink variants exist; the
    efficiency=0.50,         # trace boxes are the PCIe flavor)
    max_contexts=16,
    context_reservation_bytes=96 * MIB,
)

TESLA_V100 = GPUSpec(
    name="Tesla V100",
    sm_count=80,
    cores_per_sm=64,
    clock_ghz=1.38,
    memory_bytes=32 * GIB,
    pcie_gbps=20.0,          # NVLink-era host link (NVLink 2.0 bricks)
    efficiency=0.55,
    max_contexts=32,
    context_reservation_bytes=128 * MIB,
)

#: Registry keyed by the strings production traces use in their
#: ``gpu_type`` column (plus the paper-testbed names for completeness).
#: Lookup is case-insensitive via :func:`device_spec`.
DEVICE_SPECS: Dict[str, GPUSpec] = {
    "T4": TESLA_T4,
    "P100": TESLA_P100,
    "V100": TESLA_V100,
    "C2050": TESLA_C2050,
    "C1060": TESLA_C1060,
    "QUADRO2000": QUADRO_2000,
    "MIC": INTEL_MIC,
}


def device_spec(gpu_type: str) -> GPUSpec:
    """Resolve a trace ``gpu_type`` string to its :class:`GPUSpec`.

    Raises :class:`KeyError` with the known names for typo'd types, so a
    malformed trace fails loudly at load time rather than mid-replay.
    """
    key = gpu_type.strip().upper()
    try:
        return DEVICE_SPECS[key]
    except KeyError:
        raise KeyError(
            f"unknown gpu_type {gpu_type!r}; known: {sorted(DEVICE_SPECS)}"
        ) from None


_device_ids = itertools.count()


class GPUDevice:
    """A live GPU in the simulation.

    The device serializes kernel executions (``exec_engine``) and DMA
    transfers (``copy_engine``); the two can overlap, matching real
    hardware with a dedicated copy engine.
    """

    def __init__(self, env: Environment, spec: GPUSpec, device_id: Optional[int] = None):
        self.env = env
        self.spec = spec
        self.device_id = device_id if device_id is not None else next(_device_ids)
        self.allocator = DeviceAllocator(spec.memory_bytes)
        self.exec_engine = Resource(env, capacity=1)
        self.copy_engine = Resource(env, capacity=1)
        #: SM pool used when kernel consolidation (space-sharing) is
        #: enabled; exclusive launches drain it completely.
        self.sm_slots = Container(env, capacity=spec.sm_count, init=spec.sm_count)
        self.failed = False
        #: Cumulative busy seconds of the execution engine (for utilization
        #: reporting in the experiments).
        self.busy_seconds = 0.0
        #: Cumulative busy seconds of the DMA copy engine.
        self.copy_busy_seconds = 0.0
        #: Simulated seconds during which the copy engine and the exec
        #: engine were busy *simultaneously* — the paper's §4.5
        #: computation/communication overlap, measured on the device.
        self.copy_exec_overlap_seconds = 0.0
        self._engine_active = {"exec": 0, "copy": 0}
        self._overlap_since: Optional[float] = None
        self.kernels_executed = 0
        self.bytes_copied = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.spec.name}#{self.device_id}"

    @property
    def memory_capacity(self) -> int:
        return self.spec.memory_bytes

    @property
    def free_memory(self) -> int:
        return self.allocator.free_bytes

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` the execution engine was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)

    # ------------------------------------------------------------------
    # engine occupancy (overlap accounting)
    # ------------------------------------------------------------------
    def engine_begin(self, engine: str) -> None:
        """An operation started occupying ``engine`` ("exec"/"copy").

        With space-sharing several kernels may hold the exec engine at
        once, so occupancy is a counter; the overlap window opens when
        both engines first become simultaneously active."""
        active = self._engine_active
        active[engine] += 1
        if self._overlap_since is None and active["exec"] and active["copy"]:
            self._overlap_since = self.env.now

    def engine_end(self, engine: str) -> None:
        active = self._engine_active
        active[engine] -= 1
        if self._overlap_since is not None and (
            not active["exec"] or not active["copy"]
        ):
            self.copy_exec_overlap_seconds += self.env.now - self._overlap_since
            self._overlap_since = None

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the device failed (GPU removal / hardware fault)."""
        self.failed = True

    def recover(self) -> None:
        """Bring the device back (after maintenance / re-add)."""
        self.failed = False

    def __repr__(self) -> str:
        state = "FAILED" if self.failed else "ok"
        return (
            f"<GPUDevice {self.name} {state} "
            f"free={self.free_memory / MIB:.0f}MiB/{self.memory_capacity / MIB:.0f}MiB>"
        )
