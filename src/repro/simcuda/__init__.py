"""Simulated CUDA software stack and GPU hardware models.

This package stands in for the real NVIDIA driver + CUDA 3.2 runtime that
the paper's prototype interposes on.  It reproduces the behaviours the
paper's evaluation depends on:

- physically separate device memory with finite capacity and a
  fragmentation-aware allocator (:mod:`repro.simcuda.allocator`);
- one CUDA context per application thread, with a per-context memory
  reservation and a hard limit on concurrent contexts per device
  (the paper observed 8 on a Tesla C2050) — :mod:`repro.simcuda.context`;
- first-come-first-served service of kernel launches across contexts:
  one kernel executes on a device at a time (:mod:`repro.simcuda.driver`);
- PCIe-bandwidth-limited host↔device copies (:mod:`repro.simcuda.timing`);
- out-of-memory and device failures surfaced as CUDA error codes
  (:mod:`repro.simcuda.errors`);
- hardware models of the paper's devices — Tesla C2050, Tesla C1060,
  Quadro 2000 (:mod:`repro.simcuda.device`).
"""

from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.device import (
    DEVICE_SPECS,
    GPUSpec,
    GPUDevice,
    INTEL_MIC,
    TESLA_C2050,
    TESLA_C1060,
    TESLA_P100,
    TESLA_T4,
    TESLA_V100,
    QUADRO_2000,
    device_spec,
)
from repro.simcuda.allocator import DeviceAllocator, OutOfMemory
from repro.simcuda.context import CudaContext
from repro.simcuda.kernels import KernelDescriptor, KernelLaunch
from repro.simcuda.driver import CudaDriver
from repro.simcuda.runtime_api import CudaRuntimeAPI
from repro.simcuda.fatbin import FatBinary

__all__ = [
    "CudaContext",
    "CudaDriver",
    "CudaError",
    "CudaRuntimeAPI",
    "CudaRuntimeError",
    "DEVICE_SPECS",
    "DeviceAllocator",
    "FatBinary",
    "GPUDevice",
    "GPUSpec",
    "INTEL_MIC",
    "KernelDescriptor",
    "KernelLaunch",
    "OutOfMemory",
    "QUADRO_2000",
    "TESLA_C1060",
    "TESLA_C2050",
    "TESLA_P100",
    "TESLA_T4",
    "TESLA_V100",
    "device_spec",
]
