"""The simulated CUDA driver.

One driver instance exists per node; it owns the node's GPUs and mediates
every device operation.  All operations are simulation *sub-processes*:
call them with ``yield from`` inside a process (or wrap in
``env.process``).  They consume simulated time per :mod:`repro.simcuda.timing`
and contend on each device's execution/copy engines exactly like CUDA 3.x:

- kernel launches from different contexts are served FCFS, one at a time
  per device;
- H2D/D2H copies serialize on the device's DMA engine but can overlap a
  running kernel;
- a device failure surfaces as ``cudaErrorDevicesUnavailable`` on every
  subsequent (and in-flight) operation.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from repro.sim import Environment
from repro.simcuda import timing
from repro.simcuda.allocator import OutOfMemory
from repro.simcuda.context import CudaContext
from repro.simcuda.device import GPUDevice, GPUSpec
from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.kernels import KernelLaunch

__all__ = ["CudaDriver"]


class CudaDriver:
    """Node-level CUDA driver over a set of :class:`GPUDevice`\\ s."""

    def __init__(self, env: Environment, specs: Optional[List[GPUSpec]] = None):
        self.env = env
        #: Kernel consolidation (space-sharing): when True, launches with
        #: a partial ``sm_demand`` may co-run on a device instead of
        #: serializing — the Ravi et al. integration enabled by the
        #: runtime's delayed binding (§6).  Off = CUDA 3.x behaviour.
        self.concurrent_kernels = False
        #: Per-launch control-plane cost (CPU-side submission work charged
        #: before the launch contends for an engine).  Defaults to 0.0 —
        #: no timeout event is even scheduled then, so prior results stay
        #: bit-for-bit identical.  Wired from
        #: ``RuntimeConfig.launch_control_plane_s`` by the node runtime;
        #: see ``timing.CONTROL_PLANE_SECONDS`` for a reference value.
        self.launch_control_plane_s = 0.0
        #: Optional observability hook called at the end of every engine
        #: occupancy — ``hook(device, engine, op, nbytes, owner, begin_at)``.
        #: Wired by the node runtime to emit EngineSpan trace events; the
        #: driver itself never consumes simulated time calling it.
        self.span_hook: Optional[Callable[..., None]] = None
        self.devices: List[GPUDevice] = []
        #: device -> live contexts on it
        self._contexts: Dict[int, List[CudaContext]] = {}
        for spec in specs or []:
            self.add_device(spec)

    # ------------------------------------------------------------------
    # device management
    # ------------------------------------------------------------------
    def add_device(self, spec: GPUSpec) -> GPUDevice:
        """Install a GPU (system startup or dynamic upgrade)."""
        device = GPUDevice(self.env, spec)
        self.devices.append(device)
        self._contexts[device.device_id] = []
        return device

    def remove_device(self, device: GPUDevice) -> None:
        """Remove a GPU (dynamic downgrade).  Live contexts on it start
        failing with ``cudaErrorDevicesUnavailable``."""
        device.fail()
        self.devices.remove(device)

    def device_count(self) -> int:
        return len(self.devices)

    def get_device(self, device_id: int) -> GPUDevice:
        for device in self.devices:
            if device.device_id == device_id:
                return device
        raise CudaRuntimeError(CudaError.cudaErrorInvalidDevice, f"no device {device_id}")

    def contexts_on(self, device: GPUDevice) -> List[CudaContext]:
        return list(self._contexts.get(device.device_id, []))

    # ------------------------------------------------------------------
    # contexts
    # ------------------------------------------------------------------
    def create_context(
        self, device: GPUDevice, owner: Optional[str] = None
    ) -> Generator:
        """Create a context on ``device``; returns the context.

        Enforces the concurrent-context limit the paper measured and the
        per-context device-memory reservation.
        """
        self._check_alive(device)
        live = self._contexts[device.device_id]
        if len(live) >= device.spec.max_contexts:
            raise CudaRuntimeError(
                CudaError.cudaErrorTooManyContexts,
                f"{device.name} already has {len(live)} contexts "
                f"(limit {device.spec.max_contexts})",
            )
        ctx = CudaContext(device, owner=owner)
        try:
            ctx.reservation_address = device.allocator.allocate(
                device.spec.context_reservation_bytes
            )
        except OutOfMemory as exc:
            raise CudaRuntimeError(
                CudaError.cudaErrorMemoryAllocation,
                f"context reservation failed on {device.name}: {exc}",
            ) from exc
        live.append(ctx)
        yield self.env.timeout(timing.CONTEXT_CREATE_SECONDS)
        self._check_alive(device)
        return ctx

    def destroy_context(self, ctx: CudaContext) -> Generator:
        """Destroy a context, releasing every allocation it made."""
        if ctx.destroyed:
            return
        for address in list(ctx.allocations):
            if ctx.device.allocator.owns(address):
                ctx.device.allocator.free(address)
        ctx.allocations.clear()
        if ctx.reservation_address is not None and ctx.device.allocator.owns(
            ctx.reservation_address
        ):
            ctx.device.allocator.free(ctx.reservation_address)
        ctx.reservation_address = None
        ctx.destroyed = True
        live = self._contexts.get(ctx.device.device_id)
        if live and ctx in live:
            live.remove(ctx)
        yield self.env.timeout(timing.CONTEXT_DESTROY_SECONDS)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def malloc(self, ctx: CudaContext, size: int) -> Generator:
        """cudaMalloc: returns a device address."""
        self._check_context(ctx)
        if size <= 0:
            raise CudaRuntimeError(CudaError.cudaErrorInvalidValue, f"size={size}")
        yield self.env.timeout(timing.MALLOC_OVERHEAD_SECONDS)
        self._check_context(ctx)
        try:
            address = ctx.device.allocator.allocate(size)
        except OutOfMemory as exc:
            raise CudaRuntimeError(CudaError.cudaErrorMemoryAllocation, str(exc)) from exc
        ctx.allocations[address] = ctx.device.allocator.size_of(address)
        return address

    def free(self, ctx: CudaContext, address: int) -> Generator:
        """cudaFree."""
        self._check_context(ctx)
        if not ctx.owns_pointer(address):
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidDevicePointer, f"0x{address:x} not owned by context"
            )
        yield self.env.timeout(timing.FREE_OVERHEAD_SECONDS)
        ctx.device.allocator.free(address)
        del ctx.allocations[address]

    def memcpy_h2d(self, ctx: CudaContext, address: int, nbytes: int) -> Generator:
        """Host→device transfer of ``nbytes`` into the allocation at
        ``address``."""
        yield from self._memcpy(ctx, address, nbytes, "h2d")

    def memcpy_d2h(self, ctx: CudaContext, address: int, nbytes: int) -> Generator:
        """Device→host transfer."""
        yield from self._memcpy(ctx, address, nbytes, "d2h")

    def _memcpy(self, ctx: CudaContext, address: int, nbytes: int, kind: str) -> Generator:
        self._check_context(ctx)
        if nbytes < 0:
            raise CudaRuntimeError(CudaError.cudaErrorInvalidValue, f"nbytes={nbytes}")
        if not ctx.owns_pointer(address):
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidDevicePointer,
                f"memcpy_{kind} to 0x{address:x} not owned by context",
            )
        if nbytes > ctx.allocations[address]:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue,
                f"memcpy_{kind} of {nbytes} bytes exceeds allocation "
                f"({ctx.allocations[address]} bytes)",
            )
        device = ctx.device
        with device.copy_engine.request() as req:
            yield req
            self._check_context(ctx)
            duration = timing.copy_seconds(device.spec, nbytes)
            begin_at = self.env.now
            device.engine_begin("copy")
            try:
                yield self.env.timeout(duration)
            finally:
                device.engine_end("copy")
            self._check_context(ctx)
            device.bytes_copied += nbytes
            device.copy_busy_seconds += duration
            if self.span_hook is not None:
                self.span_hook(
                    device, "copy", f"memcpy_{kind}", nbytes, ctx.owner, begin_at
                )

    def memcpy_peer(
        self,
        src_ctx: CudaContext,
        src_address: int,
        dst_ctx: CudaContext,
        dst_address: int,
        nbytes: int,
    ) -> Generator:
        """Direct GPU-to-GPU transfer (CUDA 4.0 peer access, paper §4.8).

        Occupies both devices' copy engines; bandwidth is bounded by the
        slower PCIe link (data crosses the host bridge once instead of
        being staged through host memory twice).
        """
        self._check_context(src_ctx)
        self._check_context(dst_ctx)
        if src_ctx.device is dst_ctx.device:
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue, "peer copy within one device"
            )
        for ctx, address in ((src_ctx, src_address), (dst_ctx, dst_address)):
            if not ctx.owns_pointer(address):
                raise CudaRuntimeError(
                    CudaError.cudaErrorInvalidDevicePointer,
                    f"peer copy pointer 0x{address:x} not owned",
                )
        if nbytes > min(src_ctx.allocations[src_address], dst_ctx.allocations[dst_address]):
            raise CudaRuntimeError(
                CudaError.cudaErrorInvalidValue, "peer copy exceeds allocation"
            )
        bandwidth = min(src_ctx.device.spec.pcie_gbps, dst_ctx.device.spec.pcie_gbps)
        src_req = src_ctx.device.copy_engine.request()
        dst_req = dst_ctx.device.copy_engine.request()
        try:
            yield src_req
            yield dst_req
            self._check_context(src_ctx)
            self._check_context(dst_ctx)
            duration = timing.COPY_LATENCY_SECONDS + nbytes / (bandwidth * 1e9)
            begin_at = self.env.now
            src_ctx.device.engine_begin("copy")
            dst_ctx.device.engine_begin("copy")
            try:
                yield self.env.timeout(duration)
            finally:
                src_ctx.device.engine_end("copy")
                dst_ctx.device.engine_end("copy")
            self._check_context(src_ctx)
            self._check_context(dst_ctx)
            src_ctx.device.bytes_copied += nbytes
            dst_ctx.device.bytes_copied += nbytes
            src_ctx.device.copy_busy_seconds += duration
            dst_ctx.device.copy_busy_seconds += duration
            if self.span_hook is not None:
                self.span_hook(
                    src_ctx.device, "copy", "memcpy_peer", nbytes,
                    src_ctx.owner, begin_at,
                )
                self.span_hook(
                    dst_ctx.device, "copy", "memcpy_peer", nbytes,
                    dst_ctx.owner, begin_at,
                )
        finally:
            src_ctx.device.copy_engine.release(src_req)
            dst_ctx.device.copy_engine.release(dst_req)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch(self, ctx: CudaContext, launch: KernelLaunch) -> Generator:
        """cudaLaunch: execute a kernel FCFS on the context's device.

        Every pointer argument must be a device pointer owned by ``ctx`` —
        the bare CUDA runtime offers no virtual addressing.
        """
        self._check_context(ctx)
        for ptr in launch.arg_pointers:
            if not ctx.owns_pointer(ptr):
                raise CudaRuntimeError(
                    CudaError.cudaErrorLaunchFailure,
                    f"kernel {launch.kernel.name!r} dereferences invalid pointer 0x{ptr:x}",
                )
        if self.launch_control_plane_s > 0.0 and launch.control_plane:
            yield self.env.timeout(self.launch_control_plane_s)
            self._check_context(ctx)
        device = ctx.device
        if self.concurrent_kernels:
            yield from self._launch_space_shared(ctx, launch)
            return
        with device.exec_engine.request() as req:
            yield req
            self._check_context(ctx)
            duration = timing.kernel_seconds(device.spec, launch.kernel)
            begin_at = self.env.now
            device.engine_begin("exec")
            try:
                yield self.env.timeout(duration)
            finally:
                device.engine_end("exec")
            # A failure mid-kernel is detected at kernel end, as on real
            # hardware (the launch errors rather than completing).
            self._check_context(ctx)
            device.busy_seconds += duration
            device.kernels_executed += 1
            if self.span_hook is not None:
                self.span_hook(
                    device, "exec", launch.kernel.name, 0, ctx.owner, begin_at
                )

    def _launch_space_shared(self, ctx: CudaContext, launch: KernelLaunch) -> Generator:
        """Consolidated execution: the launch occupies only the SMs it
        can fill; co-running kernels slow nothing down as long as the
        aggregate demand fits the device."""
        device = ctx.device
        sm_count = device.spec.sm_count
        demand = launch.kernel.sm_demand
        granted = sm_count if demand is None else max(1, min(demand, sm_count))
        yield device.sm_slots.get(granted)
        try:
            self._check_context(ctx)
            fraction = granted / sm_count
            duration = timing.kernel_seconds(device.spec, launch.kernel)
            begin_at = self.env.now
            device.engine_begin("exec")
            try:
                yield self.env.timeout(duration)
            finally:
                device.engine_end("exec")
            self._check_context(ctx)
            device.busy_seconds += duration * fraction
            device.kernels_executed += 1
            if self.span_hook is not None:
                self.span_hook(
                    device, "exec", launch.kernel.name, 0, ctx.owner, begin_at
                )
        finally:
            device.sm_slots.put(granted)

    # ------------------------------------------------------------------
    def _check_alive(self, device: GPUDevice) -> None:
        if device.failed:
            raise CudaRuntimeError(
                CudaError.cudaErrorDevicesUnavailable, f"{device.name} failed/removed"
            )

    def _check_context(self, ctx: CudaContext) -> None:
        if ctx.destroyed:
            raise CudaRuntimeError(CudaError.cudaErrorInvalidValue, "context destroyed")
        self._check_alive(ctx.device)
