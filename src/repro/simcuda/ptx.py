"""PTX inspection (paper §1).

"Both pointer nesting and dynamic device memory allocation can be
detected by intercepting and parsing the pseudo-assembly (PTX)
representation of CUDA kernels sent to the GPU devices."

This module provides that substrate: a faithful-enough subset of the PTX
ISA text format (versions 2.x, the CUDA 3.2/4.0 era), a parser, and the
two analyses the runtime needs:

- **dynamic device-side allocation** — a ``call`` to ``malloc``/``free``
  from device code (introduced with Fermi, sm_20);
- **pointer nesting** — a value loaded from global memory that is itself
  used as the address of a subsequent global load/store (a dependent,
  two-level dereference).

The analyses are conservative in the right direction for the runtime:
false positives only exclude an application from sharing (safe), never
the reverse.

Example
-------
>>> module = parse_ptx(PTX_SOURCE)
>>> entry = module.kernels["matmul"]
>>> entry.uses_dynamic_alloc, entry.has_pointer_nesting
(False, False)
>>> entry.to_descriptor(flops=1e9).name
'matmul'
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.simcuda.kernels import KernelDescriptor

__all__ = ["PtxError", "PtxInstruction", "PtxKernel", "PtxModule", "parse_ptx"]


class PtxError(ValueError):
    """Malformed PTX text."""


# .visible .entry matmul ( .param .u64 A, ... )
_ENTRY_RE = re.compile(
    r"^\s*(?:\.visible\s+|\.weak\s+)?\.entry\s+([A-Za-z_$][\w$]*)"
)
_DIRECTIVE_RE = re.compile(r"^\s*\.(version|target|address_size)\s+(.+?)\s*;?\s*$")
_REG_DECL_RE = re.compile(r"^\s*\.reg\s+\.\w+\s+(.+?)\s*;\s*$")
_PARAM_RE = re.compile(r"\.param\s+\.(\w+)\s+([A-Za-z_$][\w$]*)")
#: opcode[.modifiers...] operands ;
_INSTR_RE = re.compile(r"^\s*(?:@!?%?\w+\s+)?([a-z]+)((?:\.[a-z0-9_]+)*)\s*(.*?)\s*;\s*$")
_CALL_TARGET_RE = re.compile(r"\(?\s*[\w%$]*\s*\)?\s*,?\s*([A-Za-z_$][\w$]*)")


@dataclasses.dataclass(frozen=True)
class PtxInstruction:
    """One parsed instruction."""

    opcode: str
    modifiers: Tuple[str, ...]
    operands: Tuple[str, ...]
    line: int

    @property
    def state_space(self) -> Optional[str]:
        """Memory space of a ld/st (global, shared, local, param...)."""
        for mod in self.modifiers:
            if mod in ("global", "shared", "local", "param", "const"):
                return mod
        return None

    def dest(self) -> Optional[str]:
        return self.operands[0] if self.operands else None

    def address_register(self) -> Optional[str]:
        """The register inside a [addr] operand, if any."""
        for op in self.operands:
            m = re.match(r"\[\s*([%\w$]+)(?:\s*\+\s*-?\d+)?\s*\]", op)
            if m:
                return m.group(1)
        return None


@dataclasses.dataclass
class PtxKernel:
    """One ``.entry`` with its body and derived properties."""

    name: str
    params: List[Tuple[str, str]]  # (type, name)
    instructions: List[PtxInstruction]
    uses_dynamic_alloc: bool = False
    has_pointer_nesting: bool = False

    @property
    def pointer_params(self) -> List[str]:
        return [name for type_, name in self.params if type_ in ("u64", "s64", "b64")]

    def to_descriptor(self, flops: float) -> KernelDescriptor:
        """The registration-time view the runtime keeps (§1)."""
        return KernelDescriptor(
            name=self.name,
            flops=flops,
            uses_dynamic_alloc=self.uses_dynamic_alloc,
            has_pointer_nesting=self.has_pointer_nesting,
        )


@dataclasses.dataclass
class PtxModule:
    """A parsed PTX translation unit (one fat-binary image)."""

    version: Optional[str]
    target: Optional[str]
    address_size: Optional[str]
    kernels: Dict[str, PtxKernel]

    @property
    def needs_exclusion_from_sharing(self) -> bool:
        return any(k.uses_dynamic_alloc for k in self.kernels.values())

    @property
    def has_pointer_nesting(self) -> bool:
        return any(k.has_pointer_nesting for k in self.kernels.values())


def _strip_comments(text: str) -> List[str]:
    """Remove // and /* */ comments, preserving line numbers."""
    text = re.sub(r"/\*.*?\*/", lambda m: "\n" * m.group(0).count("\n"), text,
                  flags=re.S)
    lines = []
    for line in text.splitlines():
        if "//" in line:
            line = line.split("//", 1)[0]
        lines.append(line)
    return lines


def parse_ptx(source: str) -> PtxModule:
    """Parse PTX text into a module, running both analyses per kernel."""
    lines = _strip_comments(source)
    version = target = address_size = None
    kernels: Dict[str, PtxKernel] = {}

    i = 0
    n = len(lines)
    while i < n:
        line = lines[i]
        m = _DIRECTIVE_RE.match(line)
        if m:
            key, value = m.groups()
            if key == "version":
                version = value
            elif key == "target":
                target = value
            else:
                address_size = value
            i += 1
            continue
        m = _ENTRY_RE.match(line)
        if m:
            name = m.group(1)
            # Collect the signature up to the opening brace.
            header = line
            while "{" not in header:
                i += 1
                if i >= n:
                    raise PtxError(f".entry {name}: missing body")
                header += " " + lines[i]
            params = [(t, p) for t, p in _PARAM_RE.findall(header)]
            # Collect the body to the matching close brace.
            body_lines: List[Tuple[int, str]] = []
            depth = header.count("{") - header.count("}")
            first_line = i
            while depth > 0:
                i += 1
                if i >= n:
                    raise PtxError(f".entry {name}: unbalanced braces")
                depth += lines[i].count("{") - lines[i].count("}")
                body_lines.append((i, lines[i]))
            instructions = _parse_body(body_lines)
            kernel = PtxKernel(name=name, params=params, instructions=instructions)
            kernel.uses_dynamic_alloc = _detect_dynamic_alloc(instructions)
            kernel.has_pointer_nesting = _detect_pointer_nesting(instructions)
            kernels[name] = kernel
        i += 1

    if not kernels and version is None:
        raise PtxError("no .version directive and no kernels: not PTX?")
    return PtxModule(
        version=version, target=target, address_size=address_size, kernels=kernels
    )


def _parse_body(body_lines: List[Tuple[int, str]]) -> List[PtxInstruction]:
    instructions = []
    for lineno, raw in body_lines:
        for stmt in raw.split(";"):
            stmt = stmt.strip().rstrip("}").strip()
            if not stmt or stmt.startswith((".", "{", "}")) or stmt.endswith(":"):
                continue
            m = _INSTR_RE.match(stmt + ";")
            if not m:
                continue
            opcode, mods, rest = m.groups()
            modifiers = tuple(x for x in mods.split(".") if x)
            operands = tuple(
                op.strip() for op in _split_operands(rest) if op.strip()
            )
            instructions.append(
                PtxInstruction(opcode=opcode, modifiers=modifiers,
                               operands=operands, line=lineno)
            )
    return instructions


def _split_operands(rest: str) -> List[str]:
    """Split on commas not inside brackets/parentheses."""
    out, depth, cur = [], 0, []
    for ch in rest:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    out.append("".join(cur))
    return out


_ALLOC_SYMBOLS = {"malloc", "free", "vprintf_alloc", "cudaMalloc"}


def _detect_dynamic_alloc(instructions: List[PtxInstruction]) -> bool:
    """A device-side ``call`` to an allocation routine."""
    for instr in instructions:
        if instr.opcode != "call":
            continue
        for op in instr.operands:
            target = op.strip().lstrip("(").split(",")[0].strip().rstrip(")")
            if target in _ALLOC_SYMBOLS:
                return True
            m = _CALL_TARGET_RE.search(op)
            if m and m.group(1) in _ALLOC_SYMBOLS:
                return True
    return False


def _detect_pointer_nesting(instructions: List[PtxInstruction]) -> bool:
    """Dependent global dereference: a register produced by a global load
    is later used as the address of another global load/store.

    Conservative dataflow: moves/adds/converts propagate the "came from
    global memory" taint.
    """
    tainted: Set[str] = set()
    propagating = {"mov", "add", "sub", "cvt", "cvta", "shl", "or", "and", "mad"}
    for instr in instructions:
        if instr.opcode in ("ld", "st") and instr.state_space == "global":
            addr = instr.address_register()
            if addr is not None and addr in tainted:
                return True
        if instr.opcode == "ld" and instr.state_space == "global":
            dest = instr.dest()
            if dest:
                tainted.add(dest)
        elif instr.opcode in propagating and instr.operands:
            dest = instr.operands[0]
            if any(src in tainted for src in instr.operands[1:]):
                tainted.add(dest)
            elif dest in tainted:
                # overwritten with an untainted value
                if not any(src in tainted for src in instr.operands[1:]):
                    tainted.discard(dest)
    return False
