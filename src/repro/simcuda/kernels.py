"""Kernel descriptors and launch records.

A :class:`KernelDescriptor` is what function registration
(``__cudaRegisterFunction``) makes known to the runtime: the paper notes
that pointer nesting and dynamic device-side allocation "can be detected by
intercepting and parsing the pseudo-assembly (PTX) representation of CUDA
kernels" (§1) — we model the result of that parse as two boolean flags.

A :class:`KernelLaunch` pairs a descriptor with its execution
configuration and the (virtual or device) pointers it dereferences — the
information the memory manager needs to decide which page-table entries a
launch touches.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

__all__ = ["KernelDescriptor", "KernelLaunch"]


@dataclasses.dataclass(frozen=True)
class KernelDescriptor:
    """Static description of a ``__global__`` function.

    Attributes
    ----------
    name:
        Symbol name.
    flops:
        Floating-point work per launch (drives the timing model).
    uses_dynamic_alloc:
        True if the PTX shows device-side ``malloc`` — such applications
        are excluded from sharing/dynamic scheduling (§1).
    has_pointer_nesting:
        True if the kernel dereferences nested pointers; nested structures
        must be registered through the runtime API (§1, §4.5).
    sm_demand:
        How many streaming multiprocessors the launch can actually fill
        (from its grid size / occupancy).  ``None`` means "the whole
        device" (the conservative default).  When the runtime enables
        kernel consolidation (the Ravi et al. integration the paper's §6
        describes as enabled by its delayed binding), kernels with
        partial demand may space-share a device.
    """

    name: str
    flops: float
    uses_dynamic_alloc: bool = False
    has_pointer_nesting: bool = False
    sm_demand: Optional[int] = None

    def scaled(self, factor: float) -> "KernelDescriptor":
        """A copy with ``flops`` scaled by ``factor`` (workload sizing)."""
        return dataclasses.replace(self, flops=self.flops * factor)


@dataclasses.dataclass(frozen=True)
class KernelLaunch:
    """One kernel invocation as seen by ``cudaConfigureCall``+``cudaLaunch``.

    Attributes
    ----------
    kernel:
        The registered descriptor.
    grid, block:
        Execution configuration (informational; the timing model keys off
        ``kernel.flops``).
    arg_pointers:
        The pointer arguments the kernel will dereference.  Under the
        paper's runtime these are *virtual* addresses; on the bare CUDA
        runtime they are device addresses.
    read_only:
        Optional subset of ``arg_pointers`` known to be read-only.  When
        present, the memory manager can skip the write-back flag for them
        (Figure 4 "assumes ... all data referenced in a kernel launch can
        be modified"; finer handling "is possible if the information about
        read-only and read-write parameters is available").
    control_plane:
        Whether this launch pays the driver's per-launch control-plane
        charge (``CudaDriver.launch_control_plane_s``).  Graph replay
        issues an instantiated sequence for a *single* charge, so every
        launch after the first is submitted with ``control_plane=False``.
    """

    kernel: KernelDescriptor
    grid: Tuple[int, int, int] = (1, 1, 1)
    block: Tuple[int, int, int] = (256, 1, 1)
    arg_pointers: Tuple[int, ...] = ()
    read_only: Optional[Tuple[int, ...]] = None
    control_plane: bool = True

    @property
    def thread_count(self) -> int:
        gx, gy, gz = self.grid
        bx, by, bz = self.block
        return gx * gy * gz * bx * by * bz

    def writes_pointer(self, ptr: int) -> bool:
        """Whether the launch may modify the allocation behind ``ptr``."""
        if self.read_only is None:
            return True
        return ptr not in self.read_only

    @staticmethod
    def simple(
        kernel: KernelDescriptor, pointers: Sequence[int], read_only: Sequence[int] = ()
    ) -> "KernelLaunch":
        """Convenience constructor used by the workload models."""
        return KernelLaunch(
            kernel=kernel,
            arg_pointers=tuple(pointers),
            read_only=tuple(read_only) if read_only else None,
        )
