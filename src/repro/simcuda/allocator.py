"""Device-memory allocator with fragmentation (first-fit / best-fit).

The paper notes that "because of possible memory fragmentation on GPU, the
runtime may need to use the return code of the GPU memory allocation
function to ensure that the request can be honored" (§4.5) — i.e. coarse
free-byte accounting is not enough.  This allocator models placement
explicitly so that fragmentation is observable: total free bytes may be
sufficient while no single free block is.

Addresses are plain integers within ``[base, base + capacity)``.  A small
non-zero ``base`` keeps ``0`` available as a NULL-pointer sentinel.

``free_bytes`` and ``largest_free_block`` are O(1): they sit on the
per-launch admission and partial-eviction hot paths, which poll them
after every victim write-back.  A running free-byte total and a sorted
multiset of free-block sizes are maintained alongside the block list.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

__all__ = ["DeviceAllocator", "OutOfMemory", "PLACEMENT_MODES"]

#: Supported placement strategies.
PLACEMENT_MODES = ("first_fit", "best_fit")


class OutOfMemory(Exception):
    """Requested block cannot be placed (capacity or fragmentation)."""


class DeviceAllocator:
    """Placement allocator over a contiguous device address space.

    ``mode`` selects the placement strategy: ``first_fit`` (default)
    takes the lowest-address block that fits; ``best_fit`` takes the
    smallest block that fits (lowest address on ties), which keeps large
    blocks intact and reduces fragmentation on mixed-size churn.
    """

    #: Allocation granularity (CUDA rounds allocations up; 256 B matches
    #: the alignment cudaMalloc guarantees).
    ALIGNMENT = 256
    BASE_ADDRESS = 0x0200_0000

    def __init__(self, capacity: int, mode: str = "first_fit"):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if mode not in PLACEMENT_MODES:
            raise ValueError(
                f"unknown placement mode {mode!r}; choose from {PLACEMENT_MODES}"
            )
        self.capacity = int(capacity)
        self.mode = mode
        #: Sorted list of (address, size) free blocks.
        self._free: List[Tuple[int, int]] = [(self.BASE_ADDRESS, self.capacity)]
        #: address -> size for live allocations.
        self._live: Dict[int, int] = {}
        #: Running total of free bytes (kept in sync with ``_free``).
        self._free_total = self.capacity
        #: Sorted multiset of free-block sizes (kept in sync with ``_free``).
        self._sizes: List[int] = [self.capacity]

    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        """Total free bytes (may be fragmented).  O(1)."""
        return self._free_total

    @property
    def used_bytes(self) -> int:
        return self.capacity - self._free_total

    @property
    def largest_free_block(self) -> int:
        """Size of the largest single free block.  O(1)."""
        return self._sizes[-1] if self._sizes else 0

    @property
    def allocation_count(self) -> int:
        return len(self._live)

    def fragmentation(self) -> float:
        """1 - largest_free_block/free_bytes; 0 when free space is one block."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    # ------------------------------------------------------------------
    @classmethod
    def _round_up(cls, size: int) -> int:
        return (size + cls.ALIGNMENT - 1) // cls.ALIGNMENT * cls.ALIGNMENT

    def can_allocate(self, size: int) -> bool:
        """True if a block of ``size`` bytes can be placed right now."""
        if size <= 0:
            return False
        return self._round_up(size) <= self.largest_free_block

    def _find_block(self, need: int) -> Optional[int]:
        """Index into ``_free`` of the block to carve, per ``mode``."""
        if self.mode == "best_fit":
            best = None
            best_size = 0
            for i, (_addr, blk) in enumerate(self._free):
                if blk >= need and (best is None or blk < best_size):
                    best, best_size = i, blk
                    if blk == need:
                        break
            return best
        for i, (_addr, blk) in enumerate(self._free):
            if blk >= need:
                return i
        return None

    def allocate(self, size: int) -> int:
        """Place a block; returns its device address.

        Raises
        ------
        OutOfMemory
            If no single free block can hold the (aligned) request.
        ValueError
            If ``size`` is not positive.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        need = self._round_up(size)
        idx = self._find_block(need)
        if idx is None:
            raise OutOfMemory(
                f"cannot place {need} bytes: free={self.free_bytes}, "
                f"largest block={self.largest_free_block}"
            )
        addr, blk = self._free[idx]
        self._remove_size(blk)
        if blk == need:
            self._free.pop(idx)
        else:
            self._free[idx] = (addr + need, blk - need)
            self._add_size(blk - need)
        self._free_total -= need
        self._live[addr] = need
        return addr

    def free(self, address: int) -> int:
        """Release a live allocation; returns the freed byte count.

        Raises
        ------
        KeyError
            If ``address`` is not a live allocation (double free / bad ptr).
        """
        size = self._live.pop(address)  # KeyError on bad address
        self._insert_free(address, size)
        return size

    def owns(self, address: int) -> bool:
        """True if ``address`` is the start of a live allocation."""
        return address in self._live

    def size_of(self, address: int) -> int:
        """Size of the live allocation at ``address``."""
        return self._live[address]

    def reset(self) -> None:
        """Drop all allocations (device reset)."""
        self._free = [(self.BASE_ADDRESS, self.capacity)]
        self._live.clear()
        self._free_total = self.capacity
        self._sizes = [self.capacity]

    # ------------------------------------------------------------------
    def _add_size(self, size: int) -> None:
        bisect.insort(self._sizes, size)

    def _remove_size(self, size: int) -> None:
        idx = bisect.bisect_left(self._sizes, size)
        self._sizes.pop(idx)

    def _insert_free(self, addr: int, size: int) -> None:
        """Insert a free block, coalescing with neighbours."""
        self._free_total += size
        idx = bisect.bisect_left(self._free, (addr, 0))
        # Coalesce with predecessor.
        if idx > 0:
            prev_addr, prev_size = self._free[idx - 1]
            if prev_addr + prev_size == addr:
                addr = prev_addr
                size += prev_size
                self._free.pop(idx - 1)
                self._remove_size(prev_size)
                idx -= 1
        # Coalesce with successor.
        if idx < len(self._free):
            next_addr, next_size = self._free[idx]
            if addr + size == next_addr:
                size += next_size
                self._free.pop(idx)
                self._remove_size(next_size)
        self._free.insert(idx, (addr, size))
        self._add_size(size)

    def __repr__(self) -> str:
        return (
            f"<DeviceAllocator mode={self.mode} used={self.used_bytes} "
            f"free={self.free_bytes} blocks={len(self._free)} live={len(self._live)}>"
        )
