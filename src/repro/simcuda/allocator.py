"""First-fit device-memory allocator with fragmentation.

The paper notes that "because of possible memory fragmentation on GPU, the
runtime may need to use the return code of the GPU memory allocation
function to ensure that the request can be honored" (§4.5) — i.e. coarse
free-byte accounting is not enough.  This allocator models placement
explicitly so that fragmentation is observable: total free bytes may be
sufficient while no single free block is.

Addresses are plain integers within ``[base, base + capacity)``.  A small
non-zero ``base`` keeps ``0`` available as a NULL-pointer sentinel.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

__all__ = ["DeviceAllocator", "OutOfMemory"]


class OutOfMemory(Exception):
    """Requested block cannot be placed (capacity or fragmentation)."""


class DeviceAllocator:
    """First-fit allocator over a contiguous device address space."""

    #: Allocation granularity (CUDA rounds allocations up; 256 B matches
    #: the alignment cudaMalloc guarantees).
    ALIGNMENT = 256
    BASE_ADDRESS = 0x0200_0000

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        #: Sorted list of (address, size) free blocks.
        self._free: List[Tuple[int, int]] = [(self.BASE_ADDRESS, self.capacity)]
        #: address -> size for live allocations.
        self._live: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        """Total free bytes (may be fragmented)."""
        return sum(size for _, size in self._free)

    @property
    def used_bytes(self) -> int:
        return self.capacity - self.free_bytes

    @property
    def largest_free_block(self) -> int:
        """Size of the largest single free block."""
        return max((size for _, size in self._free), default=0)

    @property
    def allocation_count(self) -> int:
        return len(self._live)

    def fragmentation(self) -> float:
        """1 - largest_free_block/free_bytes; 0 when free space is one block."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    # ------------------------------------------------------------------
    @classmethod
    def _round_up(cls, size: int) -> int:
        return (size + cls.ALIGNMENT - 1) // cls.ALIGNMENT * cls.ALIGNMENT

    def can_allocate(self, size: int) -> bool:
        """True if a block of ``size`` bytes can be placed right now."""
        if size <= 0:
            return False
        need = self._round_up(size)
        return any(blk >= need for _, blk in self._free)

    def allocate(self, size: int) -> int:
        """Place a block; returns its device address.

        Raises
        ------
        OutOfMemory
            If no single free block can hold the (aligned) request.
        ValueError
            If ``size`` is not positive.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        need = self._round_up(size)
        for i, (addr, blk) in enumerate(self._free):
            if blk >= need:
                if blk == need:
                    self._free.pop(i)
                else:
                    self._free[i] = (addr + need, blk - need)
                self._live[addr] = need
                return addr
        raise OutOfMemory(
            f"cannot place {need} bytes: free={self.free_bytes}, "
            f"largest block={self.largest_free_block}"
        )

    def free(self, address: int) -> int:
        """Release a live allocation; returns the freed byte count.

        Raises
        ------
        KeyError
            If ``address`` is not a live allocation (double free / bad ptr).
        """
        size = self._live.pop(address)  # KeyError on bad address
        self._insert_free(address, size)
        return size

    def owns(self, address: int) -> bool:
        """True if ``address`` is the start of a live allocation."""
        return address in self._live

    def size_of(self, address: int) -> int:
        """Size of the live allocation at ``address``."""
        return self._live[address]

    def reset(self) -> None:
        """Drop all allocations (device reset)."""
        self._free = [(self.BASE_ADDRESS, self.capacity)]
        self._live.clear()

    # ------------------------------------------------------------------
    def _insert_free(self, addr: int, size: int) -> None:
        """Insert a free block, coalescing with neighbours."""
        idx = bisect.bisect_left(self._free, (addr, 0))
        # Coalesce with predecessor.
        if idx > 0:
            prev_addr, prev_size = self._free[idx - 1]
            if prev_addr + prev_size == addr:
                addr = prev_addr
                size += prev_size
                self._free.pop(idx - 1)
                idx -= 1
        # Coalesce with successor.
        if idx < len(self._free):
            next_addr, next_size = self._free[idx]
            if addr + size == next_addr:
                size += next_size
                self._free.pop(idx)
        self._free.insert(idx, (addr, size))

    def __repr__(self) -> str:
        return (
            f"<DeviceAllocator used={self.used_bytes} free={self.free_bytes} "
            f"blocks={len(self._free)} live={len(self._live)}>"
        )
