"""The CUDA Runtime API, as seen by one application thread.

This is the library an application links against when it runs on the
*bare* CUDA runtime (the paper's baseline).  Semantics follow CUDA 3.2:

- one context per application thread, created lazily on the first call
  that needs the device;
- ``cudaSetDevice`` selects the target device (the programmer-defined,
  static binding the paper argues against);
- launches require a prior ``cudaConfigureCall``;
- errors are returned as CUDA error codes (raised here as
  :class:`~repro.simcuda.errors.CudaRuntimeError` and also latched for
  ``cudaGetLastError``).

The paper's frontend library *overrides* this API: under the runtime, the
same application-side calls are redirected over a connection instead of
coming here.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.simcuda.context import CudaContext
from repro.simcuda.driver import CudaDriver
from repro.simcuda.errors import CudaError, CudaRuntimeError
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor, KernelLaunch
from repro.simcuda import timing

__all__ = ["CudaRuntimeAPI"]


class CudaRuntimeAPI:
    """Per-application-thread CUDA runtime state."""

    def __init__(self, driver: CudaDriver, owner: Optional[str] = None):
        self.driver = driver
        self.env = driver.env
        self.owner = owner
        self._selected_device_id: Optional[int] = None
        self._context: Optional[CudaContext] = None
        self._fatbins: List[FatBinary] = []
        self._pending_config: Optional[Tuple[Tuple[int, int, int], Tuple[int, int, int]]] = None
        self.last_error = CudaError.cudaSuccess

    # ------------------------------------------------------------------
    # internal registration calls (issued by host startup code)
    # ------------------------------------------------------------------
    def register_fat_binary(self, fatbin: FatBinary) -> Generator:
        """``__cudaRegisterFatBinary``."""
        self._fatbins.append(fatbin)
        yield self.env.timeout(timing.REGISTRATION_SECONDS)
        return fatbin.handle

    def register_function(self, fatbin: FatBinary, descriptor: KernelDescriptor) -> Generator:
        """``__cudaRegisterFunction``."""
        if fatbin not in self._fatbins:
            raise CudaRuntimeError(CudaError.cudaErrorInvalidValue, "unregistered fat binary")
        if descriptor.name not in fatbin.functions:
            fatbin.register_function(descriptor)
        yield self.env.timeout(timing.REGISTRATION_SECONDS)

    # ------------------------------------------------------------------
    # device management
    # ------------------------------------------------------------------
    def cuda_get_device_count(self) -> int:
        return self.driver.device_count()

    def cuda_set_device(self, device_id: int) -> None:
        """Select the device for this thread's (future) context."""
        if self._context is not None:
            # CUDA 3.2: changing devices after the context exists fails.
            raise self._latch(
                CudaRuntimeError(
                    CudaError.cudaErrorSetOnActiveProcess, "context already active"
                )
            )
        self.driver.get_device(device_id)  # validates
        self._selected_device_id = device_id

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def cuda_malloc(self, size: int) -> Generator:
        ctx = yield from self._ensure_context()
        try:
            address = yield from self.driver.malloc(ctx, size)
        except CudaRuntimeError as exc:
            raise self._latch(exc)
        return address

    def cuda_free(self, address: int) -> Generator:
        ctx = yield from self._ensure_context()
        try:
            yield from self.driver.free(ctx, address)
        except CudaRuntimeError as exc:
            raise self._latch(exc)

    def cuda_memcpy_h2d(self, address: int, nbytes: int) -> Generator:
        ctx = yield from self._ensure_context()
        try:
            yield from self.driver.memcpy_h2d(ctx, address, nbytes)
        except CudaRuntimeError as exc:
            raise self._latch(exc)

    def cuda_memcpy_d2h(self, address: int, nbytes: int) -> Generator:
        ctx = yield from self._ensure_context()
        try:
            yield from self.driver.memcpy_d2h(ctx, address, nbytes)
        except CudaRuntimeError as exc:
            raise self._latch(exc)

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def cuda_configure_call(
        self,
        grid: Tuple[int, int, int] = (1, 1, 1),
        block: Tuple[int, int, int] = (256, 1, 1),
    ) -> None:
        self._pending_config = (grid, block)

    def cuda_launch(self, launch: KernelLaunch) -> Generator:
        if self._pending_config is None:
            raise self._latch(
                CudaRuntimeError(
                    CudaError.cudaErrorMissingConfiguration,
                    f"cudaLaunch({launch.kernel.name}) without cudaConfigureCall",
                )
            )
        self._pending_config = None
        ctx = yield from self._ensure_context()
        try:
            yield from self.driver.launch(ctx, launch)
        except CudaRuntimeError as exc:
            raise self._latch(exc)

    def cuda_thread_synchronize(self) -> Generator:
        """All simulated calls are synchronous; this is a validity check."""
        ctx = yield from self._ensure_context()
        if ctx.device.failed:
            raise self._latch(
                CudaRuntimeError(CudaError.cudaErrorDevicesUnavailable, ctx.device.name)
            )

    def cuda_thread_exit(self) -> Generator:
        """Tear down this thread's context."""
        if self._context is not None:
            yield from self.driver.destroy_context(self._context)
            self._context = None

    # ------------------------------------------------------------------
    def cuda_get_last_error(self) -> CudaError:
        err, self.last_error = self.last_error, CudaError.cudaSuccess
        return err

    @property
    def context(self) -> Optional[CudaContext]:
        return self._context

    # ------------------------------------------------------------------
    def _ensure_context(self) -> Generator:
        if self._context is None:
            if self.driver.device_count() == 0:
                raise self._latch(
                    CudaRuntimeError(CudaError.cudaErrorNoDevice, "no CUDA devices")
                )
            device_id = self._selected_device_id
            if device_id is None:
                device_id = self.driver.devices[0].device_id
            device = self.driver.get_device(device_id)
            try:
                self._context = yield from self.driver.create_context(device, owner=self.owner)
            except CudaRuntimeError as exc:
                raise self._latch(exc)
        return self._context

    def _latch(self, exc: CudaRuntimeError) -> CudaRuntimeError:
        self.last_error = exc.code
        return exc
