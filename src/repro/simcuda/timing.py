"""Timing model for the simulated CUDA stack.

All constants are first-order approximations of the 2010-2012 hardware the
paper used.  The reproduction's claims are about *shapes* (ratios,
crossovers), which depend on the relative magnitudes encoded here:

- kernels take work/throughput seconds on the execution engine;
- host↔device copies are PCIe-bandwidth bound;
- per-call software overheads (launch, malloc) are microseconds —
  three to six orders of magnitude below kernel/copy times, exactly as on
  real hardware.
"""

from __future__ import annotations

from repro.simcuda.device import GPUSpec
from repro.simcuda.kernels import KernelDescriptor

__all__ = [
    "kernel_seconds",
    "copy_seconds",
    "CONTEXT_CREATE_SECONDS",
    "CONTEXT_DESTROY_SECONDS",
    "MALLOC_OVERHEAD_SECONDS",
    "FREE_OVERHEAD_SECONDS",
    "LAUNCH_OVERHEAD_SECONDS",
    "CONTROL_PLANE_SECONDS",
    "COPY_LATENCY_SECONDS",
    "REGISTRATION_SECONDS",
]

#: Creating a CUDA context is expensive (driver init, ~0.1 s in that era).
CONTEXT_CREATE_SECONDS = 0.08
CONTEXT_DESTROY_SECONDS = 0.02
#: cudaMalloc / cudaFree driver round-trips.
MALLOC_OVERHEAD_SECONDS = 1.0e-4
FREE_OVERHEAD_SECONDS = 5.0e-5
#: Kernel-launch software overhead.
LAUNCH_OVERHEAD_SECONDS = 1.5e-5
#: Reference per-launch *control-plane* cost: the CPU-side submission work
#: (runtime bookkeeping + driver ioctl) a launch pays before it ever
#: reaches the device, on top of ``LAUNCH_OVERHEAD_SECONDS``.  The model
#: defaults this to **zero** (``CudaDriver.launch_control_plane_s``) so
#: existing results are bit-for-bit unchanged; experiments studying the
#: control-plane wall of fine-grained workloads opt in via
#: ``RuntimeConfig.launch_control_plane_s``, typically with this value.
CONTROL_PLANE_SECONDS = 2.5e-5
#: Fixed latency component of any memcpy (driver + DMA setup).
COPY_LATENCY_SECONDS = 1.0e-5
#: Registering the fat binary / functions at startup.
REGISTRATION_SECONDS = 1.0e-3


def kernel_seconds(spec: GPUSpec, kernel: KernelDescriptor) -> float:
    """Execution time for one launch of ``kernel`` on ``spec``.

    A kernel that can only fill ``sm_demand`` of the device's SMs runs at
    the corresponding fraction of peak whether or not it holds the whole
    device — unused multiprocessors idle, they do not accelerate it.
    """
    if kernel.flops < 0:
        raise ValueError(f"negative kernel flops: {kernel.flops}")
    fraction = 1.0
    if kernel.sm_demand is not None:
        fraction = max(1, min(kernel.sm_demand, spec.sm_count)) / spec.sm_count
    return LAUNCH_OVERHEAD_SECONDS + kernel.flops / (
        spec.effective_gflops * fraction * 1e9
    )


def copy_seconds(spec: GPUSpec, nbytes: int) -> float:
    """DMA time for ``nbytes`` across PCIe (either direction)."""
    if nbytes < 0:
        raise ValueError(f"negative copy size: {nbytes}")
    return COPY_LATENCY_SECONDS + nbytes / (spec.pcie_gbps * 1e9)
