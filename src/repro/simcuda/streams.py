"""CUDA streams: in-order asynchronous work queues.

The paper's runtime configuration "defer data transfers" vs "overlap
computation and communication" (§4.5) maps onto whether copies are issued
synchronously before a launch or queued on a stream alongside it.  The
stream model here is deliberately minimal: operations enqueued on one
stream execute in order; different streams may overlap subject to the
device's engine resources (one exec engine, one copy engine).

Each async operation returns a per-op completion :class:`~repro.sim.Event`
so callers can pipeline — enqueue several transfers, then wait for each
exactly when its result is needed.  A failing operation (device failure
mid-transfer) fails its completion event, poisons the stream, and fails
every queued and subsequently enqueued operation with the same error;
:meth:`Stream.synchronize` re-raises it in the caller, mirroring how
``cudaStreamSynchronize`` surfaces asynchronous errors.  Completion
events are pre-defused so an unobserved failure never crashes the
simulation — the error still surfaces at the next synchronize.
"""

from __future__ import annotations

import itertools
from typing import Generator, Optional

from repro.sim import Environment, Event, Store
from repro.simcuda.context import CudaContext
from repro.simcuda.driver import CudaDriver
from repro.simcuda.kernels import KernelLaunch

__all__ = ["Stream"]

_stream_ids = itertools.count(1)


class Stream:
    """An in-order asynchronous queue of device operations."""

    def __init__(self, driver: CudaDriver, ctx: CudaContext):
        self.stream_id = next(_stream_ids)
        self.driver = driver
        self.ctx = ctx
        self.env: Environment = driver.env
        self._ops: Store = Store(self.env)
        self._idle = self.env.event()
        self._idle.succeed()
        self._pending = 0
        #: Sticky asynchronous error: once an operation fails, the stream
        #: is poisoned and every later operation fails with this.
        self._error: Optional[BaseException] = None
        self._worker = self.env.process(self._run(), name=f"stream-{self.stream_id}")

    # ------------------------------------------------------------------
    def memcpy_h2d_async(self, address: int, nbytes: int) -> Event:
        return self._enqueue(("h2d", address, nbytes))

    def memcpy_d2h_async(self, address: int, nbytes: int) -> Event:
        return self._enqueue(("d2h", address, nbytes))

    def launch_async(self, launch: KernelLaunch) -> Event:
        return self._enqueue(("launch", launch, None))

    def synchronize(self) -> Generator:
        """Block the calling process until all enqueued work has drained.

        Re-raises the stream's sticky asynchronous error, if any — the
        point where a failure on a fire-and-forget operation becomes
        visible to the issuing process.
        """
        while self._pending:
            yield self._idle
        if self._error is not None:
            raise self._error
        return None

    # ------------------------------------------------------------------
    def _enqueue(self, op) -> Event:
        done = self.env.event()
        # Unobserved failures must not crash the environment; callers that
        # do wait still have the exception thrown into them.
        done.defused = True
        if self._error is not None:
            done.fail(self._error)
            return done
        self._pending += 1
        if self._idle.triggered:
            self._idle = self.env.event()
        self._ops.put((op, done))
        return done

    def _run(self) -> Generator:
        while True:
            (kind, a, b), done = yield self._ops.get()
            try:
                if self._error is not None:
                    # Poisoned: drain queued work without touching the
                    # device, failing each op with the original error.
                    raise self._error
                if kind == "h2d":
                    yield from self.driver.memcpy_h2d(self.ctx, a, b)
                elif kind == "d2h":
                    yield from self.driver.memcpy_d2h(self.ctx, a, b)
                elif kind == "launch":
                    yield from self.driver.launch(self.ctx, a)
                else:  # pragma: no cover - defensive
                    raise ValueError(f"unknown stream op {kind!r}")
            except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
                self._error = exc
                done.fail(exc)
            else:
                done.succeed()
            self._pending -= 1
            if self._pending == 0 and not self._idle.triggered:
                self._idle.succeed()
