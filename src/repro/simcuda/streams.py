"""CUDA streams: in-order asynchronous work queues.

The paper's runtime configuration "defer data transfers" vs "overlap
computation and communication" (§4.5) maps onto whether copies are issued
synchronously before a launch or queued on a stream alongside it.  The
stream model here is deliberately minimal: operations enqueued on one
stream execute in order; different streams may overlap subject to the
device's engine resources (one exec engine, one copy engine).
"""

from __future__ import annotations

import itertools
from typing import Generator

from repro.sim import Environment, Store
from repro.simcuda.context import CudaContext
from repro.simcuda.driver import CudaDriver
from repro.simcuda.kernels import KernelLaunch

__all__ = ["Stream"]

_stream_ids = itertools.count(1)


class Stream:
    """An in-order asynchronous queue of device operations."""

    def __init__(self, driver: CudaDriver, ctx: CudaContext):
        self.stream_id = next(_stream_ids)
        self.driver = driver
        self.ctx = ctx
        self.env: Environment = driver.env
        self._ops: Store = Store(self.env)
        self._idle = self.env.event()
        self._idle.succeed()
        self._pending = 0
        self._worker = self.env.process(self._run(), name=f"stream-{self.stream_id}")

    # ------------------------------------------------------------------
    def memcpy_h2d_async(self, address: int, nbytes: int) -> None:
        self._enqueue(("h2d", address, nbytes))

    def memcpy_d2h_async(self, address: int, nbytes: int) -> None:
        self._enqueue(("d2h", address, nbytes))

    def launch_async(self, launch: KernelLaunch) -> None:
        self._enqueue(("launch", launch, None))

    def synchronize(self) -> Generator:
        """Block the calling process until all enqueued work has drained."""
        while self._pending:
            yield self._idle
        return None

    # ------------------------------------------------------------------
    def _enqueue(self, op) -> None:
        self._pending += 1
        if self._idle.triggered:
            self._idle = self.env.event()
        self._ops.put(op)

    def _run(self) -> Generator:
        while True:
            kind, a, b = yield self._ops.get()
            if kind == "h2d":
                yield from self.driver.memcpy_h2d(self.ctx, a, b)
            elif kind == "d2h":
                yield from self.driver.memcpy_d2h(self.ctx, a, b)
            elif kind == "launch":
                yield from self.driver.launch(self.ctx, a)
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown stream op {kind!r}")
            self._pending -= 1
            if self._pending == 0 and not self._idle.triggered:
                self._idle.succeed()
