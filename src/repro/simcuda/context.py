"""CUDA contexts.

CUDA 3.2 associates a context to each application thread; every context
has its own device address space and an initial memory reservation, and a
device can only sustain a limited number of live contexts (the paper
measured 8 on a Tesla C2050).  The paper's runtime deliberately bounds the
number of contexts it creates (one per vGPU) to stay below that limit.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simcuda.device import GPUDevice

__all__ = ["CudaContext"]

_context_ids = itertools.count(1)


class CudaContext:
    """A live CUDA context on one device.

    Tracks the allocations made through it so the driver can validate
    pointer ownership (isolation between contexts) and release everything
    at destruction.
    """

    def __init__(self, device: "GPUDevice", owner: Optional[str] = None):
        self.context_id = next(_context_ids)
        self.device = device
        self.owner = owner
        #: device address -> size of live allocations made via this context
        self.allocations: Dict[int, int] = {}
        #: address of the per-context reservation block (None once destroyed)
        self.reservation_address: Optional[int] = None
        self.destroyed = False

    @property
    def allocated_bytes(self) -> int:
        """User allocations (excludes the context reservation)."""
        return sum(self.allocations.values())

    def owns_pointer(self, address: int) -> bool:
        return address in self.allocations

    def __repr__(self) -> str:
        state = "destroyed" if self.destroyed else "live"
        return (
            f"<CudaContext #{self.context_id} on {self.device.name} {state} "
            f"allocs={len(self.allocations)} owner={self.owner!r}>"
        )
