"""Admission control at the dispatcher's front door.

The paper's connection manager accepts every connection and lets the
waiting list grow without bound; the first overloaded tenant then
degrades everyone.  The admission controller bounds what gets *in*:

- per-tenant concurrent contexts (``Tenant.max_concurrent_contexts``);
- node-wide concurrent contexts (``RuntimeConfig.admission_max_contexts``);
- node-wide admitted footprint, summing the ``estimated_bytes`` hints
  declared in the handshake (``RuntimeConfig.admission_max_footprint_bytes``).

Two modes (``RuntimeConfig.admission_mode``):

``"queue"`` (default)
    The handshake blocks until a slot frees — backpressure the
    application feels as a slow ``open()``, not an error.
``"reject"``
    The handshake fails immediately with a typed
    ``ADMISSION_REJECTED`` error marshalled back over the RPC, so the
    application (or the cluster scheduler above it) can retry elsewhere
    instead of camping on an unbounded backlog.

Admission happens at the handshake (where tenant identity first becomes
known) inside ``Dispatcher._serve_connection``'s call loop; the slot is
returned at application exit.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.sim import Condition, Environment

from repro.core.config import RuntimeConfig
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.core.stats import RuntimeStats
from repro.qos.tenant import Tenant, TenantRegistry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Bounds admitted contexts per tenant and node-wide."""

    def __init__(
        self,
        env: Environment,
        config: RuntimeConfig,
        registry: TenantRegistry,
        stats: Optional[RuntimeStats] = None,
        obs: Any = None,
    ):
        self.env = env
        self.config = config
        self.registry = registry
        self.stats = stats or RuntimeStats()
        self.obs = obs
        #: Contexts currently holding an admission slot.
        self._admitted: List[Any] = []
        #: Fired on every slot release; queued handshakes re-check.
        self._released = Condition(env)

    # ------------------------------------------------------------------
    @property
    def admitted_count(self) -> int:
        return len(self._admitted)

    def admitted_footprint(self) -> int:
        """Sum of the declared ``estimated_bytes`` hints of admitted
        contexts (undeclared contexts count zero — the hint is advisory,
        quotas are the enforcement layer)."""
        return sum(getattr(c, "estimated_bytes", None) or 0 for c in self._admitted)

    def tenant_admitted(self, tenant: Tenant) -> int:
        return sum(1 for c in self._admitted if getattr(c, "tenant", None) is tenant)

    # ------------------------------------------------------------------
    def _refusal(self, ctx: Any, tenant: Tenant) -> Optional[str]:
        """Why ``ctx`` cannot be admitted right now (None = admissible)."""
        cap = tenant.max_concurrent_contexts
        if cap is not None and self.tenant_admitted(tenant) >= cap:
            return f"tenant {tenant.name!r} at its {cap}-context cap"
        node_cap = self.config.admission_max_contexts
        if node_cap is not None and len(self._admitted) >= node_cap:
            return f"node at its {node_cap}-context cap"
        budget = self.config.admission_max_footprint_bytes
        if budget is not None:
            estimated = getattr(ctx, "estimated_bytes", None) or 0
            if self.admitted_footprint() + estimated > budget:
                return (
                    f"admitted footprint would exceed {budget} bytes"
                )
        return None

    def admit(self, ctx: Any) -> Generator:
        """Admit ``ctx`` (blocking in queue mode), or raise
        :class:`RuntimeApiError` with ``ADMISSION_REJECTED`` in reject
        mode.  No-op when QoS is disabled or the context has no tenant.
        """
        tenant = getattr(ctx, "tenant", None)
        if not self.config.qos_enabled or tenant is None:
            return
        requested_at = self.env.now
        reason = self._refusal(ctx, tenant)
        if reason is None:
            self._admitted.append(ctx)
            self._observe(ctx, tenant, "admitted", 0.0)
            return
        if self.config.admission_mode == "reject":
            self.stats.admission_rejects += 1
            tenant.admission_rejects += 1
            self._observe(ctx, tenant, "rejected", 0.0)
            raise RuntimeApiError(
                RuntimeErrorCode.ADMISSION_REJECTED,
                f"{ctx.owner}: {reason}",
            )
        # Queue mode: backpressure through the handshake.
        self.stats.admission_queued += 1
        self._observe(ctx, tenant, "queued", 0.0)
        while True:
            yield self._released.wait()
            if self._refusal(ctx, tenant) is None:
                break
        self._admitted.append(ctx)
        self._observe(ctx, tenant, "admitted", self.env.now - requested_at)

    def release(self, ctx: Any) -> None:
        """Return ``ctx``'s slot (idempotent); wakes queued handshakes."""
        if ctx in self._admitted:
            self._admitted.remove(ctx)
            self._released.notify_all()

    # ------------------------------------------------------------------
    def _observe(self, ctx: Any, tenant: Tenant, decision: str, waited_s: float) -> None:
        if self.obs is not None and getattr(self.obs, "enabled", False):
            self.obs.tenant_admission(ctx, tenant.name, decision, waited_s)
