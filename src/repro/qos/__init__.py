"""Multi-tenant QoS: tenant identity, admission control, quotas and
preemptive time-slicing (the resource-governance layer the paper's §2
"quality of service requirements" calls for).

- :mod:`repro.qos.tenant` — :class:`Tenant` contracts (weight, quotas,
  vGPU share) and the per-node :class:`TenantRegistry`;
- :mod:`repro.qos.admission` — the :class:`AdmissionController` bounding
  admitted contexts/footprint with queue or reject backpressure.

Enforcement lives where the resources live: quota checks in the memory
manager, the vGPU-share gate in the scheduler, quantum preemption in the
dispatcher, and the ``wfq`` ordering in :mod:`repro.core.policies`.
Everything is gated on ``RuntimeConfig.qos_enabled`` (plus
``vgpu_quantum_s`` for time-slicing) and fully inert by default.
"""

from repro.qos.admission import AdmissionController
from repro.qos.tenant import Tenant, TenantRegistry

__all__ = ["AdmissionController", "Tenant", "TenantRegistry"]
