"""Tenant identity and the per-node tenant registry.

The paper's runtime time-shares GPUs between *applications*; production
multi-tenancy needs one more level: the **tenant** that owns a group of
application threads and against which resource limits are expressed
(§2's "quality of service requirements").  A :class:`Tenant` carries the
QoS contract — scheduling weight, device-memory and swap quotas, a vGPU
share and an optional deadline class — plus the live counters the
weighted-fair policy and the monitoring rollup read.

Tenants are node-side configuration: the operator registers them on the
runtime's :class:`TenantRegistry` (or lets them default-register on
first connection with no limits), and the frontend handshake names the
tenant a connection belongs to.  Resource usage is computed on demand
from the page table over the tenant's live contexts rather than
incrementally — swap, eviction, failure-recovery and free paths all move
bytes, and a derived view cannot drift.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = ["Tenant", "TenantRegistry"]


class Tenant:
    """One tenant's QoS contract and live accounting.

    Attributes
    ----------
    weight:
        Share of GPU time under the ``wfq`` scheduling policy: a tenant's
        accumulated GPU seconds are normalized by this weight, so a
        weight-2 tenant receives twice the GPU time of a weight-1 tenant
        under contention.
    device_quota_bytes:
        Cap on the tenant's *resident* device memory across all of its
        contexts.  Soft at the working-set level: a launch over quota
        first evicts the tenant's own least-recently-used entries; if the
        launch's working set alone exceeds the quota it still runs (the
        kernel could not otherwise make progress) and the overage makes
        the tenant's entries preferred victims for everyone else (the
        ``quota_aware`` eviction ordering).
    swap_quota_bytes:
        Cap on the tenant's total allocations (every allocation is swap
        backed); ``cudaMalloc`` beyond it fails with
        ``TENANT_QUOTA_EXCEEDED``.
    vgpu_share:
        Fraction of the node's vGPUs the tenant may hold concurrently
        (rounded up to at least one), enforced at binding time.
    max_concurrent_contexts:
        Admission-control cap on simultaneously admitted connections.
    deadline_class:
        Free-form QoS class label (e.g. ``"batch"``/``"interactive"``),
        surfaced in the monitoring rollup for cluster-level schedulers.
    group:
        Share group this tenant belongs to (production traces: the
        user's department/team).  The ``fairshare`` policy equalizes
        GPU time across groups before users, and the runtime estimator
        falls back to group history for cold-start users.  ``None``
        keeps the tenant flat (no group level).
    """

    def __init__(
        self,
        name: str,
        weight: float = 1.0,
        device_quota_bytes: Optional[int] = None,
        swap_quota_bytes: Optional[int] = None,
        vgpu_share: Optional[float] = None,
        max_concurrent_contexts: Optional[int] = None,
        deadline_class: Optional[str] = None,
        group: Optional[str] = None,
    ):
        if not name:
            raise ValueError("a tenant needs a name")
        if weight <= 0:
            raise ValueError(f"tenant weight must be > 0, got {weight}")
        if vgpu_share is not None and not 0 < vgpu_share <= 1:
            raise ValueError(f"vgpu_share must be in (0, 1], got {vgpu_share}")
        self.name = name
        self.weight = weight
        self.group = group
        self.device_quota_bytes = device_quota_bytes
        self.swap_quota_bytes = swap_quota_bytes
        self.vgpu_share = vgpu_share
        self.max_concurrent_contexts = max_concurrent_contexts
        self.deadline_class = deadline_class
        #: Live (connected, not yet exited) contexts of this tenant.
        self.contexts: List[Any] = []
        #: GPU seconds consumed across all contexts ever (wfq input).
        self.gpu_seconds_used = 0.0
        #: Times a context of this tenant was preempted at quantum expiry.
        self.preemptions = 0
        #: Connections turned away by the admission controller.
        self.admission_rejects = 0
        #: Cumulative swap traffic across all contexts ever (the derived
        #: ``swap_bytes`` view covers only *live* allocations; rollups
        #: and the per-tenant gauges want total data moved).
        self.swap_bytes_out_total = 0
        self.swap_bytes_in_total = 0
        #: Memo for :meth:`device_bytes`: (page-table epoch, context
        #: count) → resident bytes.  The page table bumps its epoch on
        #: every PTE state transition, so an unchanged key proves nothing
        #: anywhere in the table moved since the last walk.
        self._device_bytes_memo: Optional[tuple] = None
        #: Memo for :meth:`swap_bytes`, same keying discipline.
        self._swap_bytes_memo: Optional[tuple] = None

    # ------------------------------------------------------------------
    def attach(self, ctx: Any) -> None:
        if ctx not in self.contexts:
            self.contexts.append(ctx)

    def detach(self, ctx: Any) -> None:
        if ctx in self.contexts:
            self.contexts.remove(ctx)

    # ------------------------------------------------------------------
    def device_bytes(self, page_table: Any) -> int:
        """Resident device memory across the tenant's live contexts.

        Derived (never incrementally maintained — a derived view cannot
        drift) but *memoized* on the page table's epoch: per-tenant
        gauges are sampled by every monitor tick and every export, and
        an O(PTEs) walk per sample dwarfed the hot paths it observed.
        The walk now runs only when the table actually changed.
        """
        if not self.contexts:
            return 0
        key = (page_table.epoch, len(self.contexts))
        memo = self._device_bytes_memo
        profiler = getattr(self.contexts[0].env, "profiler", None)
        if profiler is not None:
            profiler.count("tenant_device_bytes_calls")
        if memo is not None and memo[0] == key:
            return memo[1]
        if profiler is not None:
            profiler.count("tenant_device_bytes_recomputes")
        total = sum(page_table.allocated_bytes(c) for c in self.contexts)
        self._device_bytes_memo = (key, total)
        return total

    def swap_bytes(self, page_table: Any) -> int:
        """Swap-backed allocation bytes across the tenant's live contexts.

        Derived and memoized exactly like :meth:`device_bytes`: swap
        backing changes only alongside epoch-bumping table transitions
        (entry creation/removal, context drop), so an unchanged epoch
        proves the walk would return the same total.
        """
        if not self.contexts:
            return 0
        key = (page_table.epoch, len(self.contexts))
        memo = self._swap_bytes_memo
        profiler = getattr(self.contexts[0].env, "profiler", None)
        if profiler is not None:
            profiler.count("tenant_swap_bytes_calls")
        if memo is not None and memo[0] == key:
            return memo[1]
        if profiler is not None:
            profiler.count("tenant_swap_bytes_recomputes")
        total = sum(
            p.size
            for c in self.contexts
            for p in page_table.entries_for(c)
            if p.swap_ptr is not None
        )
        self._swap_bytes_memo = (key, total)
        return total

    def normalized_gpu_seconds(self) -> float:
        """GPU seconds per unit of weight — the wfq virtual time."""
        return self.gpu_seconds_used / self.weight

    def __repr__(self) -> str:
        return (
            f"<Tenant {self.name!r} weight={self.weight} "
            f"contexts={len(self.contexts)} gpu_s={self.gpu_seconds_used:.3f}>"
        )


class TenantRegistry:
    """Per-node tenant table: operator-registered contracts plus
    default-created tenants for connections naming an unknown tenant."""

    def __init__(self) -> None:
        self._tenants: Dict[str, Tenant] = {}
        #: Called with each newly registered tenant (the runtime hooks
        #: per-tenant gauges in here).
        self.on_register: Optional[Callable[[Tenant], None]] = None
        #: Memo for :meth:`rollup`: (page-table epoch, per-tenant counter
        #: fingerprint) → the rollup dict.  Monitor ticks and exports
        #: sample the rollup far more often than tenants change.
        self._rollup_memo: Optional[tuple] = None

    def register(self, tenant: Tenant) -> Tenant:
        if tenant.name in self._tenants:
            raise ValueError(f"tenant {tenant.name!r} already registered")
        self._tenants[tenant.name] = tenant
        if self.on_register is not None:
            self.on_register(tenant)
        return tenant

    def get(self, name: str) -> Optional[Tenant]:
        return self._tenants.get(name)

    def get_or_create(self, name: str, **kwargs) -> Tenant:
        """The handshake path: unknown tenants default-register with no
        limits (weight 1.0), so naming a tenant is never an error."""
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = self.register(Tenant(name, **kwargs))
        return tenant

    def tenants(self) -> List[Tenant]:
        return list(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    # ------------------------------------------------------------------
    def rollup(self, page_table: Optional[Any] = None) -> Dict[str, Dict[str, Any]]:
        """Monitoring view for ``node_report()`` (consumed by the
        GPU-aware Torque mode and the cloud manager's dashboard).

        Memoized on the page table's epoch plus a fingerprint of every
        tenant's mutable counters: an unchanged key proves the rebuilt
        dict would be equal, so repeated monitor ticks over a quiet node
        reuse the previous snapshot.  Callers must treat the returned
        dict as an immutable snapshot.
        """
        key = (
            page_table.epoch if page_table is not None else None,
            tuple(
                (
                    t.name,
                    t.weight,
                    t.group,
                    t.deadline_class,
                    len(t.contexts),
                    t.gpu_seconds_used,
                    t.preemptions,
                    t.admission_rejects,
                    t.swap_bytes_out_total,
                    t.swap_bytes_in_total,
                    t.device_quota_bytes,
                    t.swap_quota_bytes,
                )
                for t in self._tenants.values()
            ),
        )
        memo = self._rollup_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        out: Dict[str, Dict[str, Any]] = {}
        for tenant in self._tenants.values():
            out[tenant.name] = {
                "weight": tenant.weight,
                "group": tenant.group,
                "deadline_class": tenant.deadline_class,
                "contexts": len(tenant.contexts),
                "gpu_seconds": tenant.gpu_seconds_used,
                "device_bytes": (
                    tenant.device_bytes(page_table) if page_table is not None else 0
                ),
                "swap_bytes": (
                    tenant.swap_bytes(page_table) if page_table is not None else 0
                ),
                "device_quota_bytes": tenant.device_quota_bytes,
                "swap_quota_bytes": tenant.swap_quota_bytes,
                "preemptions": tenant.preemptions,
                "admission_rejects": tenant.admission_rejects,
                "swap_bytes_out_total": tenant.swap_bytes_out_total,
                "swap_bytes_in_total": tenant.swap_bytes_in_total,
            }
        self._rollup_memo = (key, out)
        return out
