"""Structured event bus keyed on the simulation clock.

The paper's dispatcher "may expose some information to the cluster-level
scheduler" (§2); this module generalizes that introspection surface into
a zero-dependency tracing bus.  Components emit *typed events* — call
spans, swap traffic, binding changes, migrations, offloads, checkpoints,
recoveries, queue depths — through a :class:`Tracer` owned by the node
runtime.  When tracing is disabled (the default) every emission helper
returns before constructing an event, so the hot paths pay one attribute
check and nothing else; simulated time is never affected either way.

Events are plain frozen dataclasses so exporters (:mod:`repro.obs.export`)
can serialize them without reflection surprises, and tests can assert on
them structurally.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, ClassVar, Dict, List, Optional, Tuple

__all__ = [
    "CallBegin",
    "CallEnd",
    "EngineSpan",
    "SwapOut",
    "SwapIn",
    "Eviction",
    "Bind",
    "Unbind",
    "Migration",
    "Offload",
    "CheckpointTaken",
    "FailureRecovered",
    "TenantAdmission",
    "Preemption",
    "BindingDecision",
    "QueueDepthChanged",
    "PhaseBreakdown",
    "BatchSubmit",
    "GraphInstantiate",
    "GraphReplay",
    "EVENT_TYPES",
    "Tracer",
    "event_to_dict",
]


@dataclasses.dataclass(frozen=True, slots=True)
class CallBegin:
    """An intercepted call entered the dispatcher."""

    kind: ClassVar[str] = "CallBegin"
    at: float
    context: str
    method: str
    device_id: Optional[int] = None
    vgpu: Optional[str] = None
    node: str = ""
    tenant: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class CallEnd:
    """The call completed.  Carries its own begin time and duration so a
    span can be reconstructed from this event alone (binding may have
    happened mid-call, so the vGPU here is the one that served it)."""

    kind: ClassVar[str] = "CallEnd"
    at: float
    context: str
    method: str
    begin_at: float = 0.0
    duration: float = 0.0
    device_id: Optional[int] = None
    vgpu: Optional[str] = None
    error: Optional[str] = None
    node: str = ""
    tenant: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class EngineSpan:
    """One occupancy of a device engine: a DMA transfer on the copy
    engine or a kernel on the exec engine.  Emitted from the driver at
    operation end (it carries its own begin time), so the span covers
    only actual engine time — queueing for the engine is excluded.
    Concurrent copy/exec spans on one device are the §4.5
    computation/communication overlap, rendered as overlapping rows in
    the Chrome trace."""

    kind: ClassVar[str] = "EngineSpan"
    at: float
    context: str
    engine: str          # "exec" | "copy"
    op: str              # kernel name or memcpy_{h2d,d2h,peer}
    nbytes: int = 0
    begin_at: float = 0.0
    duration: float = 0.0
    device_id: Optional[int] = None
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class SwapOut:
    """One page-table entry written back / released from device memory."""

    kind: ClassVar[str] = "SwapOut"
    at: float
    context: str
    nbytes: int
    device_id: Optional[int] = None
    vgpu: Optional[str] = None
    node: str = ""
    tenant: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class SwapIn:
    """A deferred/bulk host→device transfer faulted data back in."""

    kind: ClassVar[str] = "SwapIn"
    at: float
    context: str
    nbytes: int
    device_id: Optional[int] = None
    vgpu: Optional[str] = None
    node: str = ""
    tenant: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class Eviction:
    """One device-wide partial eviction resolved a launch's memory
    pressure: the policy freed ``bytes_freed`` across ``victims``
    contexts, writing back ``dirty_bytes`` of device-dirty data."""

    kind: ClassVar[str] = "Eviction"
    at: float
    context: str          # the requester whose launch triggered it
    policy: str
    bytes_freed: int
    dirty_bytes: int
    victims: int = 0
    device_id: Optional[int] = None
    node: str = ""
    tenant: str = ""      # the requester's tenant


@dataclasses.dataclass(frozen=True, slots=True)
class Bind:
    """A context was granted a vGPU."""

    kind: ClassVar[str] = "Bind"
    at: float
    context: str
    vgpu: str
    device_id: Optional[int] = None
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class Unbind:
    """A context released (or was evicted from) its vGPU."""

    kind: ClassVar[str] = "Unbind"
    at: float
    context: str
    vgpu: str
    device_id: Optional[int] = None
    reason: str = ""
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class Migration:
    """Dynamic binding moved a job between devices (§5.3.4)."""

    kind: ClassVar[str] = "Migration"
    at: float
    context: str
    src_device: Optional[int] = None
    dst_device: Optional[int] = None
    p2p: bool = False
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class Offload:
    """A pending connection was redirected to a peer node (§4.7)."""

    kind: ClassVar[str] = "Offload"
    at: float
    context: str
    dst_node: str = ""
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class CheckpointTaken:
    """Dirty device state was written back to the swap area (§4.6)."""

    kind: ClassVar[str] = "CheckpointTaken"
    at: float
    context: str
    nbytes: int = 0
    device_id: Optional[int] = None
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class FailureRecovered:
    """A failed context was rebound and its journal replayed (§4.6)."""

    kind: ClassVar[str] = "FailureRecovered"
    at: float
    context: str
    replayed_kernels: int = 0
    device_id: Optional[int] = None
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class TenantAdmission:
    """Admission control decided on a connection's handshake: admitted
    (possibly after queueing ``waited_s``), queued, or rejected."""

    kind: ClassVar[str] = "TenantAdmission"
    at: float
    context: str
    tenant: str
    decision: str        # "admitted" | "queued" | "rejected"
    waited_s: float = 0.0
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class Preemption:
    """A context exhausted its vGPU quantum while others waited and was
    unbound at a call boundary (repro.qos time-slicing)."""

    kind: ClassVar[str] = "Preemption"
    at: float
    context: str
    vgpu: str
    quantum_s: float
    used_s: float
    tenant: str = ""
    device_id: Optional[int] = None
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class BindingDecision:
    """The transfer-cost model scored the idle vGPUs for a binding
    (§4.4 locality-aware dynamic binding): ``scores`` holds every
    candidate's (vgpu name, modeled time-to-first-kernel seconds) and
    ``chosen`` the winner.  ``resident_bytes`` is the context's
    working-set residency on the chosen device at decision time."""

    kind: ClassVar[str] = "BindingDecision"
    at: float
    context: str
    chosen: str
    device_id: Optional[int] = None
    scores: Tuple[Tuple[str, float], ...] = ()
    resident_bytes: int = 0
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class QueueDepthChanged:
    """A runtime queue (waiting contexts, pending connections, socket
    inbox) changed depth."""

    kind: ClassVar[str] = "QueueDepthChanged"
    at: float
    queue: str
    depth: int
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class PhaseBreakdown:
    """Causal latency attribution for one completed call.

    Emitted by the dispatcher when the response hits the wire, from the
    :class:`repro.obs.span.CallSpan` that travelled with the call.  The
    ``phases`` tuple decomposes ``wall`` (response time as the frontend
    experiences it: wire out, queueing, memory work, execution, wire
    back) into named buckets that sum to it exactly; ``trace_id`` groups
    all calls of one connection and ``span_id`` is the RPC request id.
    """

    kind: ClassVar[str] = "PhaseBreakdown"
    at: float
    context: str
    method: str
    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    begin_at: float = 0.0
    wall: float = 0.0
    phases: Tuple[Tuple[str, float], ...] = ()
    tenant: str = ""
    error: Optional[str] = None
    device_id: Optional[int] = None
    vgpu: Optional[str] = None
    node: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class BatchSubmit:
    """A batch frame arrived at the dispatcher: ``calls`` journaled calls
    executing in one scheduler round-trip (control-plane batching)."""

    kind: ClassVar[str] = "BatchSubmit"
    at: float
    context: str
    calls: int
    wire_bytes: int = 0
    node: str = ""
    tenant: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class GraphInstantiate:
    """A launch sequence was instantiated as a replayable graph —
    explicitly (stream capture) or by journal repeat detection."""

    kind: ClassVar[str] = "GraphInstantiate"
    at: float
    context: str
    graph_id: int
    kernels: int
    explicit: bool = False
    node: str = ""
    tenant: str = ""


@dataclasses.dataclass(frozen=True, slots=True)
class GraphReplay:
    """An instantiated graph was re-issued whole.  ``invalidated`` marks
    replays whose cached translations had gone stale (a journaled buffer
    was evicted between replays), forcing the full per-launch path."""

    kind: ClassVar[str] = "GraphReplay"
    at: float
    context: str
    graph_id: int
    kernels: int
    invalidated: bool = False
    device_id: Optional[int] = None
    node: str = ""
    tenant: str = ""


EVENT_TYPES: Tuple[type, ...] = (
    CallBegin,
    CallEnd,
    EngineSpan,
    SwapOut,
    SwapIn,
    Eviction,
    Bind,
    Unbind,
    Migration,
    Offload,
    CheckpointTaken,
    FailureRecovered,
    TenantAdmission,
    Preemption,
    BindingDecision,
    QueueDepthChanged,
    PhaseBreakdown,
    BatchSubmit,
    GraphInstantiate,
    GraphReplay,
)


def event_to_dict(event: Any) -> Dict[str, Any]:
    """A JSON-ready dict with the event's ``kind`` folded in."""
    d = dataclasses.asdict(event)
    d["kind"] = event.kind
    return d


def _ctx_location(ctx) -> Tuple[Optional[int], Optional[str]]:
    """(device_id, vgpu name) of a runtime context, or (None, None)."""
    vgpu = getattr(ctx, "vgpu", None)
    if vgpu is None:
        return None, None
    return vgpu.device.device_id, vgpu.name


def _ctx_tenant(ctx) -> str:
    """The context's tenant name, or "" before the handshake names one."""
    return getattr(getattr(ctx, "tenant", None), "name", "")


class Tracer:
    """Per-runtime event sink.

    ``enabled`` gates everything: the emission helpers below return
    immediately when it is False, so instrumented hot paths cost one
    attribute load.  Subscribers (live consumers such as a streaming
    exporter) are called synchronously with each event.
    """

    __slots__ = ("env", "enabled", "node", "events", "subscribers")

    def __init__(self, env, enabled: bool = False, node: str = ""):
        self.env = env
        self.enabled = enabled
        self.node = node
        self.events: List[Any] = []
        self.subscribers: List[Callable[[Any], None]] = []

    # ------------------------------------------------------------------
    def emit(self, event: Any) -> None:
        """Record one already-constructed event (no enabled check: the
        helpers below guard before construction)."""
        self.events.append(event)
        for fn in self.subscribers:
            fn(event)

    def clear(self) -> None:
        self.events.clear()

    def events_of(self, *kinds: type) -> List[Any]:
        return [e for e in self.events if isinstance(e, kinds)]

    # ------------------------------------------------------------------
    # emission helpers (each is a no-op while disabled)
    # ------------------------------------------------------------------
    def call_begin(self, ctx, method) -> Optional[float]:
        if not self.enabled:
            return None
        at = self.env.now
        device_id, vgpu = _ctx_location(ctx)
        self.emit(
            CallBegin(
                at=at,
                context=ctx.owner,
                method=getattr(method, "value", str(method)),
                device_id=device_id,
                vgpu=vgpu,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )
        return at

    def call_end(
        self, ctx, method, begin_at: Optional[float], error: Optional[str] = None
    ) -> None:
        if not self.enabled or begin_at is None:
            return
        at = self.env.now
        device_id, vgpu = _ctx_location(ctx)
        self.emit(
            CallEnd(
                at=at,
                context=ctx.owner,
                method=getattr(method, "value", str(method)),
                begin_at=begin_at,
                duration=at - begin_at,
                device_id=device_id,
                vgpu=vgpu,
                error=error,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )

    def phase_breakdown(self, ctx, method, span, error: Optional[str] = None) -> None:
        """Emit the call's phase decomposition from its finished span."""
        if not self.enabled or span is None:
            return
        device_id, vgpu = _ctx_location(ctx)
        phases = span.finish()
        self.emit(
            PhaseBreakdown(
                at=self.env.now,
                context=ctx.owner,
                method=getattr(method, "value", str(method)),
                trace_id=span.trace_id,
                span_id=span.span_id,
                begin_at=span.begin_at,
                wall=span.wall,
                phases=tuple(sorted(phases.items())),
                tenant=_ctx_tenant(ctx),
                error=error,
                device_id=device_id,
                vgpu=vgpu,
                node=self.node,
            )
        )

    def engine_span(
        self, device, engine: str, op: str, nbytes: int, owner: str, begin_at: float
    ) -> None:
        if not self.enabled:
            return
        at = self.env.now
        self.emit(
            EngineSpan(
                at=at,
                context=owner,
                engine=engine,
                op=op,
                nbytes=nbytes,
                begin_at=begin_at,
                duration=at - begin_at,
                device_id=device.device_id,
                node=self.node,
            )
        )

    def swap_out(self, ctx, nbytes: int) -> None:
        if not self.enabled:
            return
        device_id, vgpu = _ctx_location(ctx)
        self.emit(
            SwapOut(
                at=self.env.now,
                context=ctx.owner,
                nbytes=nbytes,
                device_id=device_id,
                vgpu=vgpu,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )

    def swap_in(self, ctx, nbytes: int) -> None:
        if not self.enabled:
            return
        device_id, vgpu = _ctx_location(ctx)
        self.emit(
            SwapIn(
                at=self.env.now,
                context=ctx.owner,
                nbytes=nbytes,
                device_id=device_id,
                vgpu=vgpu,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )

    def eviction(
        self, ctx, policy: str, bytes_freed: int, dirty_bytes: int, victims: int
    ) -> None:
        if not self.enabled:
            return
        device_id, _vgpu = _ctx_location(ctx)
        self.emit(
            Eviction(
                at=self.env.now,
                context=ctx.owner,
                policy=policy,
                bytes_freed=bytes_freed,
                dirty_bytes=dirty_bytes,
                victims=victims,
                device_id=device_id,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )

    def bind(self, ctx, vgpu) -> None:
        if not self.enabled:
            return
        self.emit(
            Bind(
                at=self.env.now,
                context=ctx.owner,
                vgpu=vgpu.name,
                device_id=vgpu.device.device_id,
                node=self.node,
            )
        )

    def unbind(self, ctx, vgpu, reason: str = "") -> None:
        if not self.enabled:
            return
        self.emit(
            Unbind(
                at=self.env.now,
                context=ctx.owner,
                vgpu=vgpu.name,
                device_id=vgpu.device.device_id,
                reason=reason,
                node=self.node,
            )
        )

    def migration(self, ctx, src_device, dst_device, p2p: bool = False) -> None:
        if not self.enabled:
            return
        self.emit(
            Migration(
                at=self.env.now,
                context=ctx.owner,
                src_device=src_device.device_id if src_device is not None else None,
                dst_device=dst_device.device_id if dst_device is not None else None,
                p2p=p2p,
                node=self.node,
            )
        )

    def offload(self, connection_name: str, dst_node: str) -> None:
        if not self.enabled:
            return
        self.emit(
            Offload(
                at=self.env.now,
                context=connection_name,
                dst_node=dst_node,
                node=self.node,
            )
        )

    def checkpoint(self, ctx, nbytes: int) -> None:
        if not self.enabled:
            return
        device_id, _vgpu = _ctx_location(ctx)
        self.emit(
            CheckpointTaken(
                at=self.env.now,
                context=ctx.owner,
                nbytes=nbytes,
                device_id=device_id,
                node=self.node,
            )
        )

    def failure_recovered(self, ctx, replayed_kernels: int) -> None:
        if not self.enabled:
            return
        device_id, _vgpu = _ctx_location(ctx)
        self.emit(
            FailureRecovered(
                at=self.env.now,
                context=ctx.owner,
                replayed_kernels=replayed_kernels,
                device_id=device_id,
                node=self.node,
            )
        )

    def tenant_admission(
        self, ctx, tenant: str, decision: str, waited_s: float = 0.0
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            TenantAdmission(
                at=self.env.now,
                context=ctx.owner,
                tenant=tenant,
                decision=decision,
                waited_s=waited_s,
                node=self.node,
            )
        )

    def preemption(self, ctx, vgpu, quantum_s: float, used_s: float) -> None:
        if not self.enabled:
            return
        self.emit(
            Preemption(
                at=self.env.now,
                context=ctx.owner,
                vgpu=vgpu.name,
                quantum_s=quantum_s,
                used_s=used_s,
                tenant=getattr(getattr(ctx, "tenant", None), "name", ""),
                device_id=vgpu.device.device_id,
                node=self.node,
            )
        )

    def binding_decision(self, ctx, vgpu, scored, resident_bytes: int = 0) -> None:
        if not self.enabled:
            return
        self.emit(
            BindingDecision(
                at=self.env.now,
                context=ctx.owner,
                chosen=vgpu.name,
                device_id=vgpu.device.device_id,
                scores=tuple((v.name, cost) for v, cost in scored),
                resident_bytes=resident_bytes,
                node=self.node,
            )
        )

    def batch_submit(self, ctx, calls: int, wire_bytes: int = 0) -> None:
        if not self.enabled:
            return
        self.emit(
            BatchSubmit(
                at=self.env.now,
                context=ctx.owner,
                calls=calls,
                wire_bytes=wire_bytes,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )

    def graph_instantiate(
        self, ctx, graph_id: int, kernels: int, explicit: bool = False
    ) -> None:
        if not self.enabled:
            return
        self.emit(
            GraphInstantiate(
                at=self.env.now,
                context=ctx.owner,
                graph_id=graph_id,
                kernels=kernels,
                explicit=explicit,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )

    def graph_replay(
        self, ctx, graph_id: int, kernels: int, invalidated: bool = False
    ) -> None:
        if not self.enabled:
            return
        device_id, _vgpu = _ctx_location(ctx)
        self.emit(
            GraphReplay(
                at=self.env.now,
                context=ctx.owner,
                graph_id=graph_id,
                kernels=kernels,
                invalidated=invalidated,
                device_id=device_id,
                node=self.node,
                tenant=_ctx_tenant(ctx),
            )
        )

    def queue_depth(self, queue: str, depth: int) -> None:
        if not self.enabled:
            return
        self.emit(
            QueueDepthChanged(
                at=self.env.now, queue=queue, depth=depth, node=self.node
            )
        )

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<Tracer {self.node or 'anonymous'} {state} events={len(self.events)}>"
