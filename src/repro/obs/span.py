"""Causal call spans: stack-based phase attribution for one API call.

A :class:`CallSpan` travels with a call from the moment the frontend's
RPC request hits the wire until the dispatcher sends the response back.
Along the way the processes that *own* the call push and pop named
phases (``queue_wait`` while blocked on the context lock, ``bind_wait``
in the scheduler queue, ``fault_in`` while staging pages, ...); the span
settles elapsed simulated time into whichever phase is on top of the
stack at each transition, so by construction

    sum(phases.values()) == wall  (== env.now - begin_at at finish)

holds exactly — under overlapped transfers, chunked swapping and
preemption alike.  Time spent with an empty stack lands in the
``"other"`` bucket (dispatcher overhead, registration, bookkeeping).

Ownership rule: only the process executing the call may touch the
call's span.  Work done *to* a context by somebody else (a reaper
swapping a victim out, a requester draining a victim's write-backs)
accrues to the *requester's* current phase — that is the causal story
the breakdown tells.

The span reads :attr:`Environment.now` only; it never schedules events
and therefore never perturbs simulated time.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

__all__ = ["CallSpan", "PHASES"]

#: The named phases a call's latency decomposes into.  ``other`` is the
#: residual (time with no phase pushed); everything else is pushed
#: explicitly by the owning process.
PHASES = (
    "rpc",
    "batch_queue",
    "queue_wait",
    "bind_wait",
    "fault_in",
    "eviction_stall",
    "writeback_drain",
    "exec",
    "graph_replay",
    "preempted",
    "other",
)

#: Fallback trace-id source for spans created without an inbound id.
_span_ids = itertools.count(1)


class CallSpan:
    """Phase recorder for a single API call.

    Parameters
    ----------
    env:
        The simulation environment (for :attr:`~Environment.now`).
    trace_id:
        Connection-scoped id propagated from the frontend; groups all
        spans of one application connection.
    span_id:
        Per-call id (the RPC request id on the wire).
    begin_at:
        When the call causally began — the RPC ``sent_at`` timestamp.
        If it predates span creation, the gap is credited to ``rpc``
        (the request's wire leg).  Defaults to ``env.now``.
    wire_at:
        For batched calls only: when the call actually hit the wire.
        The pre-history then splits at this point — ``begin_at`` to
        ``wire_at`` was spent journaled in the frontend's batch
        (``batch_queue``), ``wire_at`` to now on the wire (``rpc``).
        The frame's request wire leg is the *first* call's; later calls
        pass ``wire_at == arrival`` so their whole wait is queue time.
    """

    __slots__ = ("env", "trace_id", "span_id", "begin_at", "phases", "_stack", "_since")

    def __init__(
        self,
        env,
        trace_id: Optional[int] = None,
        span_id: Optional[int] = None,
        begin_at: Optional[float] = None,
        wire_at: Optional[float] = None,
    ):
        self.env = env
        self.trace_id = trace_id if trace_id is not None else next(_span_ids)
        self.span_id = span_id if span_id is not None else self.trace_id
        self.begin_at = float(env.now if begin_at is None else begin_at)
        self.phases: Dict[str, float] = {}
        self._stack: List[str] = []
        self._since = env.now
        if self.begin_at < self._since:
            # Time before the server saw the request: all wire on the
            # plain path; journaled-then-wire when the call was batched.
            if wire_at is None:
                self.phases["rpc"] = self._since - self.begin_at
            else:
                split = min(max(float(wire_at), self.begin_at), self._since)
                if split > self.begin_at:
                    self.phases["batch_queue"] = split - self.begin_at
                if self._since > split:
                    self.phases["rpc"] = self._since - split

    # ------------------------------------------------------------------
    def _settle(self) -> None:
        now = self.env.now
        dt = now - self._since
        if dt:
            name = self._stack[-1] if self._stack else "other"
            self.phases[name] = self.phases.get(name, 0.0) + dt
        self._since = now

    def push(self, phase: str) -> None:
        """Enter ``phase``; time now accrues to it until the matching pop."""
        self._settle()
        self._stack.append(phase)

    def pop(self) -> None:
        """Leave the innermost phase (no-op on an empty stack)."""
        self._settle()
        if self._stack:
            self._stack.pop()

    # ------------------------------------------------------------------
    @property
    def wall(self) -> float:
        """Elapsed time since the call causally began."""
        return self.env.now - self.begin_at

    def finish(self) -> Dict[str, float]:
        """Settle outstanding time and return the phase map."""
        self._settle()
        return dict(self.phases)

    def __repr__(self) -> str:
        return (
            f"<CallSpan trace={self.trace_id} span={self.span_id} "
            f"wall={self.wall:.6f} stack={self._stack!r}>"
        )
