"""Run-scoped collection: attach tracing to runtimes, export afterwards.

The experiment harness creates one :class:`ObsCollector` per batch run
(when asked to) and attaches it to every node runtime before jobs start;
any figure driver can then dump a Chrome trace / metrics file for the
run it just measured without touching runtime internals.

A collector given output paths up front also guards against abnormal
shutdown: it registers an ``atexit`` hook (and doubles as a context
manager) so a run killed mid-way — an unhandled model error, Ctrl-C, a
CI timeout — still flushes whatever events it captured to readable
trace files.  :meth:`flush` is idempotent; a clean exit writes once.
"""

from __future__ import annotations

import atexit
from typing import Any, List, Optional, TYPE_CHECKING

from repro.obs.export import (
    chrome_trace,
    json_lines,
    prometheus_text,
    write_chrome_trace,
    write_json_lines,
    write_prometheus,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["ObsCollector"]


class ObsCollector:
    """Aggregates the tracers and metric registries of attached runtimes."""

    def __init__(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        events_path: Optional[str] = None,
    ) -> None:
        self.runtimes: List["NodeRuntime"] = []
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.events_path = events_path
        self._flushed = False
        self._atexit_registered = False
        if trace_path or metrics_path or events_path:
            atexit.register(self._atexit_flush)
            self._atexit_registered = True

    def attach(self, runtime: "NodeRuntime") -> None:
        """Enable tracing on ``runtime`` and adopt its event/metric state."""
        if runtime in self.runtimes:
            return
        runtime.obs.enabled = True
        self.runtimes.append(runtime)

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Any]:
        """All attached runtimes' events, merged in clock order."""
        merged: List[Any] = []
        for runtime in self.runtimes:
            merged.extend(runtime.obs.events)
        merged.sort(key=lambda e: e.at)
        return merged

    def chrome_trace(self) -> dict:
        return chrome_trace(self.events)

    def prometheus_text(self) -> str:
        return prometheus_text(*[r.metrics for r in self.runtimes])

    def json_lines(self) -> str:
        return json_lines(self.events)

    # ------------------------------------------------------------------
    def write_trace(self, path: str) -> None:
        write_chrome_trace(path, self.events)

    def write_metrics(self, path: str) -> None:
        write_prometheus(path, *[r.metrics for r in self.runtimes])

    def write_events(self, path: str) -> None:
        write_json_lines(path, self.events)

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write every configured output file (idempotent)."""
        if self._flushed:
            return
        self._flushed = True
        if self._atexit_registered:
            atexit.unregister(self._atexit_flush)
            self._atexit_registered = False
        if self.trace_path:
            self.write_trace(self.trace_path)
        if self.metrics_path:
            self.write_metrics(self.metrics_path)
        if self.events_path:
            self.write_events(self.events_path)

    def _atexit_flush(self) -> None:
        # Interpreter teardown: never let a flush failure mask the
        # original crash (and half a trace beats no trace).
        try:
            self.flush()
        except Exception:  # pragma: no cover - best-effort guard
            pass

    def __enter__(self) -> "ObsCollector":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.flush()

    def __repr__(self) -> str:
        n_events = sum(len(r.obs.events) for r in self.runtimes)
        return f"<ObsCollector runtimes={len(self.runtimes)} events={n_events}>"
