"""Run-scoped collection: attach tracing to runtimes, export afterwards.

The experiment harness creates one :class:`ObsCollector` per batch run
(when asked to) and attaches it to every node runtime before jobs start;
any figure driver can then dump a Chrome trace / metrics file for the
run it just measured without touching runtime internals.
"""

from __future__ import annotations

from typing import Any, List, TYPE_CHECKING

from repro.obs.export import (
    chrome_trace,
    json_lines,
    prometheus_text,
    write_chrome_trace,
    write_json_lines,
    write_prometheus,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import NodeRuntime

__all__ = ["ObsCollector"]


class ObsCollector:
    """Aggregates the tracers and metric registries of attached runtimes."""

    def __init__(self) -> None:
        self.runtimes: List["NodeRuntime"] = []

    def attach(self, runtime: "NodeRuntime") -> None:
        """Enable tracing on ``runtime`` and adopt its event/metric state."""
        if runtime in self.runtimes:
            return
        runtime.obs.enabled = True
        self.runtimes.append(runtime)

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[Any]:
        """All attached runtimes' events, merged in clock order."""
        merged: List[Any] = []
        for runtime in self.runtimes:
            merged.extend(runtime.obs.events)
        merged.sort(key=lambda e: e.at)
        return merged

    def chrome_trace(self) -> dict:
        return chrome_trace(self.events)

    def prometheus_text(self) -> str:
        return prometheus_text(*[r.metrics for r in self.runtimes])

    def json_lines(self) -> str:
        return json_lines(self.events)

    # ------------------------------------------------------------------
    def write_trace(self, path: str) -> None:
        write_chrome_trace(path, self.events)

    def write_metrics(self, path: str) -> None:
        write_prometheus(path, *[r.metrics for r in self.runtimes])

    def write_events(self, path: str) -> None:
        write_json_lines(path, self.events)

    def __repr__(self) -> str:
        n_events = sum(len(r.obs.events) for r in self.runtimes)
        return f"<ObsCollector runtimes={len(self.runtimes)} events={n_events}>"
