"""Lightweight metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the one consistent schema the runtime
exposes — :func:`repro.core.monitor.node_report` embeds its snapshot, the
GPU-aware TORQUE mode and the VM-cloud manager read it, and the
Prometheus/JSON exporters in :mod:`repro.obs.export` serialize it.

The registry *wraps* :class:`~repro.core.stats.RuntimeStats` rather than
replacing it: the flat dataclass counters stay the source of truth for
the figure benches, and :meth:`MetricsRegistry.attach_stats` folds them
into every snapshot/export as counters.  Gauges may be backed by a
callback so the snapshot always reflects live runtime state without the
runtime pushing updates.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "BYTES_BUCKETS",
    "QUEUE_WAIT_BUCKETS_S",
]

#: Call latency: interception overhead is tens of µs; kernels run seconds.
LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)
#: Swap traffic: one PTE ranges from KiBs to the paper's GiB-sized inputs.
BYTES_BUCKETS: Tuple[float, ...] = (
    4 * 1024.0,
    64 * 1024.0,
    1024.0**2,
    16 * 1024.0**2,
    256 * 1024.0**2,
    1024.0**3,
    4 * 1024.0**3,
)
#: vGPU queue wait: zero when idle vGPUs exist, seconds-to-minutes when
#: the node is oversubscribed.
QUEUE_WAIT_BUCKETS_S: Tuple[float, ...] = (
    1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0,
)


class Counter:
    """A monotonically increasing value."""

    metric_type = "counter"
    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down; optionally callback-backed."""

    metric_type = "gauge"
    __slots__ = ("name", "help", "_value", "_fn")

    def __init__(self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None):
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative export).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket is always
    present.  Observations are binned with :func:`bisect.bisect_left` so
    a value equal to a bound lands in that bound's bucket (``le`` —
    *less than or equal* — semantics).
    """

    metric_type = "histogram"
    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ):
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        bounds = sorted(set(float(b) for b in buckets))
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"histogram {name} buckets must be finite")
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(bounds)
        #: counts[i] observations fell in (bounds[i-1], bounds[i]];
        #: counts[-1] is the +Inf overflow bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """[(upper_bound, cumulative_count)...] ending with (inf, count)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {str(b): c for b, c in self.cumulative()},
        }


class MetricsRegistry:
    """Named metrics for one node runtime.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object; asking with a conflicting
    type raises.  ``node`` becomes the Prometheus label on every exported
    sample, so multi-node collections merge into one scrape body.
    """

    def __init__(self, node: str = ""):
        self.node = node
        self._metrics: Dict[str, Any] = {}
        #: (prefix, stats-like object with .as_dict()) pairs folded into
        #: snapshots as counters.
        self._stats_sources: List[Tuple[str, Any]] = []

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, *args, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.metric_type}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(
        self, name: str, help: str = "", fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, fn)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets)

    def attach_stats(self, stats: Any, prefix: str = "runtime_") -> None:
        """Fold a ``RuntimeStats``-like object (anything with
        ``as_dict()``) into snapshots and exports as counters."""
        self._stats_sources.append((prefix, stats))

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def metrics(self) -> List[Any]:
        return list(self._metrics.values())

    def snapshot(self) -> Dict[str, Any]:
        """Flat name→value dict: counters/gauges as numbers, histograms
        as ``{count, sum, buckets}`` sub-dicts, attached stats counters
        under their prefix."""
        snap: Dict[str, Any] = {}
        for prefix, stats in self._stats_sources:
            for key, value in stats.as_dict().items():
                snap[f"{prefix}{key}"] = value
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                snap[name] = metric.snapshot()
            else:
                snap[name] = metric.value
        return snap

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {self.node or 'anonymous'} "
            f"metrics={len(self._metrics)} stats_sources={len(self._stats_sources)}>"
        )
