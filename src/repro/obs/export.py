"""Exporters: Chrome trace-event JSON, Prometheus text, JSON lines.

The Chrome trace maps the runtime's sharing structure onto the trace
viewer's process/thread hierarchy: one "process" per physical device
(plus one host-side pseudo-process per node for calls served while
unbound), one "thread" per vGPU — so Perfetto / ``chrome://tracing``
render exactly the paper's time-sharing timeline: which application held
which vGPU when, with swaps, migrations and offloads as instant markers.

Timestamps are simulated seconds converted to the trace format's
microseconds.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import (
    Bind,
    BindingDecision,
    CallEnd,
    CheckpointTaken,
    EngineSpan,
    Eviction,
    FailureRecovered,
    Migration,
    Offload,
    PhaseBreakdown,
    Preemption,
    QueueDepthChanged,
    SwapIn,
    SwapOut,
    TenantAdmission,
    Unbind,
    event_to_dict,
)
from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
    "json_lines",
    "write_json_lines",
]

#: Instant-event kinds shown as markers on the owning vGPU row (or the
#: node's host row when the event carries no device).
_INSTANT_KINDS = (
    SwapOut,
    SwapIn,
    Eviction,
    Bind,
    Unbind,
    Migration,
    Offload,
    CheckpointTaken,
    FailureRecovered,
    TenantAdmission,
    Preemption,
    BindingDecision,
    QueueDepthChanged,
    PhaseBreakdown,
)

_US = 1e6  # seconds → trace-event microseconds


class _IdMaps:
    """Stable pid/tid assignment over (node, device) and row labels."""

    def __init__(self) -> None:
        self._pids: Dict[Tuple[str, Optional[int]], int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self.process_names: Dict[int, str] = {}
        self.thread_names: Dict[Tuple[int, int], str] = {}

    def pid(self, node: str, device_id: Optional[int]) -> int:
        key = (node, device_id)
        if key not in self._pids:
            self._pids[key] = len(self._pids) + 1
            label = f"{node or 'node'}/GPU{device_id}" if device_id is not None else (
                f"{node or 'node'}/runtime"
            )
            self.process_names[self._pids[key]] = label
        return self._pids[key]

    def tid(self, pid: int, label: str) -> int:
        key = (pid, label)
        if key not in self._tids:
            self._tids[key] = len([k for k in self._tids if k[0] == pid]) + 1
            self.thread_names[(pid, self._tids[key])] = label
        return self._tids[key]


def _row(maps: _IdMaps, event: Any) -> Tuple[int, int]:
    """(pid, tid) for one event: vGPU row when bound, else a per-context
    (or per-queue) row in the node's host pseudo-process."""
    device_id = getattr(event, "device_id", None)
    pid = maps.pid(event.node, device_id)
    if getattr(event, "vgpu", None) is not None:
        label = event.vgpu
    elif isinstance(event, QueueDepthChanged):
        label = event.queue
    else:
        label = getattr(event, "context", "runtime")
    return pid, maps.tid(pid, label)


def _args(event: Any) -> Dict[str, Any]:
    d = event_to_dict(event)
    for drop in ("at", "kind", "node"):
        d.pop(drop, None)
    return {k: v for k, v in d.items() if v is not None}


def chrome_trace(events: Iterable[Any]) -> Dict[str, Any]:
    """Build a ``chrome://tracing`` / Perfetto JSON object.

    ``CallEnd`` events become complete ("X") spans — they carry their own
    begin time — and every other event kind becomes a thread-scoped
    instant ("i") marker.
    """
    maps = _IdMaps()
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        if isinstance(event, EngineSpan):
            # One row per device engine, so concurrent copy/exec spans
            # render as the §4.5 overlap directly under the vGPU rows.
            pid = maps.pid(event.node, event.device_id)
            tid = maps.tid(pid, f"{event.engine}-engine")
            trace_events.append(
                {
                    "name": event.op,
                    "cat": "engine",
                    "ph": "X",
                    "ts": event.begin_at * _US,
                    "dur": event.duration * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": _args(event),
                }
            )
        elif isinstance(event, CallEnd):
            pid, tid = _row(maps, event)
            trace_events.append(
                {
                    "name": event.method,
                    "cat": "call",
                    "ph": "X",
                    "ts": event.begin_at * _US,
                    "dur": event.duration * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": _args(event),
                }
            )
        elif isinstance(event, _INSTANT_KINDS):
            pid, tid = _row(maps, event)
            trace_events.append(
                {
                    "name": event.kind,
                    "cat": "runtime",
                    "ph": "i",
                    "s": "t",
                    "ts": event.at * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": _args(event),
                }
            )
        # CallBegin carries no information its CallEnd lacks; skipped to
        # keep traces half the size.
    metadata: List[Dict[str, Any]] = []
    for pid, name in sorted(maps.process_names.items()):
        metadata.append(
            {"name": "process_name", "ph": "M", "pid": pid, "args": {"name": name}}
        )
    for (pid, tid), name in sorted(maps.thread_names.items()):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {"traceEvents": metadata + trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Iterable[Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events), fh)


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _sanitize(name: str) -> str:
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _labels(registry: MetricsRegistry, extra: str = "") -> str:
    parts = []
    if registry.node:
        parts.append(f'node="{registry.node}"')
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(*registries: MetricsRegistry) -> str:
    """Prometheus exposition text for one or more node registries.

    Each sample carries a ``node`` label, so registries from different
    nodes coexist in one scrape body; HELP/TYPE headers are emitted once
    per metric name.
    """
    lines: List[str] = []
    seen_headers = set()

    def header(name: str, mtype: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")

    for registry in registries:
        for prefix, stats in registry._stats_sources:
            for key, value in sorted(stats.as_dict().items()):
                name = _sanitize(f"{prefix}{key}")
                header(name, "counter", f"RuntimeStats.{key}")
                lines.append(f"{name}{_labels(registry)} {_fmt(value)}")
        for metric in registry.metrics():
            name = _sanitize(metric.name)
            if isinstance(metric, Histogram):
                header(name, "histogram", metric.help)
                for bound, cum in metric.cumulative():
                    le = 'le="%s"' % _fmt(bound)
                    lines.append(f"{name}_bucket{_labels(registry, le)} {cum}")
                lines.append(f"{name}_sum{_labels(registry)} {_fmt(metric.sum)}")
                lines.append(f"{name}_count{_labels(registry)} {metric.count}")
            else:
                header(name, metric.metric_type, metric.help)
                lines.append(f"{name}{_labels(registry)} {_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, *registries: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(*registries))


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------

def json_lines(events: Iterable[Any]) -> str:
    """One JSON object per line, ``kind`` field first for grep-ability."""
    return "\n".join(
        json.dumps(event_to_dict(e), sort_keys=True) for e in events
    ) + "\n"


def write_json_lines(path: str, events: Iterable[Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json_lines(events))
