"""Observability: structured tracing and metrics for the runtime.

Three layers (see ``docs/observability.md``):

- :mod:`repro.obs.events` — a zero-dependency structured event bus keyed
  on the simulation clock (:class:`Tracer` + typed events);
- :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  in a :class:`MetricsRegistry` that wraps ``RuntimeStats``;
- :mod:`repro.obs.export` — Chrome trace-event JSON (one process per
  device, one thread per vGPU), Prometheus text, and JSON-lines dumps.

:class:`ObsCollector` ties them together for one experiment run.
"""

from repro.obs.events import (
    BatchSubmit,
    Bind,
    BindingDecision,
    CallBegin,
    CallEnd,
    CheckpointTaken,
    EngineSpan,
    EVENT_TYPES,
    Eviction,
    FailureRecovered,
    GraphInstantiate,
    GraphReplay,
    Migration,
    Offload,
    PhaseBreakdown,
    Preemption,
    QueueDepthChanged,
    SwapIn,
    SwapOut,
    TenantAdmission,
    Tracer,
    Unbind,
    event_to_dict,
)
from repro.obs.span import CallSpan, PHASES
from repro.obs.slo import SLOMonitor, percentile
from repro.obs.report import (
    aggregate_phases,
    critical_path,
    job_completion,
    load_phase_breakdowns,
    per_user_jct,
    render_jobs_report,
    render_report,
)
from repro.obs.metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    QUEUE_WAIT_BUCKETS_S,
)
from repro.obs.export import (
    chrome_trace,
    json_lines,
    prometheus_text,
    write_chrome_trace,
    write_json_lines,
    write_prometheus,
)
from repro.obs.collector import ObsCollector

__all__ = [
    # events
    "BatchSubmit",
    "Bind",
    "BindingDecision",
    "CallBegin",
    "CallEnd",
    "CheckpointTaken",
    "EngineSpan",
    "EVENT_TYPES",
    "Eviction",
    "FailureRecovered",
    "GraphInstantiate",
    "GraphReplay",
    "Migration",
    "Offload",
    "PhaseBreakdown",
    "Preemption",
    "QueueDepthChanged",
    "SwapIn",
    "SwapOut",
    "TenantAdmission",
    "Tracer",
    "Unbind",
    "event_to_dict",
    # spans + SLO + analyzer
    "CallSpan",
    "PHASES",
    "SLOMonitor",
    "percentile",
    "aggregate_phases",
    "critical_path",
    "job_completion",
    "load_phase_breakdowns",
    "per_user_jct",
    "render_jobs_report",
    "render_report",
    # metrics
    "BYTES_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "QUEUE_WAIT_BUCKETS_S",
    # export
    "chrome_trace",
    "json_lines",
    "prometheus_text",
    "write_chrome_trace",
    "write_json_lines",
    "write_prometheus",
    # collector
    "ObsCollector",
]
