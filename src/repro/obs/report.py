"""Bottleneck attribution from a JSON-lines trace: ``repro obs report``.

Reads the events dumped by ``repro run --events-out`` (one JSON object
per line, as written by :func:`repro.obs.export.json_lines`), keeps the
``PhaseBreakdown`` records, and aggregates them into the tables an
operator diagnosing interference wants first:

- per-tenant: calls, total turnaround, and the share of that turnaround
  spent in each named phase (queue_wait vs fault_in vs exec ...);
- per-context: the same, so one noisy application stands out within a
  tenant;
- critical path: the slowest individual calls with their dominant
  phases — where to look first.

Attribution quality is reported explicitly: the ``named%`` column is
the fraction of turnaround covered by named (non-``other``) phases.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.span import PHASES

__all__ = [
    "load_phase_breakdowns",
    "aggregate_phases",
    "critical_path",
    "job_completion",
    "per_user_jct",
    "render_report",
    "render_jobs_report",
]

#: Column order for phase tables: every named phase, residual last.
_NAMED = tuple(p for p in PHASES if p != "other")


def load_phase_breakdowns(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Parse JSON-lines text into PhaseBreakdown dicts (other kinds and
    malformed lines are skipped — truncated traces must stay readable)."""
    out: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("kind") == "PhaseBreakdown":
            out.append(record)
    return out


def _phases_of(record: Dict[str, Any]) -> Dict[str, float]:
    return {name: float(seconds) for name, seconds in record.get("phases", ())}


def aggregate_phases(
    records: List[Dict[str, Any]], key: str
) -> Dict[str, Dict[str, Any]]:
    """Group PhaseBreakdown records by ``key`` ("tenant" or "context"),
    summing wall time and per-phase seconds."""
    groups: Dict[str, Dict[str, Any]] = {}
    for record in records:
        name = record.get(key) or "-"
        g = groups.get(name)
        if g is None:
            g = groups[name] = {"calls": 0, "wall": 0.0, "phases": {}}
        g["calls"] += 1
        g["wall"] += float(record.get("wall", 0.0))
        for phase, seconds in _phases_of(record).items():
            g["phases"][phase] = g["phases"].get(phase, 0.0) + seconds
    for g in groups.values():
        named = sum(s for p, s in g["phases"].items() if p != "other")
        g["named_fraction"] = named / g["wall"] if g["wall"] > 0 else 1.0
    return groups


def critical_path(
    records: List[Dict[str, Any]], top: int = 10
) -> List[Dict[str, Any]]:
    """The ``top`` slowest calls, each with its dominant phase."""
    slowest = sorted(records, key=lambda r: -float(r.get("wall", 0.0)))[:top]
    out = []
    for record in slowest:
        phases = _phases_of(record)
        dominant = max(phases.items(), key=lambda kv: kv[1]) if phases else ("-", 0.0)
        out.append(
            {
                "context": record.get("context", "-"),
                "tenant": record.get("tenant") or "-",
                "method": record.get("method", "-"),
                "begin_at": float(record.get("begin_at", 0.0)),
                "wall": float(record.get("wall", 0.0)),
                "dominant_phase": dominant[0],
                "dominant_seconds": dominant[1],
            }
        )
    return out


def job_completion(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-job (per-context) completion view of a trace.

    A context *is* one application run in this codebase — trace replay
    opens one frontend connection per job rank — so the span from its
    first call's ``begin_at`` to its last call's end approximates the
    job's time on the runtime, and the summed ``queue_wait``/``bind_wait``
    phases are the scheduling delay it experienced.  Sorted by JCT,
    slowest first.
    """
    jobs: Dict[str, Dict[str, Any]] = {}
    for record in records:
        name = record.get("context", "-")
        begin = float(record.get("begin_at", 0.0))
        wall = float(record.get("wall", 0.0))
        j = jobs.get(name)
        if j is None:
            j = jobs[name] = {
                "job": name,
                "tenant": record.get("tenant") or "-",
                "calls": 0,
                "first_begin": begin,
                "last_end": begin + wall,
                "queue_s": 0.0,
            }
        j["calls"] += 1
        j["first_begin"] = min(j["first_begin"], begin)
        j["last_end"] = max(j["last_end"], begin + wall)
        for phase, seconds in _phases_of(record).items():
            if phase in ("queue_wait", "bind_wait"):
                j["queue_s"] += seconds
    out = []
    for j in jobs.values():
        j["jct"] = j["last_end"] - j["first_begin"]
        j["queue_share"] = j["queue_s"] / j["jct"] if j["jct"] > 0 else 0.0
        out.append(j)
    return sorted(out, key=lambda j: (-j["jct"], j["job"]))


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    import math

    rank = min(len(ordered) - 1, max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def per_user_jct(jobs: List[Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """tenant → JCT statistics (jobs, mean/p50/p99 JCT, queue share)."""
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for j in jobs:
        groups.setdefault(j["tenant"], []).append(j)
    out: Dict[str, Dict[str, Any]] = {}
    for tenant, js in sorted(groups.items()):
        jcts = [j["jct"] for j in js]
        queue = sum(j["queue_s"] for j in js)
        total = sum(jcts)
        out[tenant] = {
            "jobs": len(js),
            "mean_jct": sum(jcts) / len(jcts),
            "p50_jct": _percentile(jcts, 50.0),
            "p99_jct": _percentile(jcts, 99.0),
            "queue_share": queue / total if total > 0 else 0.0,
        }
    return out


def render_jobs_report(records: List[Dict[str, Any]], top: int = 10) -> str:
    """``repro obs report --jobs``: per-job and per-user JCT tables."""
    from repro.experiments.report import format_table

    if not records:
        return "no PhaseBreakdown events in trace (run with --events-out and tracing on)"
    jobs = job_completion(records)
    users = per_user_jct(jobs)
    sections = [
        f"{len(jobs)} jobs ({len(records)} calls) across {len(users)} users",
        "",
        "== per-user JCT ==",
        format_table(
            ["user", "jobs", "mean_jct_s", "p50_jct_s", "p99_jct_s", "queue%"],
            [
                [
                    tenant,
                    str(u["jobs"]),
                    f"{u['mean_jct']:.3f}",
                    f"{u['p50_jct']:.3f}",
                    f"{u['p99_jct']:.3f}",
                    f"{u['queue_share'] * 100:.1f}",
                ]
                for tenant, u in users.items()
            ],
        ),
        "",
        f"== {min(top, len(jobs))} slowest jobs ==",
        format_table(
            ["job", "user", "calls", "start_s", "jct_s", "queue_s", "queue%"],
            [
                [
                    j["job"],
                    j["tenant"],
                    str(j["calls"]),
                    f"{j['first_begin']:.3f}",
                    f"{j['jct']:.3f}",
                    f"{j['queue_s']:.3f}",
                    f"{j['queue_share'] * 100:.1f}",
                ]
                for j in jobs[:top]
            ],
        ),
    ]
    return "\n".join(sections)


def _phase_table(groups: Dict[str, Dict[str, Any]], label: str) -> str:
    from repro.experiments.report import format_table

    headers = [label, "calls", "wall_s"] + [f"{p}%" for p in _NAMED] + ["named%"]
    rows = []
    for name in sorted(groups, key=lambda n: -groups[n]["wall"]):
        g = groups[name]
        wall = g["wall"]
        row = [name, str(g["calls"]), f"{wall:.3f}"]
        for phase in _NAMED:
            share = g["phases"].get(phase, 0.0) / wall * 100 if wall > 0 else 0.0
            row.append(f"{share:.1f}")
        row.append(f"{g['named_fraction'] * 100:.1f}")
        rows.append(row)
    return format_table(headers, rows)


def render_report(records: List[Dict[str, Any]], top: int = 10) -> str:
    """The full ``repro obs report`` text."""
    from repro.experiments.report import format_table

    if not records:
        return "no PhaseBreakdown events in trace (run with --events-out and tracing on)"

    total_wall = sum(float(r.get("wall", 0.0)) for r in records)
    by_tenant = aggregate_phases(records, "tenant")
    by_context = aggregate_phases(records, "context")
    named = sum(
        seconds
        for record in records
        for phase, seconds in _phases_of(record).items()
        if phase != "other"
    )
    named_pct = named / total_wall * 100 if total_wall > 0 else 100.0

    sections = [
        f"{len(records)} calls, {total_wall:.3f} s total turnaround, "
        f"{named_pct:.1f}% attributed to named phases",
        "",
        "== per-tenant bottleneck attribution ==",
        _phase_table(by_tenant, "tenant"),
        "",
        "== per-context bottleneck attribution ==",
        _phase_table(by_context, "context"),
        "",
        f"== critical path: {min(top, len(records))} slowest calls ==",
    ]
    crit_rows = [
        [
            c["context"],
            c["tenant"],
            c["method"],
            f"{c['begin_at']:.3f}",
            f"{c['wall']:.3f}",
            f"{c['dominant_phase']} ({c['dominant_seconds']:.3f}s)",
        ]
        for c in critical_path(records, top)
    ]
    sections.append(
        format_table(
            ["context", "tenant", "method", "begin_at", "wall_s", "dominant"],
            crit_rows,
        )
    )
    return "\n".join(sections)
