"""Per-tenant windowed time accounting and SLO burn-rate monitoring.

The QoS layer (:mod:`repro.qos`) *makes* isolation decisions; this
module makes them *auditable*.  An :class:`SLOMonitor` keeps a sliding
window (``config.slo_window_s`` simulated seconds) of per-tenant call
turnaround and scheduler queue-wait samples, computes p50/p99 rollups
on demand, and — when the operator configures SLO targets — tracks the
fraction of samples breaching each target as an error-budget *burn
rate*:

    burn_rate = (breaching fraction in window) / slo_error_budget

A burn rate of 1.0 means the tenant is consuming its error budget
exactly as fast as allowed; above 1.0 the budget is burning down and
the target will be missed if the window is representative.  The rates
surface as per-tenant gauges in the Prometheus exporter and under the
``"slo"`` key of ``node_report()``.

The monitor is always on (unlike tracing): it is fed from the
dispatcher's existing latency-observation site and from the scheduler's
queue-wait hook, consumes no simulated time, and costs two appends per
call.  Calls made before the handshake names a tenant are accounted
under the pseudo-tenant ``"-"``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

__all__ = ["SLOMonitor", "percentile"]


def percentile(values, q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation; 0.0 if empty."""
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class _Window:
    """One tenant's sliding-window samples."""

    __slots__ = ("turnaround", "queue_wait", "calls_total")

    def __init__(self) -> None:
        #: (at, seconds) samples, oldest first.
        self.turnaround: Deque[Tuple[float, float]] = deque()
        self.queue_wait: Deque[Tuple[float, float]] = deque()
        self.calls_total = 0


class SLOMonitor:
    """Sliding-window SLO accounting for every tenant on a node."""

    def __init__(self, env, config) -> None:
        self.env = env
        self.window_s = config.slo_window_s
        self.turnaround_p99_target = config.slo_turnaround_p99_s
        self.queue_wait_p99_target = config.slo_queue_wait_p99_s
        self.error_budget = config.slo_error_budget
        self._windows: Dict[str, _Window] = {}

    # ------------------------------------------------------------------
    def _window(self, tenant_name: str) -> _Window:
        w = self._windows.get(tenant_name)
        if w is None:
            w = self._windows[tenant_name] = _Window()
        return w

    @staticmethod
    def _tenant_of(ctx) -> str:
        return getattr(getattr(ctx, "tenant", None), "name", "") or "-"

    def _prune(self, samples: Deque[Tuple[float, float]], now: float) -> None:
        horizon = now - self.window_s
        while samples and samples[0][0] < horizon:
            samples.popleft()

    # ------------------------------------------------------------------
    def observe_call(self, ctx, latency_s: float) -> None:
        """One completed call's turnaround (dispatcher finally-block)."""
        now = self.env.now
        w = self._window(self._tenant_of(ctx))
        w.calls_total += 1
        w.turnaround.append((now, latency_s))
        self._prune(w.turnaround, now)

    def observe_queue_wait(self, ctx, wait_s: float) -> None:
        """One binding's scheduler queue wait (Scheduler.queue_wait_hook)."""
        now = self.env.now
        w = self._window(self._tenant_of(ctx))
        w.queue_wait.append((now, wait_s))
        self._prune(w.queue_wait, now)

    # ------------------------------------------------------------------
    def _burn(self, samples, target: Optional[float]) -> float:
        if target is None or not samples:
            return 0.0
        breaching = sum(1 for _, v in samples if v > target)
        return (breaching / len(samples)) / self.error_budget

    def burn_rate(self, tenant_name: str, kind: str) -> float:
        """Current burn rate for ``kind`` in {"turnaround", "queue_wait"}."""
        w = self._windows.get(tenant_name)
        if w is None:
            return 0.0
        now = self.env.now
        if kind == "turnaround":
            self._prune(w.turnaround, now)
            return self._burn(w.turnaround, self.turnaround_p99_target)
        if kind == "queue_wait":
            self._prune(w.queue_wait, now)
            return self._burn(w.queue_wait, self.queue_wait_p99_target)
        raise ValueError(f"unknown SLO kind {kind!r}")

    # ------------------------------------------------------------------
    def rollup(self) -> Dict[str, Dict[str, Any]]:
        """Per-tenant windowed percentiles + burn rates for node_report."""
        now = self.env.now
        out: Dict[str, Dict[str, Any]] = {}
        for name, w in self._windows.items():
            self._prune(w.turnaround, now)
            self._prune(w.queue_wait, now)
            turn = [v for _, v in w.turnaround]
            wait = [v for _, v in w.queue_wait]
            out[name] = {
                "window_s": self.window_s,
                "calls_total": w.calls_total,
                "calls_in_window": len(turn),
                "turnaround_p50_s": percentile(turn, 50),
                "turnaround_p99_s": percentile(turn, 99),
                "queue_wait_p50_s": percentile(wait, 50),
                "queue_wait_p99_s": percentile(wait, 99),
                "turnaround_target_s": self.turnaround_p99_target,
                "queue_wait_target_s": self.queue_wait_p99_target,
                "turnaround_burn_rate": self._burn(
                    w.turnaround, self.turnaround_p99_target
                ),
                "queue_wait_burn_rate": self._burn(
                    w.queue_wait, self.queue_wait_p99_target
                ),
            }
        return out

    def __repr__(self) -> str:
        return f"<SLOMonitor window={self.window_s}s tenants={len(self._windows)}>"
