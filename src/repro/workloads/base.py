"""Application model and API adapters.

A :class:`WorkloadSpec` describes one Table 2 benchmark as the runtime
sees it: buffers, kernel-call count, aggregate GPU seconds on the
reference card (Tesla C2050), data-transfer pattern and CPU-phase
structure.  :class:`Application` turns a spec into the actual simulated
call stream.

The :class:`DeviceAPI` adapters make the same application runnable on:

- the bare CUDA runtime (:class:`BareCudaAdapter`, the paper's baseline),
- the paper's runtime (:class:`FrontendAdapter`, via the intercept
  library).

This mirrors reality: the intercept library is API-compatible with the
CUDA runtime, so binaries do not change between configurations.
"""

from __future__ import annotations

import dataclasses
from typing import Generator, List, Sequence, Tuple

from repro.simcuda.device import TESLA_C2050
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

__all__ = [
    "WorkloadSpec",
    "Application",
    "DeviceAPI",
    "BareCudaAdapter",
    "FrontendAdapter",
]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Static description of one benchmark program.

    Attributes
    ----------
    name / tag / description:
        Identity (tag is the paper's abbreviation, e.g. ``"MM-L"``).
    kernel_calls:
        Number of kernel launches (third column of Table 2).
    gpu_seconds_c2050:
        Aggregate kernel execution time on a Tesla C2050; per-launch work
        is derived from this (short-running: 3–5 s; long: 30–90 s).
    buffer_bytes:
        Device allocations the program makes.
    cpu_fraction:
        CPU-phase time as a fraction of GPU time, interleaved uniformly
        between kernel calls (the paper's "fraction of CPU code").
    d2h_every:
        Emit an intermediate device→host transfer of buffer 0 every N
        kernel calls (0 = only the final transfer) — the paper's app₂
        pattern, where some transfers are already part of the program.
    read_only_buffers:
        Indices of buffers the kernels only read.
    long_running:
        Category per Table 2.
    """

    name: str
    tag: str
    description: str
    kernel_calls: int
    gpu_seconds_c2050: float
    buffer_bytes: Tuple[int, ...]
    cpu_fraction: float = 0.0
    d2h_every: int = 0
    read_only_buffers: Tuple[int, ...] = ()
    long_running: bool = False

    def __post_init__(self) -> None:
        if self.kernel_calls < 1:
            raise ValueError("kernel_calls must be >= 1")
        if self.gpu_seconds_c2050 <= 0:
            raise ValueError("gpu_seconds_c2050 must be positive")
        if not self.buffer_bytes:
            raise ValueError("a workload needs at least one buffer")

    @property
    def total_bytes(self) -> int:
        return sum(self.buffer_bytes)

    @property
    def flops_per_kernel(self) -> float:
        """Work per launch, calibrated against the reference C2050."""
        total = self.gpu_seconds_c2050 * TESLA_C2050.effective_gflops * 1e9
        return total / self.kernel_calls

    @property
    def cpu_seconds_total(self) -> float:
        return self.cpu_fraction * self.gpu_seconds_c2050

    def with_cpu_fraction(self, fraction: float) -> "WorkloadSpec":
        """The paper injects CPU phases of various sizes into MM-S/MM-L."""
        return dataclasses.replace(self, cpu_fraction=fraction)


class DeviceAPI:
    """What an application needs from the GPU software stack."""

    def register(self, fatbin: FatBinary, kernels: Sequence[KernelDescriptor]) -> Generator:
        raise NotImplementedError

    def malloc(self, size: int) -> Generator:
        raise NotImplementedError

    def free(self, ptr: int) -> Generator:
        raise NotImplementedError

    def memcpy_h2d(self, ptr: int, nbytes: int) -> Generator:
        raise NotImplementedError

    def memcpy_d2h(self, ptr: int, nbytes: int) -> Generator:
        raise NotImplementedError

    def launch(
        self, kernel: KernelDescriptor, args: Sequence[int], read_only: Sequence[int]
    ) -> Generator:
        raise NotImplementedError

    def close(self) -> Generator:
        raise NotImplementedError


class BareCudaAdapter(DeviceAPI):
    """Run directly on the (simulated) CUDA runtime — the baseline."""

    def __init__(self, runtime_api):
        self.api = runtime_api

    def register(self, fatbin, kernels):
        yield from self.api.register_fat_binary(fatbin)
        for k in kernels:
            yield from self.api.register_function(fatbin, k)

    def malloc(self, size):
        ptr = yield from self.api.cuda_malloc(size)
        return ptr

    def free(self, ptr):
        yield from self.api.cuda_free(ptr)

    def memcpy_h2d(self, ptr, nbytes):
        yield from self.api.cuda_memcpy_h2d(ptr, nbytes)

    def memcpy_d2h(self, ptr, nbytes):
        yield from self.api.cuda_memcpy_d2h(ptr, nbytes)

    def launch(self, kernel, args, read_only):
        from repro.simcuda.kernels import KernelLaunch

        self.api.cuda_configure_call()
        yield from self.api.cuda_launch(
            KernelLaunch.simple(kernel, args, read_only=read_only)
        )

    def close(self):
        yield from self.api.cuda_thread_exit()


class FrontendAdapter(DeviceAPI):
    """Run through the paper's runtime via the intercept library."""

    def __init__(self, frontend):
        self.frontend = frontend

    def register(self, fatbin, kernels):
        if not self.frontend.connected:
            yield from self.frontend.open()
        handle = yield from self.frontend.register_fat_binary(fatbin)
        for k in kernels:
            yield from self.frontend.register_function(handle, k)

    def malloc(self, size):
        ptr = yield from self.frontend.cuda_malloc(size)
        return ptr

    def free(self, ptr):
        yield from self.frontend.cuda_free(ptr)

    def memcpy_h2d(self, ptr, nbytes):
        yield from self.frontend.cuda_memcpy_h2d(ptr, nbytes)

    def memcpy_d2h(self, ptr, nbytes):
        yield from self.frontend.cuda_memcpy_d2h(ptr, nbytes)

    def launch(self, kernel, args, read_only):
        yield from self.frontend.launch_kernel(kernel, args, read_only)

    def close(self):
        yield from self.frontend.cuda_thread_exit()


class Application:
    """Executable form of a workload: the simulated call stream.

    The program structure follows the paper's Figure 1: device memory
    allocations (``m``), host→device transfers (``c_HD``), a sequence of
    kernel executions (``k_ij``) interleaved with CPU phases (black
    blocks), optional intermediate ``c_DH`` transfers, a final
    device→host transfer and de-allocations (``f``).
    """

    def __init__(self, spec: WorkloadSpec, instance: str = ""):
        self.spec = spec
        self.instance = instance or spec.tag
        self.kernel = KernelDescriptor(
            name=f"{spec.tag}-kernel", flops=spec.flops_per_kernel
        )
        self.fatbin = FatBinary()
        self.fatbin.register_function(self.kernel)

    def run(self, api: DeviceAPI, cpu_phase=None) -> Generator:
        """Drive the whole program through ``api``.

        ``cpu_phase(seconds)`` is a generator-returning callable used for
        CPU phases (typically ``node.cpu_phase``); ``None`` skips them.
        """
        spec = self.spec
        yield from api.register(self.fatbin, [self.kernel])

        buffers: List[int] = []
        for size in spec.buffer_bytes:
            ptr = yield from api.malloc(size)
            buffers.append(ptr)
        for ptr, size in zip(buffers, spec.buffer_bytes):
            yield from api.memcpy_h2d(ptr, size)

        read_only = tuple(buffers[i] for i in spec.read_only_buffers)
        gap = (
            spec.cpu_seconds_total / spec.kernel_calls
            if spec.kernel_calls and spec.cpu_seconds_total > 0
            else 0.0
        )
        for call_index in range(spec.kernel_calls):
            yield from api.launch(self.kernel, buffers, read_only)
            if gap > 0 and cpu_phase is not None:
                yield from cpu_phase(gap)
            if (
                spec.d2h_every
                and (call_index + 1) % spec.d2h_every == 0
                and call_index + 1 < spec.kernel_calls
            ):
                yield from api.memcpy_d2h(buffers[0], spec.buffer_bytes[0])

        yield from api.memcpy_d2h(buffers[0], spec.buffer_bytes[0])
        for ptr in buffers:
            yield from api.free(ptr)
        yield from api.close()
