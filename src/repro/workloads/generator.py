"""Job generation: turning workload specs into runnable cluster jobs."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.jobs import Job
from repro.cluster.node import ComputeNode
from repro.core.frontend import Frontend
from repro.simcuda.runtime_api import CudaRuntimeAPI
from repro.workloads.base import (
    Application,
    BareCudaAdapter,
    FrontendAdapter,
    WorkloadSpec,
)
from repro.workloads.catalog import SHORT_RUNNING

__all__ = ["make_job", "draw_short_jobs"]


def make_job(
    spec: WorkloadSpec,
    name: Optional[str] = None,
    use_runtime: bool = True,
    static_device: Optional[int] = None,
    deadline_s: Optional[float] = None,
) -> Job:
    """A cluster job running ``spec`` on whichever node it is placed on.

    ``use_runtime=True`` routes the application through the node's
    runtime daemon (the paper's system); ``False`` runs it on the bare
    CUDA runtime (the baseline).  CPU phases always execute on the
    node's own cores — offloading never moves them (§4.7).

    ``static_device`` models the programmer-defined GPU binding of the
    bare-CUDA baseline: the application issues ``cudaSetDevice(n % #GPUs)``
    before its first device call.  Under the paper's runtime the same call
    is intercepted and ignored (abstraction, §2) — so passing it is
    harmless there.
    """
    job_name = name or spec.tag

    def body(node: ComputeNode):
        app = Application(spec, instance=job_name)
        if use_runtime:
            if node.runtime is None:
                raise RuntimeError(f"{node.name} has no runtime daemon")
            cfg = node.runtime.config
            api = FrontendAdapter(
                Frontend(
                    node.env,
                    node.runtime.listener,
                    name=job_name,
                    estimated_gpu_seconds=spec.gpu_seconds_c2050,
                    deadline_s=deadline_s,
                    # The intercept library reads the node's control-plane
                    # batching knobs; batch_max_calls=1 is the historic
                    # per-call RPC path, bit for bit.
                    batch_max_calls=cfg.batch_max_calls,
                    batch_max_delay_s=cfg.batch_max_delay_s,
                )
            )
        else:
            cuda = CudaRuntimeAPI(node.driver, owner=job_name)
            if static_device is not None and node.driver.device_count() > 0:
                devices = node.driver.devices
                cuda.cuda_set_device(
                    devices[static_device % len(devices)].device_id
                )
            api = BareCudaAdapter(cuda)
        yield from app.run(api, cpu_phase=node.cpu_phase)

    return Job(job_name, body, tag=spec.tag)


def draw_short_jobs(
    rng: np.random.Generator,
    count: int,
    use_runtime: bool = True,
    pool: Optional[Sequence[WorkloadSpec]] = None,
) -> List[Job]:
    """Randomly draw ``count`` jobs from the short-running pool (the
    paper's Figures 5, 6 and 10 methodology)."""
    pool = list(pool or SHORT_RUNNING)
    picks = rng.integers(0, len(pool), size=count)
    return [
        make_job(pool[int(i)], name=f"{pool[int(i)].tag}#{n}", use_runtime=use_runtime)
        for n, i in enumerate(picks)
    ]
