"""Benchmark application models (paper Table 2).

Thirteen applications from the Rodinia suite and the CUDA SDK, modelled
as the *call streams* the runtime observes: allocations, host↔device
transfers, kernel launches (with the paper's per-application kernel-call
counts) and interleaved CPU phases.  Every application runs unchanged on
either the bare CUDA runtime or the paper's runtime via the adapter in
:mod:`repro.workloads.base`.
"""

from repro.workloads.base import (
    Application,
    BareCudaAdapter,
    DeviceAPI,
    FrontendAdapter,
    WorkloadSpec,
)
from repro.workloads.catalog import (
    ALL_WORKLOADS,
    LONG_RUNNING,
    SHORT_RUNNING,
    workload,
)
from repro.workloads.generator import draw_short_jobs, make_job
from repro.workloads.trace_replay import (
    TraceJob,
    TraceReplayResult,
    jain_index,
    load_trace,
    loads_trace,
    replay_trace,
    save_trace,
    synthetic_trace,
)

__all__ = [
    "ALL_WORKLOADS",
    "Application",
    "BareCudaAdapter",
    "DeviceAPI",
    "draw_short_jobs",
    "FrontendAdapter",
    "jain_index",
    "load_trace",
    "loads_trace",
    "LONG_RUNNING",
    "make_job",
    "replay_trace",
    "save_trace",
    "SHORT_RUNNING",
    "synthetic_trace",
    "TraceJob",
    "TraceReplayResult",
    "workload",
    "WorkloadSpec",
]
