"""Many-small-kernel workloads (control-plane stress).

The Table 2 programs launch tens of kernels that each run hundreds of
milliseconds, so per-launch control-plane cost vanishes in execution
time.  Modern fine-grained workloads invert that ratio: graph traversal
frontiers and agent-pipeline stages launch *thousands* of kernels of a
few tens of microseconds each, making the per-launch round-trip — wire
framing, dispatcher scheduling, driver submission — the dominant term.
These two shapes are the benchmark targets for control-plane batching
and CUDA-Graph-style replay (``benchmarks/test_control_plane.py``).

They join the catalog by tag but deliberately stay out of the
short/long random-draw pools: the paper's figure methodology draws only
Table 2 programs.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec

__all__ = ["GRAPH_TRAVERSAL_FINE", "AGENT_PIPELINE", "FINE_GRAINED"]

MIB = 1024 * 1024

#: Level-synchronous graph traversal: one tiny frontier-expansion kernel
#: per level over a compact adjacency structure, ~25 µs of execution per
#: launch.  The first buffer (the adjacency lists) is read-only.
GRAPH_TRAVERSAL_FINE = WorkloadSpec(
    name="Fine-grained graph traversal",
    tag="GT-F",
    description="frontier-per-level BFS-style traversal, 2000 ~25 us kernels",
    kernel_calls=2000,
    gpu_seconds_c2050=0.05,
    buffer_bytes=(8 * MIB, 2 * MIB, 2 * MIB),
    read_only_buffers=(0,),
)

#: Agent simulation pipeline: a short per-stage kernel (sense, decide,
#: act) issued per tick over a small shared world state, ~30 µs each.
AGENT_PIPELINE = WorkloadSpec(
    name="Agent pipeline",
    tag="AP-F",
    description="per-tick agent stages, 1200 ~30 us kernels",
    kernel_calls=1200,
    gpu_seconds_c2050=0.036,
    buffer_bytes=(4 * MIB, 4 * MIB),
    read_only_buffers=(0,),
)

#: The many-small-kernel family as a pool.
FINE_GRAINED = [GRAPH_TRAVERSAL_FINE, AGENT_PIPELINE]
