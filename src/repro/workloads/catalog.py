"""The Table 2 catalog: every benchmark, and the short/long pools the
experiments draw from."""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.base import WorkloadSpec
from repro.workloads.cudasdk import (
    BLACK_SCHOLES_LARGE,
    BLACK_SCHOLES_SMALL,
    MATRIX_TRANSPOSE,
    PARALLEL_REDUCTION,
    SCALAR_PRODUCT,
    SCAN,
    VECTOR_ADDITION,
)
from repro.workloads.finegrained import FINE_GRAINED
from repro.workloads.matmul import MATMUL_LARGE, MATMUL_SMALL
from repro.workloads.rodinia import BACK_PROPAGATION, BFS, HOTSPOT, NEEDLEMAN_WUNSCH

__all__ = [
    "ALL_WORKLOADS",
    "SHORT_RUNNING",
    "LONG_RUNNING",
    "FINE_GRAINED",
    "workload",
]

#: Short-running applications (3–5 s on a Tesla C2050).
SHORT_RUNNING: List[WorkloadSpec] = [
    BACK_PROPAGATION,
    BFS,
    HOTSPOT,
    NEEDLEMAN_WUNSCH,
    SCALAR_PRODUCT,
    MATRIX_TRANSPOSE,
    PARALLEL_REDUCTION,
    SCAN,
    BLACK_SCHOLES_SMALL,
    VECTOR_ADDITION,
]

#: Long-running applications (30–90 s depending on injected CPU phases).
LONG_RUNNING: List[WorkloadSpec] = [
    MATMUL_SMALL,
    MATMUL_LARGE,
    BLACK_SCHOLES_LARGE,
]

#: Many-small-kernel family (control-plane stress; not in the random
#: draw pools — the paper's figures draw Table 2 programs only).
ALL_WORKLOADS: List[WorkloadSpec] = SHORT_RUNNING + LONG_RUNNING + FINE_GRAINED

_BY_TAG: Dict[str, WorkloadSpec] = {w.tag: w for w in ALL_WORKLOADS}


def workload(tag: str) -> WorkloadSpec:
    """Look a benchmark up by its paper abbreviation (``"BS-L"`` …)."""
    try:
        return _BY_TAG[tag]
    except KeyError:
        raise KeyError(f"unknown workload {tag!r}; known: {sorted(_BY_TAG)}") from None
