"""Rodinia benchmark models (paper Table 2, short-running).

Kernel-call counts are the paper's; aggregate GPU seconds land inside
the paper's 3–5 s short-job window on a Tesla C2050.  Data sizes follow
the paper's problem descriptions, scaled where needed so that — as the
paper states for its short-running workloads — memory requirements stay
"well below the capacity of the GPUs in use" and random draws never
conflict (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec

__all__ = ["BACK_PROPAGATION", "BFS", "HOTSPOT", "NEEDLEMAN_WUNSCH"]

MIB = 1024**2

BACK_PROPAGATION = WorkloadSpec(
    name="Back Propagation",
    tag="BP",
    description="Training of 20 neural networks with 64K nodes per input layer",
    kernel_calls=40,
    gpu_seconds_c2050=4.0,
    # input layer (64K × 16 floats × 20 nets), weights, deltas
    buffer_bytes=(80 * MIB, 40 * MIB, 20 * MIB),
    cpu_fraction=0.10,  # weight updates between networks
)

BFS = WorkloadSpec(
    name="Breadth-First Search",
    tag="BFS",
    description="Traversal of graph with 1M nodes",
    kernel_calls=24,
    gpu_seconds_c2050=3.0,
    # CSR graph (nodes+edges), frontier mask, visited mask
    buffer_bytes=(96 * MIB, 8 * MIB, 8 * MIB),
    read_only_buffers=(0,),
    cpu_fraction=0.08,  # frontier bookkeeping on the host
)

HOTSPOT = WorkloadSpec(
    name="HotSpot",
    tag="HS",
    description="Thermal simulation of 1M grids",
    kernel_calls=1,
    gpu_seconds_c2050=3.0,
    # temperature and power grids
    buffer_bytes=(64 * MIB, 64 * MIB),
    read_only_buffers=(1,),
    cpu_fraction=0.05,
)

NEEDLEMAN_WUNSCH = WorkloadSpec(
    name="Needleman-Wunsch",
    tag="NW",
    description="DNA sequence alignment of 2K potential pairs of sequences",
    kernel_calls=256,
    gpu_seconds_c2050=4.0,
    # scoring matrix diagonal sweeps + reference
    buffer_bytes=(128 * MIB, 16 * MIB),
    read_only_buffers=(1,),
    d2h_every=64,  # alignment results drain periodically
    cpu_fraction=0.10,
)
