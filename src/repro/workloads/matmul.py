"""Matrix-multiplication workloads (paper Table 2, long-running).

MM-S and MM-L are the paper's probes for CPU/GPU-phase interleaving
(injected CPU phases of configurable size, §5.3.3) and for conflicting
memory requirements: MM-L's three 10K×10K matrices occupy 1.2 GB, so two
jobs fit a Tesla C2050 but a third forces swapping.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec

__all__ = ["MATMUL_SMALL", "MATMUL_LARGE", "matmul_small", "matmul_large"]

MIB = 1024**2

MATMUL_SMALL = WorkloadSpec(
    name="Small Matrix Multiplication",
    tag="MM-S",
    description="200 matrix multiplications of 2Kx2K square matrices and variable CPU phases",
    kernel_calls=200,
    gpu_seconds_c2050=40.0,
    buffer_bytes=(16 * MIB, 16 * MIB, 16 * MIB),  # 2K×2K × 4 B each
    read_only_buffers=(0, 1),
    cpu_fraction=0.0,  # injected per-experiment via with_cpu_fraction
    long_running=True,
)

MATMUL_LARGE = WorkloadSpec(
    name="Large Matrix Multiplication",
    tag="MM-L",
    description="10 matrix multiplications of 10Kx10K square matrices and variable CPU phases",
    kernel_calls=10,
    gpu_seconds_c2050=20.0,
    buffer_bytes=(400 * MIB, 400 * MIB, 400 * MIB),  # 10K×10K × 4 B each
    read_only_buffers=(0, 1),
    cpu_fraction=0.0,
    long_running=True,
)


def matmul_small(cpu_fraction: float) -> WorkloadSpec:
    """MM-S with an injected CPU-phase fraction (Figure 9)."""
    return MATMUL_SMALL.with_cpu_fraction(cpu_fraction)


def matmul_large(cpu_fraction: float) -> WorkloadSpec:
    """MM-L with an injected CPU-phase fraction (Figures 7, 8, 11)."""
    return MATMUL_LARGE.with_cpu_fraction(cpu_fraction)
