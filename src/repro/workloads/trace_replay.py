"""Production trace replay at cluster scale.

The paper evaluates hand-picked benchmark batches per node; a deployed
multi-tenant service sees what production GPU traces (Alibaba
``cluster-trace-gpu-v2020``) record: thousands of jobs from competing
users and groups, arriving over hours, with heavy-tailed durations and
heterogeneous GPU demands (T4 inference boxes next to P100/V100
training boxes).  This module turns such a trace — real or synthetic —
into an open-loop replay against a multi-node cluster of the paper's
runtimes, so scheduling policies can be baked off under production
shape:

- :class:`TraceJob` — the schema (``job_id, user, group, submit_time,
  duration, num_gpus, gpu_type, mem_bytes``), loadable from CSV or
  JSON-lines (:func:`load_trace`) and writable back (:func:`save_trace`);
- :func:`synthetic_trace` — a deterministic, seedable generator of
  trace-shaped workload (Zipf users, per-group duration scales,
  lognormal heavy tails, diurnal arrival modulation), so CI needs no
  external data;
- :func:`replay_trace` — the harness: users map to ``repro.qos``
  tenants (with their group), ``gpu_type`` maps to heterogeneous
  :data:`~repro.simcuda.device.DEVICE_SPECS` nodes, jobs are submitted
  at trace-dictated times to the least-loaded type-matching node
  (the GPU-aware placement of :class:`~repro.cluster.torque.Torque`,
  read off the runtimes' load metric), and every completion feeds the
  shared :class:`~repro.core.estimator.RuntimeEstimator` the
  ``sjf_est``/``hrrn`` policies consult;
- :class:`TraceReplayResult` — per-job records plus the rollups the
  bake-off reports: makespan, mean/p50/p99 JCT, queueing delay, and
  Jain's fairness index over per-user mean slowdown.

Replay submits application threads straight through the node runtimes
(the paper's Figure 2a data path); a :class:`~repro.cluster.vmcloud.
CloudManager` is mounted over the nodes for the cluster dashboard —
``result.node_reports`` is its monitoring view, the same snapshot a
head-node scheduler polls.  Simulated time is fully deterministic:
identical seed + trace ⇒ bit-identical metrics.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import math
import os
from typing import Dict, Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.jobs import Job, JobOutcome
from repro.cluster.node import ComputeNode
from repro.cluster.vmcloud import CloudManager
from repro.core.config import RuntimeConfig
from repro.core.estimator import RuntimeEstimator
from repro.core.frontend import Frontend
from repro.obs import ObsCollector
from repro.sim import Environment
from repro.simcuda.device import DEVICE_SPECS, device_spec
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

__all__ = [
    "TraceJob",
    "TRACE_FIELDS",
    "load_trace",
    "loads_trace",
    "save_trace",
    "synthetic_trace",
    "jain_index",
    "percentile",
    "TraceReplayResult",
    "replay_trace",
]

MIB = 1024**2
GIB = 1024**3

#: Column order of the CSV form (the cluster-trace-gpu-v2020 shape).
TRACE_FIELDS = (
    "job_id",
    "user",
    "group",
    "submit_time",
    "duration",
    "num_gpus",
    "gpu_type",
    "mem_bytes",
)


@dataclasses.dataclass(frozen=True)
class TraceJob:
    """One production-trace job record.

    ``duration`` is the job's GPU demand in seconds *on its requested
    gpu_type* (per GPU — a 2-GPU job occupies both for ``duration``);
    ``mem_bytes`` is its total device-memory footprint across GPUs.
    """

    job_id: str
    user: str
    group: str
    submit_time: float
    duration: float
    num_gpus: int = 1
    gpu_type: str = "V100"
    mem_bytes: int = 256 * MIB

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"{self.job_id}: submit_time must be >= 0")
        if self.duration <= 0:
            raise ValueError(f"{self.job_id}: duration must be positive")
        if self.num_gpus < 1:
            raise ValueError(f"{self.job_id}: num_gpus must be >= 1")
        if self.mem_bytes <= 0:
            raise ValueError(f"{self.job_id}: mem_bytes must be positive")
        device_spec(self.gpu_type)  # fail at load time, not mid-replay

    def to_json(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_record(cls, record: Dict) -> "TraceJob":
        """Build from a loose dict (CSV row / JSON object); extra keys
        are ignored so real-trace exports with more columns load as-is."""
        missing = [f for f in TRACE_FIELDS if f not in record]
        if missing:
            raise ValueError(f"trace record missing fields {missing}: {record}")
        return cls(
            job_id=str(record["job_id"]),
            user=str(record["user"]),
            group=str(record["group"]),
            submit_time=float(record["submit_time"]),
            duration=float(record["duration"]),
            num_gpus=int(record["num_gpus"]),
            gpu_type=str(record["gpu_type"]),
            mem_bytes=int(record["mem_bytes"]),
        )


# ----------------------------------------------------------------------
# load / save
# ----------------------------------------------------------------------
def loads_trace(text: str) -> List[TraceJob]:
    """Parse trace text — CSV (with header) or JSON-lines, sniffed from
    the first non-blank character — into submit-time order."""
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped[0] == "{":
        records = [json.loads(line) for line in text.splitlines() if line.strip()]
    else:
        records = list(csv.DictReader(io.StringIO(text)))
    jobs = [TraceJob.from_record(r) for r in records]
    return sorted(jobs, key=lambda j: (j.submit_time, j.job_id))


def load_trace(path: str) -> List[TraceJob]:
    """Load a trace file (``.csv`` or JSON-lines) in submit-time order."""
    with open(path, "r", encoding="utf-8") as fh:
        return loads_trace(fh.read())


def save_trace(jobs: Sequence[TraceJob], path: str) -> None:
    """Write a trace; ``.csv`` extension selects CSV, else JSON-lines."""
    if os.path.splitext(path)[1].lower() == ".csv":
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(TRACE_FIELDS))
            writer.writeheader()
            for job in jobs:
                writer.writerow(job.to_json())
    else:
        with open(path, "w", encoding="utf-8") as fh:
            for job in jobs:
                fh.write(json.dumps(job.to_json()) + "\n")


# ----------------------------------------------------------------------
# synthetic trace-shaped generator
# ----------------------------------------------------------------------
#: gpu_type mix of the synthetic generator (roughly the Alibaba 2020
#: fleet shape: many inference T4s, fewer training P100/V100s).
DEFAULT_GPU_TYPE_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("T4", 0.45),
    ("P100", 0.25),
    ("V100", 0.30),
)


def synthetic_trace(
    num_jobs: int,
    seed: int = 0,
    users: int = 24,
    groups: int = 4,
    arrival_rate_per_s: float = 10.0,
    mean_duration_s: float = 1.0,
    duration_sigma: float = 1.0,
    diurnal_period_s: float = 240.0,
    diurnal_amplitude: float = 0.6,
    zipf_s: float = 1.4,
    gpu_type_weights: Optional[Sequence[Tuple[str, float]]] = None,
    multi_gpu_fraction: float = 0.10,
    mem_median_bytes: int = 384 * MIB,
    mem_sigma: float = 0.9,
) -> List[TraceJob]:
    """Deterministic trace-shaped synthetic workload.

    Shape knobs mirror what production GPU traces exhibit:

    - **Zipf users**: user *r* (1-based popularity rank) submits with
      probability ∝ ``r**-zipf_s`` — a few users dominate traffic;
    - **heavy-tailed durations**: lognormal per job, multiplied by a
      per-user and a per-group lognormal scale (departments that train
      run long; departments that serve run short) — so user identity
      *predicts* runtime, which is exactly what the history estimator
      exploits;
    - **diurnal arrivals**: a nonhomogeneous Poisson process with rate
      ``λ(t) = arrival_rate_per_s · (1 + A·sin(2πt/period))`` — flash
      crowds at peak, slack at trough (period is compressed from 24 h
      to simulation scale);
    - **heterogeneous demands**: ``gpu_type`` drawn from the fleet mix
      biased by the group's preferred card, occasional multi-GPU jobs,
      lognormal memory footprints clipped to 60% of the card.

    Everything derives from one :func:`numpy.random.default_rng` stream:
    same arguments ⇒ identical trace, on any machine.
    """
    if num_jobs < 1:
        raise ValueError("num_jobs must be >= 1")
    if users < 1 or groups < 1:
        raise ValueError("users and groups must be >= 1")
    rng = np.random.default_rng(seed)
    weights = list(gpu_type_weights or DEFAULT_GPU_TYPE_WEIGHTS)
    type_names = [t for t, _ in weights]
    type_p = np.array([w for _, w in weights], dtype=float)
    type_p = type_p / type_p.sum()

    group_names = [f"g{g:02d}" for g in range(groups)]
    user_names = [f"u{u:03d}" for u in range(users)]
    #: Popularity: rank r submits ∝ r^-s.
    user_p = np.array([1.0 / (r + 1) ** zipf_s for r in range(users)])
    user_p = user_p / user_p.sum()
    user_group = rng.integers(0, groups, size=users)
    #: Departments differ in how long they run and what they run on.
    group_scale = np.exp(rng.normal(0.0, 0.8, size=groups))
    user_scale = np.exp(rng.normal(0.0, 0.5, size=users))
    group_pref_type = [type_names[g % len(type_names)] for g in range(groups)]

    jobs: List[TraceJob] = []
    now = 0.0
    #: lognormal(-σ²/2, σ) has mean 1.0 — mean_duration_s stays honest.
    dur_mu = -duration_sigma**2 / 2.0
    for i in range(num_jobs):
        rate = arrival_rate_per_s * (
            1.0 + diurnal_amplitude * math.sin(2 * math.pi * now / diurnal_period_s)
        )
        rate = max(rate, 0.05 * arrival_rate_per_s)
        now += float(rng.exponential(1.0 / rate))

        u = int(rng.choice(users, p=user_p))
        g = int(user_group[u])
        duration = (
            mean_duration_s
            * float(group_scale[g])
            * float(user_scale[u])
            * float(np.exp(rng.normal(dur_mu, duration_sigma)))
        )
        duration = float(min(max(duration, 0.05), 30.0 * mean_duration_s))

        if rng.random() < 0.6:
            gpu_type = group_pref_type[g]
        else:
            gpu_type = type_names[int(rng.choice(len(type_names), p=type_p))]

        if rng.random() < multi_gpu_fraction:
            num_gpus = 2 if rng.random() < 0.75 else 4
        else:
            num_gpus = 1

        #: Bigger jobs tend to hold more memory (weak correlation).
        mem = mem_median_bytes * float(
            np.exp(rng.normal(0.0, mem_sigma))
        ) * (duration / mean_duration_s) ** 0.3
        cap = 0.6 * device_spec(gpu_type).memory_bytes
        mem_bytes = int(min(max(mem, 16 * MIB), cap)) // MIB * MIB

        jobs.append(
            TraceJob(
                job_id=f"job-{i:05d}",
                user=user_names[u],
                group=group_names[g],
                submit_time=round(now, 6),
                duration=round(duration, 6),
                num_gpus=num_gpus,
                gpu_type=gpu_type,
                mem_bytes=mem_bytes,
            )
        )
    return jobs


# ----------------------------------------------------------------------
# metrics helpers
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` — 1.0 is perfectly
    fair, 1/n is maximally unfair."""
    xs = [v for v in values if v > 0]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0:
        return 1.0
    return (total * total) / (len(xs) * squares)


# ----------------------------------------------------------------------
# replay harness
# ----------------------------------------------------------------------
@dataclasses.dataclass
class TraceReplayResult:
    """Outcome of one trace replay under one policy/cluster shape."""

    label: str
    policy: str
    nodes: int
    gpus: int
    #: one record per trace job: job_id, user, group, gpu_type, node,
    #: submitted, finished, jct, duration, queue_delay, slowdown, ok
    records: List[Dict] = dataclasses.field(default_factory=list)
    stats: Dict[str, int] = dataclasses.field(default_factory=dict)
    #: CloudManager dashboard snapshot at drain time (per-node
    #: node_report incl. tenant rollups and the metrics sub-dict).
    node_reports: Dict[str, Dict] = dataclasses.field(default_factory=dict)
    errors: int = 0

    # -- rollups -------------------------------------------------------
    @property
    def completed(self) -> List[Dict]:
        return [r for r in self.records if r["ok"]]

    @property
    def jcts(self) -> List[float]:
        return [r["jct"] for r in self.completed]

    @property
    def makespan(self) -> float:
        done = self.completed
        if not done:
            return 0.0
        return max(r["finished"] for r in done) - min(r["submitted"] for r in done)

    @property
    def mean_jct(self) -> float:
        jcts = self.jcts
        return sum(jcts) / len(jcts) if jcts else 0.0

    @property
    def p50_jct(self) -> float:
        return percentile(self.jcts, 50.0)

    @property
    def p99_jct(self) -> float:
        return percentile(self.jcts, 99.0)

    @property
    def mean_queue_delay(self) -> float:
        """Mean excess sojourn: JCT minus the job's own GPU demand —
        time spent queued for (or time-sharing) a device."""
        delays = [r["queue_delay"] for r in self.completed]
        return sum(delays) / len(delays) if delays else 0.0

    def per_user_slowdown(self) -> Dict[str, float]:
        """user → **median** slowdown (JCT / duration) over their jobs.

        The median is each user's *typical-job* experience.  Mean
        slowdown is notoriously dominated by a user's smallest jobs
        (tiny denominators), which turns the rollup into a measure of
        outlier luck rather than of the service the user actually
        receives."""
        sums: Dict[str, List[float]] = {}
        for r in self.completed:
            sums.setdefault(r["user"], []).append(r["slowdown"])
        return {u: percentile(v, 50.0) for u, v in sorted(sums.items())}

    def per_user_mean_slowdown(self) -> Dict[str, float]:
        """user → mean slowdown over their jobs (outlier-sensitive)."""
        sums: Dict[str, List[float]] = {}
        for r in self.completed:
            sums.setdefault(r["user"], []).append(r["slowdown"])
        return {u: sum(v) / len(v) for u, v in sorted(sums.items())}

    @property
    def jain_fairness(self) -> float:
        """Jain's index over per-user median slowdown: does every user's
        typical job experience the same service quality, or do some
        users pay for others' throughput?"""
        return jain_index(list(self.per_user_slowdown().values()))

    def metrics(self) -> Dict[str, float]:
        """The bake-off row (what BENCH_trace.json records per policy)."""
        return {
            "jobs": len(self.records),
            "completed": len(self.completed),
            "errors": self.errors,
            "makespan_s": self.makespan,
            "mean_jct_s": self.mean_jct,
            "p50_jct_s": self.p50_jct,
            "p99_jct_s": self.p99_jct,
            "mean_queue_delay_s": self.mean_queue_delay,
            "jain_fairness": self.jain_fairness,
        }


def _node_type_plan(trace: Sequence[TraceJob], nodes: int) -> List[str]:
    """Deterministic node→gpu_type assignment proportional to the
    trace's demand mix (GPU-seconds per type, largest remainder), every
    present type getting at least one node."""
    demand: Dict[str, float] = {}
    for job in trace:
        key = job.gpu_type.strip().upper()
        demand[key] = demand.get(key, 0.0) + job.duration * job.num_gpus
    types = sorted(demand)
    if not types:
        raise ValueError("empty trace")
    if nodes < len(types):
        # Tiny cluster: host only the most-demanded types; jobs of the
        # dropped types fall back to the least-loaded node at placement.
        types = sorted(
            sorted(demand, key=lambda t: (-demand[t], t))[:nodes]
        )
        demand = {t: demand[t] for t in types}
    total = sum(demand.values())
    shares = {t: demand[t] / total * nodes for t in types}
    counts = {t: max(1, int(shares[t])) for t in types}
    while sum(counts.values()) > nodes:
        # Shed from the most-overrepresented type that can spare a node.
        victim = max(
            (t for t in types if counts[t] > 1),
            key=lambda t: (counts[t] - shares[t], t),
        )
        counts[victim] -= 1
    remainders = sorted(
        types, key=lambda t: (-(shares[t] - counts[t]), t)
    )
    i = 0
    while sum(counts.values()) < nodes:
        counts[remainders[i % len(remainders)]] += 1
        i += 1
    plan: List[str] = []
    for t in types:
        plan.extend([t] * counts[t])
    return plan


def replay_trace(
    trace: Sequence[TraceJob],
    nodes: int = 8,
    gpus_per_node: int = 2,
    policy: str = "fcfs",
    config: Optional[RuntimeConfig] = None,
    node_gpu_types: Optional[Sequence[str]] = None,
    cpu_threads: int = 16,
    cpu_fraction: float = 0.0,
    label: str = "",
    collector: Optional[ObsCollector] = None,
    estimator: Optional[RuntimeEstimator] = None,
    boot_grace_s: float = 5.0,
    profiler=None,
) -> TraceReplayResult:
    """Open-loop replay of ``trace`` against a fresh simulated cluster.

    Builds ``nodes`` compute nodes (GPU types proportional to the
    trace's demand mix unless ``node_gpu_types`` pins them, each with
    ``gpus_per_node`` devices), registers every trace user as a tenant
    (with its group) on every node, then submits each job at its
    ``submit_time`` to the least-loaded node of its ``gpu_type`` —
    falling back to the overall least-loaded node when no node carries
    the type.  Multi-GPU jobs run ``num_gpus`` ranks concurrently on
    their node, each a frontend connection demanding ``duration`` GPU
    seconds (calibrated to the requested card, so a V100 job landing on
    a slower card honestly runs longer) over ``mem_bytes/num_gpus`` of
    device memory.

    Every completion reports the job's measured GPU demand to the shared
    cluster-wide :class:`RuntimeEstimator` (created fresh unless passed
    in), which is wired into each node's scheduling policy when that
    policy learns from history (``sjf_est``/``hrrn``).

    Pure function of its inputs: no wall-clock, no global RNG — an
    identical call returns bit-identical simulated metrics.  An optional
    ``profiler`` (a :class:`~repro.sim.SimProfiler`) attaches to the
    replay's environment for wall-clock throughput measurement; it
    observes, never steers.
    """
    trace = sorted(trace, key=lambda j: (j.submit_time, j.job_id))
    if not trace:
        raise ValueError("empty trace")
    # Replay hosts get abundant swap by default: trace backlogs hold
    # hundreds of queued jobs' allocations per node, and the bake-off
    # should measure scheduling, not host-DRAM sizing.  An explicit
    # ``config`` (e.g. the overload stress test) is honored verbatim.
    base = config or RuntimeConfig(host_swap_capacity_bytes=256 * GIB)
    run_config = dataclasses.replace(base, policy=policy)

    env = Environment()
    if profiler is not None:
        profiler.attach(env)
    cluster = Cluster(env)
    plan = list(node_gpu_types) if node_gpu_types is not None else _node_type_plan(
        trace, nodes
    )
    if len(plan) != nodes:
        raise ValueError(f"node_gpu_types lists {len(plan)} types for {nodes} nodes")
    for i, gpu_type in enumerate(plan):
        cluster.add_node(
            f"node{i}",
            [device_spec(gpu_type)] * gpus_per_node,
            cpu_threads=cpu_threads,
            runtime_config=run_config,
        )
    if run_config.offload_enabled:
        cluster.peer_runtimes()
    manager = CloudManager(env, cluster.nodes)
    node_type = {n.name: t.strip().upper() for n, t in zip(cluster.nodes, plan)}

    shared_estimator = estimator or RuntimeEstimator()
    users: Dict[str, str] = {}
    for job in trace:
        users.setdefault(job.user, job.group)
    for node in cluster.nodes:
        runtime = node.runtime
        sched_policy = runtime.scheduler.policy
        if hasattr(sched_policy, "estimator"):
            sched_policy.estimator = shared_estimator
        for user, group in users.items():
            runtime.qos.get_or_create(user, group=group)
        if collector is not None:
            collector.attach(runtime)

    env.process(cluster.start())
    env.run(until=boot_grace_s)
    t0 = env.now

    records: List[Dict] = []
    errors: List[BaseException] = []

    def _rank(node: ComputeNode, tj: TraceJob, rank_id: int) -> Generator:
        per_rank_bytes = max(MIB, tj.mem_bytes // tj.num_gpus)
        kernel_calls = max(2, min(8, int(tj.duration * 4)))
        flops_total = tj.duration * device_spec(tj.gpu_type).effective_gflops * 1e9
        kernel = KernelDescriptor(
            name=f"{tj.job_id}-kernel", flops=flops_total / kernel_calls
        )
        fatbin = FatBinary()
        fatbin.register_function(kernel)
        runtime = node.runtime
        frontend = Frontend(
            env,
            runtime.listener,
            name=f"{tj.job_id}/r{rank_id}",
            tenant=tj.user,
            estimated_bytes=per_rank_bytes,
            batch_max_calls=runtime.config.batch_max_calls,
            batch_max_delay_s=runtime.config.batch_max_delay_s,
        )
        yield from frontend.open()
        handle = yield from frontend.register_fat_binary(fatbin)
        yield from frontend.register_function(handle, kernel)
        buf = yield from frontend.cuda_malloc(per_rank_bytes)
        yield from frontend.cuda_memcpy_h2d(buf, per_rank_bytes)
        cpu_gap = (
            cpu_fraction * tj.duration / kernel_calls if cpu_fraction > 0 else 0.0
        )
        for _ in range(kernel_calls):
            yield from frontend.launch_kernel(kernel, [buf])
            if cpu_gap > 0:
                yield from node.cpu_phase(cpu_gap)
        yield from frontend.cuda_memcpy_d2h(buf, per_rank_bytes)
        yield from frontend.cuda_free(buf)
        yield from frontend.cuda_thread_exit()

    def _body(tj: TraceJob):
        def guarded(node: ComputeNode, rank_id: int, failures: List) -> Generator:
            # Rank failures (quota/swap pressure) must surface as the
            # *job's* outcome, not as an unhandled process crash that
            # aborts the whole replay.
            try:
                yield from _rank(node, tj, rank_id)
            except BaseException as exc:  # noqa: BLE001 - re-raised by body
                failures.append(exc)

        def body(node: ComputeNode) -> Generator:
            if tj.num_gpus <= 1:
                yield from _rank(node, tj, 0)
            else:
                failures: List = []
                ranks = [
                    env.process(
                        guarded(node, r, failures), name=f"{tj.job_id}/r{r}"
                    )
                    for r in range(tj.num_gpus)
                ]
                for p in ranks:
                    yield p
                if failures:
                    raise failures[0]

        return body

    def _place(tj: TraceJob) -> ComputeNode:
        wanted = tj.gpu_type.strip().upper()
        candidates = [n for n in cluster.nodes if node_type[n.name] == wanted]
        if not candidates:
            candidates = cluster.nodes
        return min(candidates, key=lambda n: (n.runtime.load_per_vgpu(), n.name))

    def _run(job: Job, tj: TraceJob, node: ComputeNode) -> Generator:
        submitted = env.now
        try:
            yield from job.execute(node, submitted_at=submitted)
        except BaseException as exc:  # noqa: BLE001 - recorded per job
            errors.append(exc)
        outcome: JobOutcome = job.outcome
        finished = env.now
        jct = finished - submitted
        ok = outcome.error is None
        if ok:
            # The head node's history: measured GPU demand per user —
            # what sjf_est/hrrn predict the *next* job from.
            shared_estimator.observe(tj.user, tj.duration, group=tj.group)
        records.append(
            {
                "job_id": tj.job_id,
                "user": tj.user,
                "group": tj.group,
                "gpu_type": tj.gpu_type,
                "num_gpus": tj.num_gpus,
                "node": node.name,
                "submitted": submitted - t0,
                "finished": finished - t0,
                "jct": jct,
                "duration": tj.duration,
                "queue_delay": max(jct - tj.duration, 0.0),
                "slowdown": jct / tj.duration,
                "ok": ok,
            }
        )

    def _arrivals() -> Generator:
        for tj in trace:
            due = t0 + tj.submit_time
            if due > env.now:
                yield env.timeout(due - env.now)
            node = _place(tj)
            job = Job(tj.job_id, _body(tj), tag=tj.gpu_type)
            env.process(_run(job, tj, node), name=f"trace-{tj.job_id}")

    env.process(_arrivals(), name="trace-arrivals")
    env.run()
    if profiler is not None:
        profiler.detach()

    stats: Dict[str, int] = {}
    for node in cluster.nodes:
        for key, value in node.runtime.stats.as_dict().items():
            stats[key] = stats.get(key, 0) + value
    result = TraceReplayResult(
        label=label or policy,
        policy=policy,
        nodes=len(cluster.nodes),
        gpus=cluster.total_gpus,
        records=sorted(records, key=lambda r: r["job_id"]),
        stats=stats,
        node_reports=manager.node_reports(),
        errors=len(errors),
    )
    return result
