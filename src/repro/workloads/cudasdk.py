"""CUDA SDK benchmark models (paper Table 2).

Short-running: SP, MT, PR, SC, BS-S, VA.  Long-running: BS-L.
Kernel-call counts match the paper; sizes follow its problem statements
with the short-running set scaled to stay conflict-free (the paper:
"All short-running applications … have memory requirements well below
the capacity of the GPUs in use").
"""

from __future__ import annotations

from repro.workloads.base import WorkloadSpec

__all__ = [
    "SCALAR_PRODUCT",
    "MATRIX_TRANSPOSE",
    "PARALLEL_REDUCTION",
    "SCAN",
    "BLACK_SCHOLES_SMALL",
    "VECTOR_ADDITION",
    "BLACK_SCHOLES_LARGE",
]

MIB = 1024**2

SCALAR_PRODUCT = WorkloadSpec(
    name="Scalar Product",
    tag="SP",
    description="Scalar product of vector pairs (512 vector pairs of 1M elements, batched)",
    kernel_calls=1,
    gpu_seconds_c2050=3.0,
    # one batch of vector pairs resident at a time + result vector
    buffer_bytes=(64 * MIB, 64 * MIB, 4 * MIB),
    read_only_buffers=(0, 1),
    cpu_fraction=0.05,  # batch staging on the host
)

MATRIX_TRANSPOSE = WorkloadSpec(
    name="Matrix Transpose",
    tag="MT",
    description="Transpose (384x384) matrix",
    kernel_calls=816,
    gpu_seconds_c2050=3.5,
    buffer_bytes=(576 * 1024, 576 * 1024),  # 384² × 4 B each
    read_only_buffers=(0,),
    cpu_fraction=0.10,
)

PARALLEL_REDUCTION = WorkloadSpec(
    name="Parallel Reduction",
    tag="PR",
    description="Parallel reduction of 4M elements",
    kernel_calls=801,
    gpu_seconds_c2050=4.0,
    buffer_bytes=(16 * MIB, 1 * MIB),
    read_only_buffers=(0,),
    cpu_fraction=0.08,  # final reduction stages on the CPU
)

SCAN = WorkloadSpec(
    name="Scan",
    tag="SC",
    description="Parallel prefix sum of 260K elements",
    kernel_calls=3300,
    gpu_seconds_c2050=4.5,
    buffer_bytes=(1040 * 1024, 1040 * 1024),  # 260K × 4 B
    read_only_buffers=(0,),
    cpu_fraction=0.10,
)

BLACK_SCHOLES_SMALL = WorkloadSpec(
    name="Black Scholes (small)",
    tag="BS-S",
    description="Processing of 4M financial options",
    kernel_calls=256,
    gpu_seconds_c2050=4.0,
    # option parameters (read-only) + call/put results
    buffer_bytes=(48 * MIB, 16 * MIB, 16 * MIB),
    read_only_buffers=(0,),
    cpu_fraction=0.05,
)

VECTOR_ADDITION = WorkloadSpec(
    name="Vector Addition",
    tag="VA",
    description="Large vector addition (batched streaming of 100M elements)",
    kernel_calls=1,
    gpu_seconds_c2050=3.0,
    # resident batch of A, B, C (the full 100M-element vectors stream
    # through in batches; one batch is resident per launch)
    buffer_bytes=(80 * MIB, 80 * MIB, 80 * MIB),
    read_only_buffers=(0, 1),
    cpu_fraction=0.05,  # batch staging between streamed chunks
)

BLACK_SCHOLES_LARGE = WorkloadSpec(
    name="Black Scholes (large)",
    tag="BS-L",
    description="Processing of 40M financial options",
    kernel_calls=256,
    gpu_seconds_c2050=36.0,
    # GPU-intensive with very short CPU phases (paper §5.3.3); memory
    # sized so four BS-L jobs share a C2050 without conflicts while
    # BS-L + 2×MM-L exceeds it.
    buffer_bytes=(480 * MIB, 80 * MIB, 80 * MIB),
    read_only_buffers=(0,),
    cpu_fraction=0.02,
    long_running=True,
)
