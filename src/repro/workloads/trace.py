"""Call-trace recording and replay.

The runtime sees applications purely as streams of intercepted CUDA
calls separated by CPU gaps (Figure 1).  This module captures that
stream from any run — wrap the application's :class:`DeviceAPI` in a
:class:`TraceRecorder` — and replays it later under a different
configuration (other GPUs, other vGPU counts, other policies), which is
how one studies scheduling decisions against production workloads
without the applications themselves.

Traces serialize to plain JSON for archival.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor
from repro.workloads.base import DeviceAPI

__all__ = ["TraceEvent", "CallTrace", "TraceRecorder", "replay_trace"]


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One intercepted call (or CPU gap) in the stream.

    ``op`` ∈ {malloc, free, h2d, d2h, launch, cpu}.  Buffer identity is
    positional (the i-th malloc of the trace), so a trace is independent
    of the virtual addresses any particular run produced.
    """

    op: str
    at: float
    buffer: Optional[int] = None       # buffer ordinal for memory ops
    nbytes: int = 0
    kernel_name: Optional[str] = None
    kernel_flops: float = 0.0
    sm_demand: Optional[int] = None
    buffers: Tuple[int, ...] = ()      # launch args (ordinals)
    read_only: Tuple[int, ...] = ()
    seconds: float = 0.0               # cpu gap length

    def to_json(self) -> Dict:
        d = dataclasses.asdict(self)
        d["buffers"] = list(self.buffers)
        d["read_only"] = list(self.read_only)
        return d

    @classmethod
    def from_json(cls, d: Dict) -> "TraceEvent":
        d = dict(d)
        d["buffers"] = tuple(d.get("buffers", ()))
        d["read_only"] = tuple(d.get("read_only", ()))
        return cls(**d)


@dataclasses.dataclass
class CallTrace:
    """A recorded application: its call stream plus buffer sizes."""

    name: str
    buffer_sizes: List[int] = dataclasses.field(default_factory=list)
    events: List[TraceEvent] = dataclasses.field(default_factory=list)

    @property
    def kernel_calls(self) -> int:
        return sum(1 for e in self.events if e.op == "launch")

    @property
    def total_bytes(self) -> int:
        return sum(self.buffer_sizes)

    def dumps(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "buffer_sizes": self.buffer_sizes,
                "events": [e.to_json() for e in self.events],
            },
            indent=1,
        )

    @classmethod
    def loads(cls, text: str) -> "CallTrace":
        data = json.loads(text)
        return cls(
            name=data["name"],
            buffer_sizes=list(data["buffer_sizes"]),
            events=[TraceEvent.from_json(e) for e in data["events"]],
        )


class TraceRecorder(DeviceAPI):
    """A transparent :class:`DeviceAPI` wrapper that records the stream.

    CPU gaps are inferred from simulated time between consecutive calls
    (time spent *inside* a call belongs to the call, not the gap).
    """

    def __init__(self, inner: DeviceAPI, env, name: str = "trace"):
        self.inner = inner
        self.env = env
        self.trace = CallTrace(name=name)
        self._ordinals: Dict[int, int] = {}  # ptr -> buffer ordinal
        self._last_return: Optional[float] = None

    # ------------------------------------------------------------------
    def _note_gap(self) -> None:
        if self._last_return is not None:
            gap = self.env.now - self._last_return
            if gap > 0:
                self.trace.events.append(
                    TraceEvent(op="cpu", at=self._last_return, seconds=gap)
                )

    def _record(self, event: TraceEvent) -> None:
        self.trace.events.append(event)
        self._last_return = self.env.now

    # ------------------------------------------------------------------
    def register(self, fatbin: FatBinary, kernels: Sequence[KernelDescriptor]) -> Generator:
        self._note_gap()
        yield from self.inner.register(fatbin, kernels)
        self._last_return = self.env.now

    def malloc(self, size: int) -> Generator:
        self._note_gap()
        ptr = yield from self.inner.malloc(size)
        ordinal = len(self.trace.buffer_sizes)
        self.trace.buffer_sizes.append(size)
        self._ordinals[ptr] = ordinal
        self._record(TraceEvent(op="malloc", at=self.env.now, buffer=ordinal,
                                nbytes=size))
        return ptr

    def free(self, ptr: int) -> Generator:
        self._note_gap()
        yield from self.inner.free(ptr)
        self._record(TraceEvent(op="free", at=self.env.now,
                                buffer=self._ordinals[ptr]))

    def memcpy_h2d(self, ptr: int, nbytes: int) -> Generator:
        self._note_gap()
        yield from self.inner.memcpy_h2d(ptr, nbytes)
        self._record(TraceEvent(op="h2d", at=self.env.now,
                                buffer=self._ordinals[ptr], nbytes=nbytes))

    def memcpy_d2h(self, ptr: int, nbytes: int) -> Generator:
        self._note_gap()
        yield from self.inner.memcpy_d2h(ptr, nbytes)
        self._record(TraceEvent(op="d2h", at=self.env.now,
                                buffer=self._ordinals[ptr], nbytes=nbytes))

    def launch(self, kernel: KernelDescriptor, args: Sequence[int],
               read_only: Sequence[int]) -> Generator:
        self._note_gap()
        yield from self.inner.launch(kernel, args, read_only)
        self._record(
            TraceEvent(
                op="launch",
                at=self.env.now,
                kernel_name=kernel.name,
                kernel_flops=kernel.flops,
                sm_demand=kernel.sm_demand,
                buffers=tuple(self._ordinals[p] for p in args),
                read_only=tuple(self._ordinals[p] for p in read_only),
            )
        )

    def close(self) -> Generator:
        self._note_gap()
        yield from self.inner.close()
        self._last_return = self.env.now


def replay_trace(trace: CallTrace, api: DeviceAPI, cpu_phase=None) -> Generator:
    """Re-issue a recorded stream through ``api``.

    CPU gaps are re-enacted through ``cpu_phase`` (e.g.
    ``node.cpu_phase``); pass ``None`` to drop them (as-fast-as-possible
    replay).
    """
    fatbin = FatBinary()
    kernels: Dict[str, KernelDescriptor] = {}
    for event in trace.events:
        if event.op == "launch" and event.kernel_name not in kernels:
            kernels[event.kernel_name] = KernelDescriptor(
                name=event.kernel_name,
                flops=event.kernel_flops,
                sm_demand=event.sm_demand,
            )
    for k in kernels.values():
        fatbin.register_function(k)
    yield from api.register(fatbin, list(kernels.values()))

    pointers: Dict[int, int] = {}
    for event in trace.events:
        if event.op == "cpu":
            if cpu_phase is not None and event.seconds > 0:
                yield from cpu_phase(event.seconds)
        elif event.op == "malloc":
            pointers[event.buffer] = yield from api.malloc(event.nbytes)
        elif event.op == "free":
            yield from api.free(pointers.pop(event.buffer))
        elif event.op == "h2d":
            yield from api.memcpy_h2d(pointers[event.buffer], event.nbytes)
        elif event.op == "d2h":
            yield from api.memcpy_d2h(pointers[event.buffer], event.nbytes)
        elif event.op == "launch":
            yield from api.launch(
                kernels[event.kernel_name],
                [pointers[b] for b in event.buffers],
                [pointers[b] for b in event.read_only],
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown trace op {event.op!r}")
    yield from api.close()
