"""Multi-node applications (paper §7: "we intend to evaluate our runtime
on larger clusters and on multi-node applications").

A multi-node application is a set of *ranks*, one per compute node, each
alternating GPU phases (through its node's runtime) with bulk-synchronous
communication over the cluster interconnect — the structure of MPI+CUDA
iterative solvers.  Two collectives are modelled:

- :class:`ClusterBarrier` — rendezvous of all ranks (latency-bound);
- :class:`ClusterAllReduce` — ring all-reduce of a payload
  (bandwidth-bound: ``2·(n-1)/n × bytes / link_bw`` per step).

The point of running these under the paper's runtime: each rank's GPU
phases share its node's devices with other tenants; the runtime's
swapping and scheduling must not break the lock-step structure (a slow
rank stalls the whole application at the next barrier).
"""

from __future__ import annotations

import dataclasses
from typing import Generator, List, Optional

from repro.net.channel import LinkSpec, TCP_10GBE_LINK
from repro.sim import Condition, Environment

from repro.cluster.node import ComputeNode
from repro.core.frontend import Frontend
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

__all__ = [
    "ClusterBarrier",
    "ClusterAllReduce",
    "MultiNodeSpec",
    "run_multinode_application",
]


class ClusterBarrier:
    """Rendezvous of ``n`` ranks across the interconnect.

    Each crossing costs every rank one round trip to the (logical)
    coordinator plus the wait for the slowest rank.
    """

    def __init__(self, env: Environment, ranks: int, link: LinkSpec = TCP_10GBE_LINK):
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        self.env = env
        self.ranks = ranks
        self.link = link
        self._arrived = 0
        self._release = Condition(env)
        self.crossings = 0

    def wait(self) -> Generator:
        """One rank arrives; returns when all have."""
        yield self.env.timeout(self.link.latency_s)  # notify coordinator
        self._arrived += 1
        if self._arrived == self.ranks:
            self._arrived = 0
            self.crossings += 1
            self._release.notify_all()
        else:
            yield self._release.wait()
        yield self.env.timeout(self.link.latency_s)  # release propagation


class ClusterAllReduce:
    """Ring all-reduce of ``nbytes`` across ``n`` ranks."""

    def __init__(self, env: Environment, ranks: int, link: LinkSpec = TCP_10GBE_LINK):
        if ranks < 1:
            raise ValueError("ranks must be >= 1")
        self.env = env
        self.ranks = ranks
        self.link = link
        self._barrier = ClusterBarrier(env, ranks, link)
        self.operations = 0

    def reduce_seconds(self, nbytes: int) -> float:
        if self.ranks == 1:
            return 0.0
        volume = 2 * (self.ranks - 1) / self.ranks * nbytes
        return volume / self.link.bandwidth_bps + 2 * self.ranks * self.link.latency_s

    def reduce(self, nbytes: int) -> Generator:
        """One rank's participation in the collective."""
        yield from self._barrier.wait()  # enter lock-step
        yield self.env.timeout(self.reduce_seconds(nbytes))
        self.operations += 1


@dataclasses.dataclass(frozen=True)
class MultiNodeSpec:
    """A BSP (bulk-synchronous parallel) GPU application.

    Per iteration, each rank runs one kernel over its local shard, then
    all ranks all-reduce ``halo_bytes`` (gradients, halos, residuals…).
    """

    name: str
    iterations: int
    #: per-rank device buffer (the local shard)
    shard_bytes: int
    #: per-rank kernel seconds per iteration on a reference C2050
    kernel_seconds: float
    #: payload of the per-iteration all-reduce
    halo_bytes: int
    #: host-side work between iterations
    cpu_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.shard_bytes <= 0 or self.halo_bytes < 0:
            raise ValueError("invalid byte sizes")


def _rank(
    env: Environment,
    spec: MultiNodeSpec,
    rank_id: int,
    node: ComputeNode,
    collective: ClusterAllReduce,
    finish_times: List[float],
) -> Generator:
    from repro.simcuda.device import TESLA_C2050

    frontend = Frontend(
        env,
        node.runtime.listener,
        name=f"{spec.name}.rank{rank_id}",
        application_id=spec.name,
    )
    yield from frontend.open()
    kernel = KernelDescriptor(
        name=f"{spec.name}-step",
        flops=spec.kernel_seconds * TESLA_C2050.effective_gflops * 1e9,
    )
    fatbin = FatBinary()
    handle = yield from frontend.register_fat_binary(fatbin)
    yield from frontend.register_function(handle, kernel)

    shard = yield from frontend.cuda_malloc(spec.shard_bytes)
    yield from frontend.cuda_memcpy_h2d(shard, spec.shard_bytes)
    for _ in range(spec.iterations):
        yield from frontend.launch_kernel(kernel, [shard])
        # Halos leave the device before hitting the wire.
        yield from frontend.cuda_memcpy_d2h(shard, spec.halo_bytes or 1)
        yield from collective.reduce(spec.halo_bytes)
        yield from frontend.cuda_memcpy_h2d(shard, spec.halo_bytes or 1)
        if spec.cpu_seconds:
            yield from node.cpu_phase(spec.cpu_seconds)
    yield from frontend.cuda_memcpy_d2h(shard, spec.shard_bytes)
    yield from frontend.cuda_free(shard)
    yield from frontend.cuda_thread_exit()
    finish_times.append(env.now)


def run_multinode_application(
    env: Environment,
    spec: MultiNodeSpec,
    nodes: List[ComputeNode],
    link: LinkSpec = TCP_10GBE_LINK,
) -> Generator:
    """Run one rank per node; returns (start, end) simulated times.

    Every node must run the runtime daemon.  Ranks carry the application
    id, so under CUDA 4.0 semantics multiple ranks *on one node* would
    co-locate; here there is exactly one rank per node.
    """
    for node in nodes:
        if node.runtime is None:
            raise ValueError(f"{node.name} runs no runtime daemon")
    collective = ClusterAllReduce(env, ranks=len(nodes), link=link)
    finish_times: List[float] = []
    start = env.now
    procs = [
        env.process(
            _rank(env, spec, i, node, collective, finish_times),
            name=f"{spec.name}.rank{i}",
        )
        for i, node in enumerate(nodes)
    ]
    for p in procs:
        yield p
    return (start, max(finish_times))
