"""Command-line interface.

Subcommands::

    python -m repro.cli devices                 # GPU hardware presets
    python -m repro.cli catalog                 # Table 2 benchmark list
    python -m repro.cli run --jobs MM-L:6 ...   # run a batch on one node
    python -m repro.cli reproduce [figN ...]    # regenerate paper figures
    python -m repro.cli obs report TRACE.jsonl  # analyze a JSON-lines trace
    python -m repro.cli bench simspeed          # simulator throughput scorecard

``run`` builds a single simulated node, executes the requested job mix
through the runtime (or the bare CUDA runtime with ``--bare``) and prints
the batch metrics plus the runtime statistics.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List

from repro.core.config import RuntimeConfig
from repro.core.memory.eviction import EVICTION_POLICY_NAMES
from repro.core.policies import POLICY_NAMES
from repro.simcuda.allocator import PLACEMENT_MODES
from repro.experiments.harness import run_node_batch
from repro.obs import ObsCollector
from repro.experiments.report import format_table
from repro.simcuda.device import (
    GPUSpec,
    INTEL_MIC,
    QUADRO_2000,
    TESLA_C1060,
    TESLA_C2050,
    TESLA_P100,
    TESLA_T4,
    TESLA_V100,
)
from repro.workloads import ALL_WORKLOADS, make_job, workload

__all__ = ["main"]

GPU_PRESETS: Dict[str, GPUSpec] = {
    "c2050": TESLA_C2050,
    "c1060": TESLA_C1060,
    "quadro2000": QUADRO_2000,
    "mic": INTEL_MIC,
    "t4": TESLA_T4,
    "p100": TESLA_P100,
    "v100": TESLA_V100,
}


def _parse_gpus(text: str) -> List[GPUSpec]:
    specs = []
    for token in text.split(","):
        token = token.strip().lower()
        if token not in GPU_PRESETS:
            raise argparse.ArgumentTypeError(
                f"unknown GPU {token!r}; choose from {sorted(GPU_PRESETS)}"
            )
        specs.append(GPU_PRESETS[token])
    return specs


#: Workload mix cycled by bare-integer ``--jobs N`` tokens; deliberately
#: memory-hungry so that a default run oversubscribes device memory and
#: exercises the swap path.
DEFAULT_JOB_MIX = ("MM-L", "BS-L")


def _parse_jobs(tokens: List[str], cpu_fraction: float, use_runtime: bool = True):
    jobs = []

    def add(spec) -> None:
        if cpu_fraction and spec.tag in ("MM-S", "MM-L"):
            spec = spec.with_cpu_fraction(cpu_fraction)
        jobs.append(
            make_job(
                spec,
                name=f"{spec.tag}#{len(jobs)}",
                use_runtime=use_runtime,
                static_device=len(jobs) if not use_runtime else None,
            )
        )

    for token in tokens:
        if token.isdigit():
            # Bare count: cycle the default mix.
            for i in range(int(token)):
                add(workload(DEFAULT_JOB_MIX[i % len(DEFAULT_JOB_MIX)]))
            continue
        if ":" in token:
            tag, count = token.split(":", 1)
            count = int(count)
        else:
            tag, count = token, 1
        spec = workload(tag)
        for _ in range(count):
            add(spec)
    return jobs


def cmd_devices(_args) -> int:
    rows = [
        [
            name,
            spec.name,
            str(spec.sm_count),
            str(spec.core_count),
            f"{spec.clock_ghz:.2f}",
            f"{spec.memory_bytes / 1024**3:.0f}",
            f"{spec.effective_gflops:.0f}",
        ]
        for name, spec in GPU_PRESETS.items()
    ]
    print(format_table(
        ["preset", "card", "SMs", "cores", "GHz", "GiB", "eff GFLOPS"], rows
    ))
    return 0


def cmd_catalog(_args) -> int:
    rows = [
        [
            spec.tag,
            spec.name,
            str(spec.kernel_calls),
            f"{spec.gpu_seconds_c2050:.1f}",
            f"{spec.total_bytes / 1024**2:.0f}",
            "long" if spec.long_running else "short",
        ]
        for spec in ALL_WORKLOADS
    ]
    print(format_table(
        ["tag", "program", "kernel calls", "GPU s (C2050)", "MiB", "class"], rows
    ))
    return 0


def _run_config(args, tracing: bool) -> RuntimeConfig:
    """The RuntimeConfig both ``run`` modes build from the shared flags."""
    return RuntimeConfig(
        vgpus_per_device=args.vgpus,
        policy=args.policy,
        migration_enabled=args.migration,
        kernel_consolidation=args.consolidation,
        defer_transfers=not args.eager_transfers,
        overlap_transfers=args.overlap,
        prefetch_enabled=args.prefetch,
        swap_chunk_bytes=args.swap_chunk_mib * 1024**2,
        eviction_mode=args.eviction_mode,
        eviction_policy=args.eviction_policy,
        tracing=tracing,
        qos_enabled=args.qos,
        vgpu_quantum_s=args.vgpu_quantum_s,
        locality_binding=args.locality,
        migration_penalty_s=args.migration_penalty_s,
        allocator_placement=args.allocator,
        launch_control_plane_s=args.launch_control_plane_s,
        batch_max_calls=args.batch_max_calls,
        batch_max_delay_s=args.batch_max_delay_s,
        graph_replay_enabled=args.graph_replay,
    )


def cmd_run_trace(args) -> int:
    import dataclasses as _dc
    import json as _json

    from repro.workloads.trace_replay import (
        load_trace,
        replay_trace,
        synthetic_trace,
    )

    if args.bare:
        print("trace replay drives the runtime; --bare is not supported",
              file=sys.stderr)
        return 2
    if bool(args.trace) == bool(args.synthetic):
        print("trace mode needs exactly one of --trace FILE or --synthetic N",
              file=sys.stderr)
        return 2
    if args.trace:
        trace = load_trace(args.trace)
        source = args.trace
    else:
        trace = synthetic_trace(
            args.synthetic, seed=args.seed,
            arrival_rate_per_s=args.arrival_rate,
        )
        source = f"synthetic({args.synthetic}, seed={args.seed})"
    collector = None
    if args.trace_out or args.metrics_out or args.events_out:
        collector = ObsCollector(
            trace_path=args.trace_out,
            metrics_path=args.metrics_out,
            events_path=args.events_out,
        )
    config = _run_config(args, tracing=bool(args.trace_out or args.events_out))
    # Trace backlogs park hundreds of queued jobs' allocations in host
    # swap; size it like the replay harness's default, not like a
    # single-node batch box.
    config = _dc.replace(config, host_swap_capacity_bytes=256 * 1024**3)
    result = replay_trace(
        trace,
        nodes=args.nodes,
        gpus_per_node=args.gpus_per_node,
        policy=args.policy,
        config=config,
        cpu_fraction=args.cpu_fraction,
        label=f"cli:{args.policy}",
        collector=collector,
    )
    metrics = result.metrics()
    print(f"trace: {source}   jobs: {len(trace)}   "
          f"nodes: {result.nodes} ({result.gpus} GPUs)   policy: {args.policy}")
    rows = [[key, f"{value:.4f}" if isinstance(value, float) else str(value)]
            for key, value in metrics.items()]
    print(format_table(["metric", "value"], rows))
    if args.bench_out:
        with open(args.bench_out, "w", encoding="utf-8") as fh:
            _json.dump({"label": result.label, "policy": args.policy,
                        "nodes": result.nodes, "gpus": result.gpus,
                        "metrics": metrics}, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench      : {args.bench_out}")
    if collector is not None:
        collector.flush()
    return 0 if result.errors == 0 else 1


def cmd_run(args) -> int:
    if args.mode == "trace":
        return cmd_run_trace(args)
    if not args.jobs:
        print("batch mode needs --jobs (or use: repro run trace ...)",
              file=sys.stderr)
        return 2
    jobs = _parse_jobs(args.jobs, args.cpu_fraction, use_runtime=not args.bare)
    if not jobs:
        print("no jobs requested", file=sys.stderr)
        return 2
    collector = None
    if args.trace_out or args.metrics_out or args.events_out:
        if args.bare:
            print("--trace-out/--metrics-out/--events-out need the runtime; "
                  "ignored with --bare", file=sys.stderr)
        else:
            collector = ObsCollector(
                trace_path=args.trace_out,
                metrics_path=args.metrics_out,
                events_path=args.events_out,
            )
    if args.bare:
        config = None
    else:
        config = _run_config(
            args, tracing=bool(args.trace_out or args.events_out)
        )
    result = run_node_batch(jobs, args.gpus, config, label="cli",
                            collector=collector)
    print(f"jobs: {len(jobs)}   gpus: {len(args.gpus)}   "
          f"mode: {'bare CUDA' if args.bare else f'{args.vgpus} vGPUs/{args.policy}'}")
    print(f"total time : {result.total_time:10.2f} simulated s")
    print(f"avg time   : {result.avg_time:10.2f} simulated s")
    print(f"errors     : {result.errors}")
    if result.stats:
        interesting = {
            k: v for k, v in sorted(result.stats.items()) if v and k != "calls_served"
        }
        print("runtime stats:")
        for key, value in interesting.items():
            print(f"  {key:24s} {value}")
    if collector is not None:
        collector.flush()
        if args.trace_out:
            print(f"trace      : {args.trace_out}")
        if args.metrics_out:
            print(f"metrics    : {args.metrics_out}")
        if args.events_out:
            print(f"events     : {args.events_out}")
    return 0 if result.errors == 0 else 1


def cmd_obs_report(args) -> int:
    from repro.obs import load_phase_breakdowns, render_jobs_report, render_report

    try:
        with open(args.trace, "r", encoding="utf-8") as fh:
            records = load_phase_breakdowns(fh)
    except OSError as exc:
        print(f"cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(f"no PhaseBreakdown events in {args.trace} "
              "(was the run traced with --events-out?)", file=sys.stderr)
        return 1
    if args.jobs:
        print(render_jobs_report(records, top=args.top))
    else:
        print(render_report(records, top=args.top))
    return 0


def cmd_reproduce(args) -> int:
    from repro.experiments.reproduce import main as reproduce_main

    argv = list(args.figures)
    if args.quick:
        argv.append("--quick")
    argv += ["--seed", str(args.seed)]
    return reproduce_main(argv)


def cmd_bench_simspeed(args) -> int:
    from repro.experiments import simspeed

    measurement = simspeed.measure(repeats=args.repeats)
    baseline_path = (
        None if args.baseline is None else pathlib.Path(args.baseline)
    )
    try:
        baseline = simspeed.load_baseline(baseline_path)
    except (OSError, ValueError):
        baseline = None
    print("== simulator speed: "
          f"{simspeed.JOB_COUNT}-job overcommit mix, "
          f"{simspeed.VGPUS} vGPUs (best of {args.repeats}) ==")
    print(simspeed.scorecard(measurement, baseline))
    if args.pin_baseline:
        pinned = simspeed.pin_baseline(measurement, baseline_path)
        path = baseline_path or simspeed.BASELINE_PATH
        print(f"\npinned baseline -> {path}")
        print(f"  events_per_second: {pinned['events_per_second']:.0f} "
              f"(ratchet {pinned['min_speedup']}x)")
        print(f"  macro_events_per_second: "
              f"{pinned['macro_events_per_second']:.0f} "
              f"(same-run gate {pinned['min_macro_speedup']}x)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list GPU hardware presets").set_defaults(
        func=cmd_devices
    )
    sub.add_parser("catalog", help="list the Table 2 benchmarks").set_defaults(
        func=cmd_catalog
    )

    run = sub.add_parser(
        "run",
        help="run a job batch on one simulated node, or replay a "
             "production trace across a cluster (run trace ...)",
    )
    run.add_argument("mode", nargs="?", default="batch",
                     choices=("batch", "trace"),
                     help="'batch' (default): a job mix on one node; "
                          "'trace': open-loop trace replay on a cluster")
    run.add_argument("--jobs", nargs="+", metavar="TAG[:N]|N",
                     help="e.g. MM-L:6 BS-L:2 HS, or a bare count "
                          "(cycles a default memory-heavy mix)")
    run.add_argument("--gpus", type=_parse_gpus, default=[TESLA_C2050],
                     help="comma list of presets (default: c2050)")
    run.add_argument("--vgpus", type=int, default=4)
    run.add_argument("--policy", default="fcfs", choices=POLICY_NAMES)
    run.add_argument("--cpu-fraction", type=float, default=0.0,
                     help="injected CPU fraction for MM-S/MM-L")
    run.add_argument("--bare", action="store_true",
                     help="bare CUDA runtime instead of the paper's runtime")
    run.add_argument("--migration", action="store_true")
    run.add_argument("--consolidation", action="store_true")
    run.add_argument("--eager-transfers", action="store_true",
                     help="disable transfer deferral")
    run.add_argument("--overlap", action="store_true",
                     help="pipeline bulk transfers and write-backs through "
                          "per-vGPU copy streams (overlap engine)")
    run.add_argument("--swap-chunk-mib", type=int, default=0, metavar="MIB",
                     help="demand-paging chunk size in MiB "
                          "(0 = whole-entry granularity)")
    run.add_argument("--eviction-mode", default="context",
                     choices=("context", "partial"),
                     help="inter-application eviction: whole-context swap "
                          "or byte-proportional partial eviction")
    run.add_argument("--eviction-policy", default="lru",
                     choices=EVICTION_POLICY_NAMES,
                     help="victim ordering for --eviction-mode=partial")
    run.add_argument("--qos", action="store_true",
                     help="enable multi-tenant QoS (admission control, "
                          "tenant quotas, vGPU shares)")
    run.add_argument("--vgpu-quantum-s", type=float, default=None,
                     metavar="S",
                     help="preempt a bound context at call boundaries after "
                          "S seconds of GPU time when others wait")
    run.add_argument("--locality", action="store_true",
                     help="locality-aware dynamic binding: retain device "
                          "working sets across unbinds and place/migrate/"
                          "evict by the transfer-cost model")
    run.add_argument("--migration-penalty-s", type=float, default=0.02,
                     metavar="S",
                     help="sticky-affinity hysteresis: modeled penalty "
                          "charged for moving off the affinity device")
    run.add_argument("--allocator", default="first_fit",
                     choices=PLACEMENT_MODES,
                     help="device-memory placement: first_fit or best_fit")
    run.add_argument("--launch-control-plane-s", type=float, default=0.0,
                     metavar="S",
                     help="per-launch driver control-plane cost to model "
                          "(0 = free launches, the historic behavior)")
    run.add_argument("--batch-max-calls", type=int, default=1, metavar="N",
                     help="frontend ships up to N journaled calls per RPC "
                          "(1 = per-call dispatch)")
    run.add_argument("--batch-max-delay-s", type=float, default=None,
                     metavar="S",
                     help="flush a partial batch after S simulated seconds")
    run.add_argument("--graph-replay", action="store_true",
                     help="detect repeated launch sequences and replay them "
                          "as instantiated graphs")
    run.add_argument("--prefetch", action="store_true",
                     help="stage the predicted next-launch working set "
                          "during CPU phases (needs --overlap)")
    run.add_argument("--trace", metavar="FILE",
                     help="[trace mode] replay this CSV/JSON-lines trace file")
    run.add_argument("--synthetic", type=int, default=0, metavar="N",
                     help="[trace mode] generate an N-job synthetic "
                          "trace-shaped workload instead of loading a file")
    run.add_argument("--nodes", type=int, default=8, metavar="K",
                     help="[trace mode] cluster size (default 8)")
    run.add_argument("--gpus-per-node", type=int, default=2, metavar="G",
                     help="[trace mode] GPUs per node (default 2)")
    run.add_argument("--seed", type=int, default=0, metavar="S",
                     help="[trace mode] synthetic generator seed")
    run.add_argument("--arrival-rate", type=float, default=10.0,
                     metavar="JOBS_PER_S",
                     help="[trace mode] synthetic mean arrival rate")
    run.add_argument("--bench-out", metavar="FILE",
                     help="[trace mode] write replay metrics as JSON")
    run.add_argument("--trace-out", metavar="FILE",
                     help="write a Chrome trace-event JSON of the run")
    run.add_argument("--metrics-out", metavar="FILE",
                     help="write Prometheus-style metrics text for the run")
    run.add_argument("--events-out", metavar="FILE",
                     help="write the raw typed event stream as JSON lines "
                          "(input for 'repro obs report')")
    run.set_defaults(func=cmd_run)

    obs = sub.add_parser("obs", help="observability tools")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_sub.add_parser(
        "report",
        help="bottleneck attribution from a JSON-lines trace",
        description="Read a JSON-lines event trace (the --events-out file "
                    "of 'repro run') and print per-tenant and per-context "
                    "phase attribution tables plus the slowest calls.",
    )
    report.add_argument("trace", help="JSON-lines trace file")
    report.add_argument("--jobs", action="store_true",
                        help="per-job / per-user JCT tables instead of "
                             "phase attribution")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="critical-path rows to show (default 10)")
    report.set_defaults(func=cmd_obs_report)

    rep = sub.add_parser("reproduce", help="regenerate the paper's figures")
    rep.add_argument("figures", nargs="*", default=[])
    rep.add_argument("--quick", action="store_true")
    rep.add_argument("--seed", type=int, default=0)
    rep.set_defaults(func=cmd_reproduce)

    bench = sub.add_parser("bench", help="simulator self-benchmarks")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    sspeed = bench_sub.add_parser(
        "simspeed",
        help="measure simulator throughput (stock vs macro-stepped, "
             "tracing off/on) against the pinned baseline",
    )
    sspeed.add_argument(
        "--pin-baseline", action="store_true",
        help="rewrite benchmarks/simspeed_baseline.json from this "
             "run's figures (gate sizes are preserved)",
    )
    sspeed.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="wall-clock figures take the best of N runs (default 3)",
    )
    sspeed.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline JSON to compare against / pin "
             "(default: the checked-in benchmarks/simspeed_baseline.json)",
    )
    sspeed.set_defaults(func=cmd_bench_simspeed)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
