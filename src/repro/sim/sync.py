"""Synchronization primitives built on simulation events.

These mirror ``threading`` primitives but advance on virtual time.  The
paper's runtime is heavily multithreaded (dispatcher threads, vGPU worker
threads, per-connection handlers); these primitives make the Python model
read like the original C++ while staying deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Lock", "Semaphore", "Condition", "FifoQueue"]


class Lock:
    """A mutex.  ``yield lock.acquire()`` … ``lock.release()``.

    Non-reentrant; release by any process is permitted (the runtime's
    inter-application swap protocol hands locks between vGPU threads).
    """

    def __init__(self, env: Environment):
        self.env = env
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        ev = Event(self.env)
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._locked:
            raise SimulationError("release of unlocked Lock")
        if self._waiters:
            nxt = self._waiters.popleft()
            nxt.succeed()  # ownership transfers; stays locked
        else:
            self._locked = False

    def held(self) -> Generator:
        """Process-style context: ``with (yield from lock.held()): ...`` is
        not valid Python for generators, so use explicitly::

            yield lock.acquire()
            try:
                ...
            finally:
                lock.release()
        """
        raise NotImplementedError("use acquire()/release() explicitly")


class Semaphore:
    """Counting semaphore."""

    def __init__(self, env: Environment, value: int = 1):
        if value < 0:
            raise SimulationError("semaphore value must be >= 0")
        self.env = env
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        ev = Event(self.env)
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class Condition:
    """Condition variable: ``wait()`` returns an event; ``notify`` wakes.

    Unlike ``threading.Condition`` there is no associated lock — in a
    cooperative simulation, atomicity between check and wait is automatic
    as long as no ``yield`` intervenes.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._waiters: Deque[Event] = deque()

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        ev = Event(self.env)
        self._waiters.append(ev)
        return ev

    def notify(self, value: Any = None) -> bool:
        """Wake one waiter.  Returns True if someone was woken."""
        if self._waiters:
            self._waiters.popleft().succeed(value)
            return True
        return False

    def notify_all(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many."""
        n = len(self._waiters)
        while self._waiters:
            self._waiters.popleft().succeed(value)
        return n


class FifoQueue:
    """An unbounded FIFO with blocking ``get`` — a thin, intention-revealing
    wrapper used for the runtime's connection/context lists."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(list(self._items))

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def put_front(self, item: Any) -> None:
        """Re-queue at the head (used when a dequeued context must retry)."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.appendleft(item)

    def get(self) -> Event:
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def remove(self, item: Any) -> bool:
        """Remove a specific queued item; True on success."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False
