"""Synchronization primitives built on simulation events.

These mirror ``threading`` primitives but advance on virtual time.  The
paper's runtime is heavily multithreaded (dispatcher threads, vGPU worker
threads, per-connection handlers); these primitives make the Python model
read like the original C++ while staying deterministic.

Every queued waiter is a :class:`~repro.sim.core.Waiter` event: if the
waiting process is interrupted, or the waiter was the losing branch of an
``any_of``, the event cancels itself and the primitive drops it.  Wake-ups,
lock ownership, and semaphore permits therefore always reach a *live*
waiter — a ghost can neither swallow a ``notify()`` nor deadlock a
``Lock`` by receiving an ownership transfer it will never release.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.core import Environment, Event, SimulationError, Waiter, complete_now, granted

__all__ = ["Lock", "Semaphore", "Condition", "FifoQueue"]


def _waiter(env: Environment, queue: Deque) -> Waiter:
    """Enqueue a waiter that removes itself from ``queue`` if cancelled."""
    ev = Waiter(env)
    ev._on_cancel = queue.remove
    queue.append(ev)
    return ev


class Lock:
    """A mutex.  ``yield lock.acquire()`` … ``lock.release()``.

    Non-reentrant; release by any process is permitted (the runtime's
    inter-application swap protocol hands locks between vGPU threads).
    """

    def __init__(self, env: Environment):
        self.env = env
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        if not self._locked:
            self._locked = True
            env = self.env
            if env.macro_step and env.peek() > env._now:
                # Uncontended grant with nothing else pending at this
                # instant: stock would pop the grant event next anyway,
                # so the acquirer may simply continue — no heap event.
                # (The peek() guard keeps same-tick ordering exact: any
                # event already scheduled at `now` — including an URGENT
                # process start — must run before the resumption, as it
                # would in stock.)
                return granted(env)
            ev = Event(env)
            ev.succeed()
        else:
            ev = _waiter(self.env, self._waiters)
        return ev

    def release(self) -> None:
        if not self._locked:
            raise SimulationError("release of unlocked Lock")
        waiters = self._waiters
        while waiters:
            nxt = waiters.popleft()
            if nxt._cancelled:
                continue
            nxt.succeed()  # ownership transfers; stays locked
            return
        self._locked = False


class Semaphore:
    """Counting semaphore."""

    def __init__(self, env: Environment, value: int = 1):
        if value < 0:
            raise SimulationError("semaphore value must be >= 0")
        self.env = env
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        if self._value > 0:
            self._value -= 1
            env = self.env
            if env.macro_step and env.peek() > env._now:
                return granted(env)
            ev = Event(env)
            ev.succeed()
        else:
            ev = _waiter(self.env, self._waiters)
        return ev

    def release(self) -> None:
        waiters = self._waiters
        while waiters:
            nxt = waiters.popleft()
            if nxt._cancelled:
                continue
            nxt.succeed()  # permit transfers directly
            return
        self._value += 1


class Condition:
    """Condition variable: ``wait()`` returns an event; ``notify`` wakes.

    Unlike ``threading.Condition`` there is no associated lock — in a
    cooperative simulation, atomicity between check and wait is automatic
    as long as no ``yield`` intervenes.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._waiters: Deque[Event] = deque()

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self) -> Event:
        return _waiter(self.env, self._waiters)

    def notify(self, value: Any = None) -> bool:
        """Wake one *live* waiter.  Returns True if someone was woken."""
        waiters = self._waiters
        while waiters:
            nxt = waiters.popleft()
            if nxt._cancelled:
                continue
            nxt.succeed(value)
            return True
        return False

    def notify_all(self, value: Any = None) -> int:
        """Wake all current live waiters; returns how many."""
        waiters = self._waiters
        n = 0
        while waiters:
            nxt = waiters.popleft()
            if nxt._cancelled:
                continue
            nxt.succeed(value)
            n += 1
        return n


class FifoQueue:
    """An unbounded FIFO with blocking ``get`` — a thin, intention-revealing
    wrapper used for the runtime's connection/context lists."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(list(self._items))

    def _wake_getter(self, item: Any) -> bool:
        getters = self._getters
        while getters:
            nxt = getters.popleft()
            if nxt._cancelled:
                continue
            nxt.succeed(item)
            return True
        return False

    def put(self, item: Any) -> None:
        if not self._wake_getter(item):
            self._items.append(item)

    def put_front(self, item: Any) -> None:
        """Re-queue at the head (used when a dequeued context must retry)."""
        if not self._wake_getter(item):
            self._items.appendleft(item)

    def get(self) -> Event:
        if self._items:
            env = self.env
            if env.macro_step and env.peek() > env._now:
                return complete_now(Event(env), self._items.popleft())
            ev = Event(env)
            ev.succeed(self._items.popleft())
        else:
            ev = _waiter(self.env, self._getters)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def remove(self, item: Any) -> bool:
        """Remove a specific queued item; True on success."""
        try:
            self._items.remove(item)
            return True
        except ValueError:
            return False
