"""Slot-based timer wheel for recurring ticks.

The kernel's heap is priced per *scheduled event*: every periodic
activity that sleeps via its own :class:`~repro.sim.core.Timeout` pays a
heap push/pop per tick and keeps one pending entry alive per timer.  A
:class:`TimerWheel` multiplexes any number of timers (monitor sampling,
the CPU-phase reaper's rescan, future quantum watchdogs) onto a *single*
pending kernel Timeout — the one for the earliest armed deadline.
Handles live in coarse time slots (buckets keyed by ``when // slot_s``)
so insertion and cancellation are O(1) dict/list operations, and
``cancel()`` never touches the kernel heap.

Timers fire at their *exact* requested time (slots are an index, not a
quantization): the wheel re-arms its kernel Timeout for the earliest
exact deadline, using :meth:`Event.cancel` when a newly inserted timer
preempts the currently armed one — the cancelled Timeout is lazily
deleted from the heap by the kernel.

Determinism: handles due at the same instant fire in insertion order.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.sim.core import Environment, SimulationError, Timeout

__all__ = ["TimerWheel", "TimerHandle"]


class TimerHandle:
    """One armed timer.  ``cancel()`` is O(1) and idempotent."""

    __slots__ = ("when", "fn", "period", "_seq", "_cancelled")

    def __init__(self, when: float, fn: Callable[[], None], period: Optional[float], seq: int):
        self.when = when
        self.fn = fn
        #: None for one-shot; otherwise the timer re-arms ``period``
        #: seconds after each firing until cancelled.
        self.period = period
        self._seq = seq
        self._cancelled = False

    @property
    def active(self) -> bool:
        return not self._cancelled

    def cancel(self) -> None:
        """Stop the timer; a recurring timer fires no further ticks."""
        self._cancelled = True

    def __repr__(self) -> str:
        kind = "every" if self.period is not None else "at"
        state = "cancelled" if self._cancelled else "armed"
        return f"<TimerHandle {kind} {self.when:.6g} {state}>"


class TimerWheel:
    """Multiplexes many timers onto one pending kernel Timeout.

    Parameters
    ----------
    env:
        The simulation environment.
    slot_s:
        Bucket granularity for the slot index.  Purely an internal
        bookkeeping knob — firing times are exact regardless.
    """

    def __init__(self, env: Environment, slot_s: float = 1.0):
        if slot_s <= 0:
            raise SimulationError("slot_s must be positive")
        self.env = env
        self.slot_s = float(slot_s)
        self._buckets: Dict[int, List[TimerHandle]] = {}
        self._seq = itertools.count()
        self._armed: Optional[Timeout] = None
        self._armed_when = float("inf")

    def __len__(self) -> int:
        return sum(
            1 for bucket in self._buckets.values() for h in bucket if not h._cancelled
        )

    # -- arming ----------------------------------------------------------
    def call_at(self, when: float, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn()`` at simulated time ``when`` (one-shot)."""
        if when < self.env.now:
            raise SimulationError(f"call_at({when}) lies in the past (now={self.env.now})")
        return self._insert(TimerHandle(when, fn, None, next(self._seq)))

    def call_after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn()`` after ``delay`` simulated seconds (one-shot)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._insert(TimerHandle(self.env.now + delay, fn, None, next(self._seq)))

    def every(
        self, period: float, fn: Callable[[], None], first: Optional[float] = None
    ) -> TimerHandle:
        """Run ``fn()`` every ``period`` seconds until the handle is
        cancelled.  The first tick fires after ``first`` seconds
        (default: one full period)."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        delay = period if first is None else first
        if delay < 0:
            raise SimulationError(f"negative first delay {delay}")
        return self._insert(TimerHandle(self.env.now + delay, fn, period, next(self._seq)))

    # -- internals -------------------------------------------------------
    def _insert(self, handle: TimerHandle) -> TimerHandle:
        idx = int(handle.when / self.slot_s)
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [handle]
        else:
            bucket.append(handle)
        if handle.when < self._armed_when:
            self._arm(handle.when)
        return handle

    def _arm(self, when: float) -> None:
        prev = self._armed
        if prev is not None and not prev._cancelled and not prev.triggered:
            prev.cancel()  # lazily deleted from the kernel heap
        timeout = Timeout(self.env, when - self.env.now)
        timeout.callbacks.append(self._tick)
        self._armed = timeout
        self._armed_when = when

    def _tick(self, _event) -> None:
        now = self.env.now
        self._armed = None
        self._armed_when = float("inf")

        due: List[TimerHandle] = []
        cur = int(now / self.slot_s)
        for idx in [i for i in self._buckets if i <= cur]:
            bucket = self._buckets[idx]
            keep: List[TimerHandle] = []
            for h in bucket:
                if h._cancelled:
                    continue
                (due if h.when <= now else keep).append(h)
            if keep:
                self._buckets[idx] = keep
            else:
                del self._buckets[idx]

        due.sort(key=lambda h: (h.when, h._seq))
        for handle in due:
            if handle._cancelled:
                continue
            handle.fn()
            if handle.period is not None and not handle._cancelled:
                handle.when += handle.period
                idx = int(handle.when / self.slot_s)
                self._buckets.setdefault(idx, []).append(handle)

        self._rearm()

    def _rearm(self) -> None:
        nxt = float("inf")
        for bucket in self._buckets.values():
            for h in bucket:
                if not h._cancelled and h.when < nxt:
                    nxt = h.when
        if nxt < self._armed_when:
            self._arm(nxt)
