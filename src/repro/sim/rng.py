"""Seeded, named random-number streams.

Every stochastic choice in the reproduction (job draws, CPU-phase jitter,
failure injection) pulls from a named stream derived from a single master
seed, so that adding a new consumer of randomness does not perturb the
draws seen by existing consumers.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent ``numpy.random.Generator`` streams.

    >>> rngs = RngStreams(seed=42)
    >>> a = rngs.stream("jobs")
    >>> b = rngs.stream("failures")
    >>> a is rngs.stream("jobs")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family (e.g. one per experiment repetition)."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RngStreams(int.from_bytes(digest[:8], "little"))
