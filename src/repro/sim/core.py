"""Core of the discrete-event simulation kernel.

The model is cooperative: a *process* is a Python generator that yields
:class:`Event` objects.  When the yielded event fires, the process is
resumed with the event's value (or the event's exception is thrown into
the generator).  The :class:`Environment` advances the virtual clock from
event to event; nothing in this package ever consults wall-clock time.

Event lifecycle
---------------
An event is *pending* until it is triggered (:meth:`Event.succeed` /
:meth:`Event.fail`), *triggered* until its callbacks run, and
*processed* afterwards.  A pending event may instead be *cancelled*
(:meth:`Event.cancel`): it will never fire, and triggering it afterwards
is an error.  Cancellation is what keeps the event queue clean — the
losing branch of an :class:`AnyOf`, the original target of an
interrupted process, and abandoned sync-primitive waiters all cancel
instead of lingering as ghost events that pop through the heap and
consume wake-ups meant for live waiters.

Scheduled events (timeouts) are removed from the heap *lazily*: cancel
is O(1), the dead entry is skipped when popped, and the queue is
compacted in O(n) when cancelled entries pile up — the classic
indexed-heap lazy-deletion scheme, O(log n) amortized per cancel.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3)
...     return env.now
>>> p = env.process(hello(env))
>>> env.run()
>>> p.value
3
"""

from __future__ import annotations

import gc
import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Waiter",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "PENDING",
    "complete_now",
    "granted",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Scheduling priorities.  URGENT is used internally so that the wake-up
#: of a process happens before ordinary events scheduled at the same time.
URGENT = 0
NORMAL = 1

#: Compact the event queue once more than this many cancelled entries
#: are buried in it (and they are the majority of the heap).
_COMPACT_THRESHOLD = 64


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not for model errors)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulated timeline.

    An event starts *pending*, becomes *triggered* once :meth:`succeed` or
    :meth:`fail` is called (which also schedules it on the environment
    queue), and becomes *processed* once its callbacks have run.  A
    pending event can be :meth:`cancel`\\ led instead, after which it will
    never fire.

    Attributes
    ----------
    env:
        The owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` after processing.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused", "_cancelled", "_on_cancel")

    #: Value a deferred event (Timeout) fires with; read by the run loop
    #: when it pops an event whose value is still PENDING.
    _pending_value: Any = None
    #: Whether losing all callbacks (interrupt diversion, AnyOf
    #: resolution) auto-cancels the event.  Opt-in: True for Timeouts and
    #: sync-primitive waiters, False for bare signal events that someone
    #: may still trigger later.
    _auto_cancel = False

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set to True by a consumer (e.g. Process) that takes ownership
        #: of a failure; unhandled failures crash the environment.
        self.defused = False
        self._cancelled = False
        #: Invoked with the event when it is cancelled (sync primitives
        #: use it to purge the waiter from their queues immediately).
        self._on_cancel: Optional[Callable[["Event"], None]] = None

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled (it will never fire)."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._cancelled:
            raise SimulationError(f"{self!r} is cancelled and can never fire")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        heapq.heappush(env._queue, (env._now, NORMAL, next(env._seq), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._cancelled:
            raise SimulationError(f"{self!r} is cancelled and can never fire")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        env = self.env
        heapq.heappush(env._queue, (env._now, NORMAL, next(env._seq), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- cancellation ----------------------------------------------------
    def cancel(self) -> "Event":
        """Cancel a pending event: it will never fire.

        Idempotent on an already-cancelled event.  Raises
        :class:`SimulationError` once the event has been triggered or
        processed — a fired event cannot be unfired.

        Cancelling a scheduled event (a :class:`Timeout`) removes it from
        the queue lazily: the heap entry is skipped on pop and compacted
        away in bulk when dead entries accumulate.
        """
        if self._cancelled:
            return self
        if self.callbacks is None or self._value is not PENDING:
            raise SimulationError(f"cannot cancel {self!r}: already triggered")
        self._cancelled = True
        hook, self._on_cancel = self._on_cancel, None
        if hook is not None:
            hook(self)
        if isinstance(self, Timeout):
            env = self.env
            env._ncancelled += 1
            if (
                env._ncancelled > _COMPACT_THRESHOLD
                and env._ncancelled * 2 > len(env._queue)
            ):
                env._compact()
        return self

    def _detach(self, callback: Callable[["Event"], None]) -> None:
        """Remove one consumer's callback; auto-cancel an opted-in event
        that nobody is left waiting on."""
        cbs = self.callbacks
        if cbs is None:
            return
        try:
            cbs.remove(callback)
        except ValueError:
            pass
        if not cbs and self._auto_cancel and not self._cancelled and self._value is PENDING:
            self.cancel()

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        if self._cancelled:
            state = "cancelled"
        else:
            state = "processed" if self.processed else (
                "triggered" if self.triggered else "pending"
            )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


def complete_now(event: "Event", value: Any = None) -> "Event":
    """Mark a fresh event *processed* with ``value``, bypassing the heap.

    The macro-step fast path for grants that succeed immediately (a free
    lock, an uncontended resource slot, a non-empty store): a process
    that yields a processed event continues synchronously in
    :meth:`Process._resume`'s inline loop — zero heap traffic, same
    simulated timestamp.  Only valid on an event nobody has seen yet.
    """
    event._ok = True
    event._value = value
    event.callbacks = None
    return event


def granted(env: "Environment") -> "Event":
    """A processed, value-less event for macro-mode immediate grants.

    Yielding it continues synchronously; it is immutable once processed,
    so one shared instance per environment serves every valueless grant
    (uncontended locks and semaphores) without an allocation.
    """
    event = env._granted
    if event is None:
        event = env._granted = complete_now(Event(env))
    return event


class Waiter(Event):
    """An event representing a queued waiter of a sync primitive.

    Identical to :class:`Event` except that it cancels itself when its
    last consumer detaches — the waiter of a ``Lock``/``Condition``/
    ``Store`` whose process was interrupted, or whose ``AnyOf`` already
    resolved, must not stay queued to swallow a wake-up or a permit.
    """

    __slots__ = ()
    _auto_cancel = True


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    The value is applied when the timeout is *popped*, not at creation,
    so a pending timeout can be cancelled (losing ``any_of`` branches,
    rescheduled timers).
    """

    __slots__ = ("_delay", "_pending_value")
    _auto_cancel = True

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self.defused = False
        self._cancelled = False
        self._on_cancel = None
        self._delay = delay
        self._pending_value = value
        heapq.heappush(env._queue, (env._now + delay, NORMAL, next(env._seq), self))

    @property
    def delay(self) -> float:
        return self._delay


class Initialize(Event):
    """Internal: the event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self.defused = False
        self._cancelled = False
        self._on_cancel = None
        heapq.heappush(env._queue, (env._now, URGENT, next(env._seq), self))


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The wrapped generator may ``yield`` any :class:`Event`.  ``return``
    (or falling off the end) triggers this event with the return value;
    an uncaught exception fails it.
    """

    __slots__ = ("_generator", "name", "_target", "_resume_cb", "_profile_key")

    def __init__(self, env: "Environment", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event the process is currently waiting on (None when ready
        #: to run or terminated).
        self._target: Optional[Event] = None
        #: The one bound-method object used for all callback registration,
        #: so detaching compares identically and allocates nothing.
        self._resume_cb = self._resume
        #: Hotspot family for the self-profiler, computed once instead of
        #: per event ("serve-app#3" -> "serve-app#").
        self._profile_key = self.name.rstrip("0123456789")
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True until the process terminates."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process must be alive and must not interrupt itself.  The
        interrupt is delivered as an URGENT event so it preempts any other
        event scheduled at the same simulated time.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")

        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume_cb)
        heapq.heappush(env._queue, (env._now, URGENT, next(env._seq), interrupt_event))

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        # Stale wake-up: an interrupt may arrive after the process already
        # terminated at the same timestep, or the process may have been
        # resumed by an interrupt while its original target is still
        # scheduled.  Detect and ignore.
        if self._value is not PENDING:
            return
        target = self._target
        if target is not None and event is not target:
            if not isinstance(event._value, Interrupt):
                return
            # Diverted by an interrupt: detach from the old target.  A
            # waiter or timeout nobody else consumes cancels itself there,
            # so it stops occupying the heap / its primitive's queue.
            target._detach(self._resume_cb)
        self._target = None

        env = self.env
        gen = self._generator
        env._active_process = self
        try:
            while True:
                if event._ok:
                    target = gen.send(event._value)
                else:
                    event.defused = True
                    target = gen.throw(event._value)

                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                if target._cancelled:
                    raise SimulationError(
                        f"process {self.name!r} yielded a cancelled event; "
                        f"it can never fire"
                    )
                cbs = target.callbacks
                if cbs is None:
                    # Already done: loop immediately with its outcome.
                    event = target
                    continue
                if env.macro_step and type(target) is Timeout and not cbs:
                    # Macro step: if this timeout is the next live event in
                    # the whole simulation (and inside the run horizon),
                    # the run loop's very next action would be to pop it
                    # and resume us.  Skip the detour: pop it here, advance
                    # the clock to its exact fire time, and keep running
                    # the generator.  Because the *heap head* is the
                    # horizon check, ordering is identical to stock — any
                    # event scheduled at or before the timeout (including
                    # same-time, earlier-sequence events) makes the check
                    # fail and falls back to the cooperative path.
                    queue = env._queue
                    while queue and queue[0][3]._cancelled:
                        heapq.heappop(queue)
                        env._ncancelled -= 1
                    if queue:
                        head = queue[0]
                        if head[3] is target and head[0] <= env._greedy_limit:
                            heapq.heappop(queue)
                            env._now = head[0]
                            target._ok = True
                            target._value = target._pending_value
                            target.callbacks = None
                            event = target
                            continue
                cbs.append(self._resume_cb)
                self._target = target
                return
        except StopIteration as exc:
            self._target = None
            self.succeed(getattr(exc, "value", None))
        except BaseException as exc:  # noqa: BLE001 - propagate as failure
            self._target = None
            self.fail(exc)
        finally:
            env._active_process = None


class ConditionEvent(Event):
    """Base for AnyOf/AllOf composite events.

    The composite's value is a dict mapping each *triggered* constituent
    event to its value, in trigger order.  When the composite resolves
    (or is cancelled), it detaches from its still-pending constituents;
    a constituent nobody else consumes cancels itself — so the losing
    branch of an ``any_of([timeout, cond.wait()])`` leaves both the heap
    and the condition's waiter queue instead of lingering as a ghost.
    """

    __slots__ = ("_events", "_done", "_cb")
    #: An abandoned composite (its waiting process was interrupted away)
    #: cancels itself, which detaches — and thereby cancels — its still
    #: pending constituents too.
    _auto_cancel = True

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._done: List[Event] = []
        self._cb = self._on_event
        self._on_cancel = self._detach_pending
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        if self._check(len(self._done), len(self._events)):
            self.succeed({})
            return
        for ev in self._events:
            if ev.processed:
                self._on_event(ev)
                if self.triggered:
                    break
            else:
                ev.callbacks.append(self._cb)

    @staticmethod
    def _check(done: int, total: int) -> bool:
        raise NotImplementedError

    def _detach_pending(self, _event: Optional[Event] = None) -> None:
        """Stop consuming the constituents that have not fired yet."""
        for ev in self._events:
            if ev.callbacks is not None and not ev.triggered:
                ev._detach(self._cb)

    def _on_event(self, event: Event) -> None:
        # A constituent that was already triggered when this composite
        # resolved (or was cancelled) still delivers its callback; ignore
        # it — failures stay undefused so they are not silently dropped.
        if self.triggered or self._cancelled:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            self._detach_pending()
            return
        self._done.append(event)
        if self._check(len(self._done), len(self._events)):
            self.succeed({ev: ev.value for ev in self._done})
            self._detach_pending()


class AnyOf(ConditionEvent):
    """Fires when any constituent event fires."""

    __slots__ = ()

    @staticmethod
    def _check(done: int, total: int) -> bool:
        return done >= 1 or total == 0


class AllOf(ConditionEvent):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    @staticmethod
    def _check(done: int, total: int) -> bool:
        return done == total


class Environment:
    """The simulated world: virtual clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (default 0.0).
    """

    #: Macro-stepped model execution (set by the node runtime from
    #: ``RuntimeConfig.macro_step``).  When True, model components elide
    #: per-step heap events whose ordering cannot be observed — the
    #: channel's delivery process, uncontended sync-primitive grants —
    #: and continue synchronously instead.  Simulated timestamps are
    #: bit-identical either way; only wall-clock cost changes.  A raw
    #: Environment stays stock (False) unless someone opts in.
    macro_step = False

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: Cancelled entries buried in the queue (compaction trigger).
        self._ncancelled = 0
        #: Horizon for greedy (macro-step) timeout consumption: a numeric
        #: ``run(until=...)`` sets it so an inline resume never advances
        #: the clock past the requested stop time.
        self._greedy_limit = float("inf")
        #: Lazily-created shared grant event (see :func:`granted`).
        self._granted = None
        #: Optional self-profiler (:class:`repro.sim.profile.SimProfiler`);
        #: when set, the run loop reports every popped event to it.  The
        #: profiler observes wall-clock only and never touches sim time.
        self.profiler = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event creation --------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def _compact(self) -> None:
        """Rebuild the queue without the lazily-deleted cancelled entries.

        In place (slice assignment): the run loop and ``succeed``/``fail``
        hold direct references to the list, so rebinding ``self._queue``
        here would strand every event pushed after the compaction on a
        list nobody drains — the simulation would "run dry" mid-flight.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[3]._cancelled]
        heapq.heapify(queue)
        self._ncancelled = 0

    def peek(self) -> float:
        """Time of the next scheduled (live) event, or ``inf`` if none."""
        queue = self._queue
        while queue:
            if queue[0][3]._cancelled:
                heapq.heappop(queue)
                self._ncancelled -= 1
                continue
            return queue[0][0]
        return float("inf")

    def _pop(self) -> Optional[Event]:
        """Pop the next live event, advance the clock, fire deferred
        values.  Returns None when the queue holds only cancelled
        entries."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            when, _prio, _seq, event = pop(queue)
            if event._cancelled:
                self._ncancelled -= 1
                continue
            self._now = when
            if event._value is PENDING:  # deferred (Timeout) value
                event._ok = True
                event._value = event._pending_value
            return event
        return None

    def step(self) -> None:
        """Process the next scheduled event."""
        event = self._pop()
        if event is None:
            raise SimulationError("no scheduled events")
        if self.profiler is not None:
            self.profiler.on_event(event, len(self._queue))
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a number (run
        until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).

        The garbage collector is paused for the duration of the loop:
        the kernel's object graph is reference-counted (callbacks are
        detached as events resolve), and generational GC passes over the
        live heap are pure overhead on the hot path.
        """
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(until)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, until: Any) -> Any:
        queue = self._queue
        pop = heapq.heappop

        if until is None:
            while queue:
                when, _prio, _seq, event = pop(queue)
                if event._cancelled:
                    self._ncancelled -= 1
                    continue
                self._now = when
                if event._value is PENDING:
                    event._ok = True
                    event._value = event._pending_value
                profiler = self.profiler
                if profiler is not None:
                    profiler.on_event(event, len(queue))
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
            return None

        if isinstance(until, Event):
            while until.callbacks is not None:
                if until._cancelled:
                    raise SimulationError(
                        f"{until!r} was cancelled and will never trigger"
                    )
                if not queue:
                    raise SimulationError("event never triggered; queue exhausted")
                self.step()
            if not until.ok:
                until.defused = True
                raise until.value
            return until.value

        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"until={horizon} lies in the past (now={self._now})")
        # Greedy (macro-step) resumes must not advance the clock past the
        # requested stop time either.
        self._greedy_limit = horizon
        try:
            self._run_bounded(horizon)
        finally:
            self._greedy_limit = float("inf")
        self._now = horizon
        return None

    def _run_bounded(self, horizon: float) -> None:
        queue = self._queue
        pop = heapq.heappop
        while queue and queue[0][0] <= horizon:
            when, _prio, _seq, event = pop(queue)
            if event._cancelled:
                self._ncancelled -= 1
                continue
            self._now = when
            if event._value is PENDING:
                event._ok = True
                event._value = event._pending_value
            profiler = self.profiler
            if profiler is not None:
                profiler.on_event(event, len(queue))
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
