"""Core of the discrete-event simulation kernel.

The model is cooperative: a *process* is a Python generator that yields
:class:`Event` objects.  When the yielded event fires, the process is
resumed with the event's value (or the event's exception is thrown into
the generator).  The :class:`Environment` advances the virtual clock from
event to event; nothing in this package ever consults wall-clock time.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3)
...     return env.now
>>> p = env.process(hello(env))
>>> env.run()
>>> p.value
3
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "PENDING",
]

#: Sentinel for an event value that has not been set yet.
PENDING = object()

#: Scheduling priorities.  URGENT is used internally so that the wake-up
#: of a process happens before ordinary events scheduled at the same time.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (not for model errors)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value supplied to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulated timeline.

    An event starts *pending*, becomes *triggered* once :meth:`succeed` or
    :meth:`fail` is called (which also schedules it on the environment
    queue), and becomes *processed* once its callbacks have run.

    Attributes
    ----------
    env:
        The owning :class:`Environment`.
    callbacks:
        List of callables invoked with the event when it is processed.
        ``None`` after processing.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set to True by a consumer (e.g. Process) that takes ownership
        #: of a failure; unhandled failures crash the environment.
        self.defused = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)

    @property
    def delay(self) -> float:
        return self._delay


class Initialize(Event):
    """Internal: the event that starts a newly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT, 0)


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The wrapped generator may ``yield`` any :class:`Event`.  ``return``
    (or falling off the end) triggers this event with the return value;
    an uncaught exception fails it.
    """

    def __init__(self, env: "Environment", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event the process is currently waiting on (None when ready
        #: to run or terminated).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True until the process terminates."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process must be alive and must not interrupt itself.  The
        interrupt is delivered as an URGENT event so it preempts any other
        event scheduled at the same simulated time.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, URGENT, 0)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the outcome of ``event``."""
        # Stale wake-up: an interrupt may arrive after the process already
        # terminated at the same timestep, or the process may have been
        # resumed by an interrupt while its original target is still
        # scheduled.  Detect and ignore.
        if not self.is_alive:
            return
        if self._target is not None and event is not self._target and not isinstance(
            event._value, Interrupt
        ):
            return

        # Remove us from the old target's callbacks if we were diverted by
        # an interrupt.
        if isinstance(event._value, Interrupt) and self._target is not None:
            if self._target.callbacks is not None and self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)

        self.env._active_process = self
        try:
            while True:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(event._value)

                if not isinstance(target, Event):
                    raise SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                if target.processed:
                    # Already done: loop immediately with its outcome.
                    event = target
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                return
        except StopIteration as exc:
            self._target = None
            self.succeed(getattr(exc, "value", None))
        except BaseException as exc:  # noqa: BLE001 - propagate as failure
            self._target = None
            self.fail(exc)
        finally:
            self.env._active_process = None


class ConditionEvent(Event):
    """Base for AnyOf/AllOf composite events.

    The composite's value is a dict mapping each *triggered* constituent
    event to its value, in trigger order.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._done: List[Event] = []
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        if self._check(len(self._done), len(self._events)):
            self.succeed({})
            return
        for ev in self._events:
            if ev.processed:
                self._on_event(ev)
                if self.triggered:
                    break
            else:
                ev.callbacks.append(self._on_event)

    @staticmethod
    def _check(done: int, total: int) -> bool:
        raise NotImplementedError

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._done.append(event)
        if self._check(len(self._done), len(self._events)):
            self.succeed({ev: ev.value for ev in self._done})


class AnyOf(ConditionEvent):
    """Fires when any constituent event fires."""

    @staticmethod
    def _check(done: int, total: int) -> bool:
        return done >= 1 or total == 0


class AllOf(ConditionEvent):
    """Fires when all constituent events have fired."""

    @staticmethod
    def _check(done: int, total: int) -> bool:
        return done == total


class Environment:
    """The simulated world: virtual clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (default 0.0).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List = []
        self._seq = itertools.count()
        self._active_process: Optional[Process] = None
        #: Optional self-profiler (:class:`repro.sim.profile.SimProfiler`);
        #: when set, :meth:`step` reports every popped event to it.  The
        #: profiler observes wall-clock only and never touches sim time.
        self.profiler = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event creation --------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._seq), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self.profiler is not None:
            self.profiler.on_event(event, len(self._queue))
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a number (run
        until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            while not until.processed:
                if not self._queue:
                    raise SimulationError("event never triggered; queue exhausted")
                self.step()
            if not until.ok:
                until.defused = True
                raise until.value
            return until.value
        # numeric horizon
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
