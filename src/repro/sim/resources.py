"""Capacity-limited resources for the simulation kernel.

Three families, mirroring what the cluster/GPU models need:

- :class:`Resource` / :class:`PriorityResource` — ``k`` interchangeable
  slots (CPU cores, PCIe engines, the single kernel-execution engine of a
  GPU).  Requests are events; ``with resource.request() as req: yield req``
  is the canonical usage inside a process.
- :class:`Container` — a homogeneous amount of "stuff" (bytes of device
  memory at the coarse accounting level).
- :class:`Store` — a FIFO of Python objects (message queues).

All pending claims (requests, getters, putters) are auto-cancelling
events: if the claiming process is interrupted, or the claim loses an
``any_of`` race, the event cancels itself and drops out of the queue so
a slot/item is never granted to a dead claimant.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.core import Environment, Event, SimulationError, complete_now

__all__ = ["Resource", "PriorityResource", "Container", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager: releasing on ``__exit__`` cancels the
    request if still queued, or frees the slot if acquired.
    """

    __slots__ = ("resource", "priority", "_order")
    _auto_cancel = True

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._order = next(resource._counter)
        self._on_cancel = resource._drop_queued
        resource._do_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def sort_key(self):
        return (self.priority, self._order)


class Resource:
    """``capacity`` interchangeable slots with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []
        self._counter = itertools.count()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Free a slot (or cancel a still-queued request). Idempotent."""
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        elif request in self.queue:
            self.queue.remove(request)

    # -- internal ---------------------------------------------------------
    def _drop_queued(self, request: Request) -> None:
        """Cancellation hook: a queued request's claimant went away."""
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity and not self.queue:
            self.users.append(request)
            env = request.env
            if env.macro_step and env.peek() > env._now:
                # The slot is granted synchronously either way (users
                # already holds the request); with nothing else pending
                # at this instant, the requester may continue without a
                # heap round-trip and same-tick ordering stays exact.
                complete_now(request)
            else:
                request.succeed()
        else:
            self.queue.append(request)
            self._sort_queue()

    def _sort_queue(self) -> None:
        pass  # plain Resource is strict FIFO

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.pop(0)
            if nxt._cancelled:
                continue
            self.users.append(nxt)
            nxt.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose queue orders by (priority, FIFO).

    Lower priority values are served first.
    """

    def _sort_queue(self) -> None:
        self.queue.sort(key=Request.sort_key)


class ContainerEvent(Event):
    __slots__ = ("amount", "_queue")
    _auto_cancel = True

    def __init__(self, container: "Container", amount: float, queue: Deque):
        super().__init__(container.env)
        self.amount = amount
        self._queue = queue
        self._on_cancel = queue.remove


class Container:
    """A continuous quantity with blocking ``get``/``put``.

    Used for coarse-grained accounting where exact placement does not
    matter (the fragmentation-aware allocator in ``repro.simcuda`` handles
    placement-sensitive accounting).
    """

    def __init__(self, env: Environment, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise SimulationError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[ContainerEvent] = deque()
        self._putters: Deque[ContainerEvent] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerEvent:
        if amount < 0:
            raise SimulationError("negative amount")
        if (
            self.env.macro_step
            and not self._putters
            and not self._getters
            and self._level + amount <= self.capacity
            and self.env.peek() > self.env._now
        ):
            # No queue to disturb and the deposit fits: apply and go.
            self._level += amount
            return complete_now(ContainerEvent(self, amount, self._putters))
        ev = ContainerEvent(self, amount, self._putters)
        self._putters.append(ev)
        self._settle()
        return ev

    def get(self, amount: float) -> ContainerEvent:
        if amount < 0:
            raise SimulationError("negative amount")
        if (
            self.env.macro_step
            and not self._getters
            and not self._putters
            and self._level >= amount
            and self.env.peek() > self.env._now
        ):
            self._level -= amount
            return complete_now(ContainerEvent(self, amount, self._getters))
        ev = ContainerEvent(self, amount, self._getters)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and self._level + self._putters[0].amount <= self.capacity:
                ev = self._putters.popleft()
                self._level += ev.amount
                ev.succeed()
                progress = True
            if self._getters and self._level >= self._getters[0].amount:
                ev = self._getters.popleft()
                self._level -= ev.amount
                ev.succeed()
                progress = True


class StoreGet(Event):
    __slots__ = ("_store",)
    _auto_cancel = True

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        self._store = store
        self._on_cancel = store._getters.remove


class StorePut(Event):
    __slots__ = ("item", "_store")
    _auto_cancel = True

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        self._store = store
        self._on_cancel = store._putters.remove


class Store:
    """FIFO of arbitrary items with optional capacity bound."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity if capacity is not None else float("inf")
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        if (
            self.env.macro_step
            and len(self.items) < self.capacity
            and self.env.peek() > self.env._now
        ):
            # Space available: hand the item to the first live getter (or
            # shelve it) and let the putter continue synchronously.
            ev = complete_now(StorePut(self, item))
            getters = self._getters
            while getters:
                getter = getters.popleft()
                if getter._cancelled:
                    continue
                getter.succeed(item)
                return ev
            self.items.append(item)
            return ev
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._settle()
        return ev

    def get(self) -> StoreGet:
        if (
            self.env.macro_step
            and self.items
            and not self._putters
            and self.env.peek() > self.env._now
        ):
            return complete_now(StoreGet(self), self.items.popleft())
        ev = StoreGet(self)
        self._getters.append(ev)
        self._settle()
        return ev

    def _settle(self) -> None:
        items = self.items
        getters = self._getters
        putters = self._putters
        progress = True
        while progress:
            progress = False
            if putters and len(items) < self.capacity:
                ev = putters.popleft()
                items.append(ev.item)
                ev.succeed()
                progress = True
            if getters and items:
                ev = getters.popleft()
                ev.succeed(items.popleft())
                progress = True
