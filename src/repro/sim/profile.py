"""Self-profiling for the DES kernel: where does *wall-clock* time go?

The simulator's correctness story is that nothing consults wall-clock
time — so the profiler lives outside the model.  It hooks
:meth:`Environment.step` (via ``env.profiler``) and counts events,
queue depth and per-handler hotspots, and measures elapsed
``time.perf_counter`` between :meth:`attach` and :meth:`report`.  The
resulting events/sec and sim-seconds-per-wall-second figures are the
baseline the simulator-throughput work is measured against
(``BENCH_simspeed.json``).

Hotspots are keyed by *process family*: the callback of most events is
a bound ``Process._resume``, whose process name ("serve-app#3",
"reaper-0") collapses to its family ("serve-app#", "reaper-") by
stripping trailing digits — so a thousand per-connection processes
roll up into one row.  Events with no process callback (pure
condition/trigger plumbing) are keyed by their event type.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SimProfiler"]


class SimProfiler:
    """Counts DES kernel activity; attach to an Environment, then report.

    Usage::

        profiler = SimProfiler()
        profiler.attach(env)
        env.run()
        print(profiler.report())
    """

    def __init__(self) -> None:
        self.events_processed = 0
        self.queue_depth_sum = 0
        self.queue_depth_peak = 0
        self.hotspots: Dict[str, int] = {}
        #: Free-form named counters bumped by instrumented model code via
        #: :meth:`count` (e.g. gauge recompute vs. memo-hit tallies).
        #: Purely observational — never consulted by the model.
        self.counters: Dict[str, int] = {}
        self._env: Optional[Any] = None
        self._wall_start: Optional[float] = None
        self._wall_elapsed = 0.0
        self._sim_start = 0.0
        self._sim_elapsed = 0.0

    # ------------------------------------------------------------------
    def attach(self, env: Any) -> "SimProfiler":
        """Start profiling ``env`` (replaces any previous profiler).

        Re-attaching (same or different environment) folds the interval
        accumulated since the previous :meth:`attach` into the running
        totals first — a double attach must not discard measured time.
        """
        if self._env is not None:
            self.detach()
        self._env = env
        env.profiler = self
        self._wall_start = time.perf_counter()
        self._sim_start = env.now
        return self

    def detach(self) -> None:
        """Stop profiling; elapsed wall/sim time is frozen into the report."""
        if self._env is None:
            return
        if self._wall_start is not None:
            self._wall_elapsed += time.perf_counter() - self._wall_start
            self._wall_start = None
        self._sim_elapsed += self._env.now - self._sim_start
        if getattr(self._env, "profiler", None) is self:
            self._env.profiler = None
        self._env = None

    # ------------------------------------------------------------------
    def on_event(self, event: Any, queue_depth: int) -> None:
        """Called by the run loop for every popped event.

        This runs once per event while tracing, so it must stay cheap:
        Process precomputes its hotspot family key (``_profile_key``);
        everything else falls back to the event type name.
        """
        self.events_processed += 1
        self.queue_depth_sum += queue_depth
        if queue_depth > self.queue_depth_peak:
            self.queue_depth_peak = queue_depth
        callbacks = event.callbacks
        if callbacks:
            key = getattr(
                getattr(callbacks[0], "__self__", None), "_profile_key", None
            )
            if key is None:
                key = type(event).__name__
        else:
            key = type(event).__name__
        hot = self.hotspots
        try:
            hot[key] += 1
        except KeyError:
            hot[key] = 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter (cheap; for model-side instrumentation)."""
        try:
            self.counters[name] += n
        except KeyError:
            self.counters[name] = n

    # ------------------------------------------------------------------
    def _elapsed(self) -> Tuple[float, float]:
        wall = self._wall_elapsed
        sim = self._sim_elapsed
        if self._env is not None:
            if self._wall_start is not None:
                wall += time.perf_counter() - self._wall_start
            sim += self._env.now - self._sim_start
        return wall, sim

    def report(self, top: int = 10) -> Dict[str, Any]:
        """Summary dict (JSON-serializable) of the profiled run."""
        wall, sim = self._elapsed()
        events = self.events_processed
        hot: List[Tuple[str, int]] = sorted(
            self.hotspots.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top]
        return {
            "events": events,
            "wall_seconds": wall,
            "sim_seconds": sim,
            "events_per_second": events / wall if wall > 0 else 0.0,
            "sim_seconds_per_wall_second": sim / wall if wall > 0 else 0.0,
            "queue_depth_mean": self.queue_depth_sum / events if events else 0.0,
            "queue_depth_peak": self.queue_depth_peak,
            "hotspots": [{"handler": k, "events": v} for k, v in hot],
            "counters": dict(sorted(self.counters.items())),
        }

    def __repr__(self) -> str:
        wall, sim = self._elapsed()
        return (
            f"<SimProfiler events={self.events_processed} "
            f"wall={wall:.3f}s sim={sim:.3f}s>"
        )
