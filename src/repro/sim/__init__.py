"""Deterministic discrete-event simulation (DES) kernel.

This package is the temporal substrate for the whole reproduction: GPUs,
PCIe transfers, sockets, CPU phases, schedulers and the runtime itself all
advance on the same simulated clock.  The design is a clean-room,
generator-based process model in the style of SimPy:

- :class:`~repro.sim.core.Environment` owns the virtual clock and the
  event queue.
- :class:`~repro.sim.core.Event` is a one-shot occurrence carrying a value
  or an exception.
- :class:`~repro.sim.core.Process` wraps a Python generator; the generator
  ``yield``\\ s events and is resumed when they fire.
- :mod:`repro.sim.resources` provides capacity-limited resources, stores
  and containers.
- :mod:`repro.sim.sync` provides locks, semaphores, condition variables
  and FIFO queues built on events.

Determinism: events scheduled for the same simulated time fire in strict
FIFO order of scheduling (a monotonically increasing sequence number breaks
ties), so a given program produces an identical trace on every run.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    Waiter,
)
from repro.sim.profile import SimProfiler
from repro.sim.resources import Container, PriorityResource, Resource, Store
from repro.sim.sync import Condition, FifoQueue, Lock, Semaphore
from repro.sim.rng import RngStreams
from repro.sim.timers import TimerHandle, TimerWheel

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "FifoQueue",
    "Interrupt",
    "Lock",
    "PriorityResource",
    "Process",
    "Resource",
    "RngStreams",
    "Semaphore",
    "SimProfiler",
    "SimulationError",
    "Store",
    "TimerHandle",
    "TimerWheel",
    "Timeout",
    "Waiter",
]
