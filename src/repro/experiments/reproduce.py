"""Reproduce every figure in one run.

Usage::

    python -m repro.experiments.reproduce            # all figures
    python -m repro.experiments.reproduce fig7 fig9  # a subset
    python -m repro.experiments.reproduce --quick    # reduced repeats

Prints the series each paper figure plots (simulated seconds, plus swap
and migration counts).  Deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import figures
from repro.experiments.report import format_bars, format_figure

__all__ = ["main"]

RUNNERS = {
    "fig5": lambda seed, quick: figures.fig5_overhead(
        seed=seed, repeats=1 if quick else 3
    ),
    "fig6": lambda seed, quick: figures.fig6_sharing(
        seed=seed, repeats=1 if quick else 3
    ),
    "fig7": lambda seed, quick: figures.fig7_swapping(
        seed=seed, cpu_fractions=(0.0, 1.0, 2.0) if quick else (0.0, 0.5, 1.0, 1.5, 2.0)
    ),
    "fig8": lambda seed, quick: figures.fig8_mix(seed=seed),
    "fig9": lambda seed, quick: figures.fig9_load_balancing(seed=seed),
    "fig10": lambda seed, quick: figures.fig10_cluster_short(
        seed=seed, repeats=1 if quick else 3
    ),
    "fig11": lambda seed, quick: figures.fig11_cluster_long(seed=seed),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figures", nargs="*", default=[], metavar="FIG",
                        help=f"subset to run (default: all of {', '.join(RUNNERS)})")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats / sweep points")
    parser.add_argument("--bars", action="store_true",
                        help="also render ASCII bar charts")
    args = parser.parse_args(argv)

    targets = args.figures or list(RUNNERS)
    unknown = [t for t in targets if t not in RUNNERS]
    if unknown:
        parser.error(f"unknown figure(s) {unknown}; choose from {sorted(RUNNERS)}")

    for target in targets:
        t0 = time.time()
        result = RUNNERS[target](args.seed, args.quick)
        print(format_figure(result))
        if args.bars:
            print(format_bars(result))
        print(f"   [{target} regenerated in {time.time() - t0:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
