"""Drivers reproducing the paper's figures (§5.3–§5.4).

Every driver returns a :class:`FigureResult` holding the same series the
paper plots (plus the bar annotations: swap counts for Figures 7/8,
migration counts for Figure 9).  Absolute seconds differ from the paper
— the substrate is a simulator, not the authors' testbed — but the
shapes (who wins, by what factor, where crossovers fall) are asserted by
``benchmarks/``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.torque import TorqueMode
from repro.core.config import RuntimeConfig
from repro.experiments.harness import run_cluster_batch, run_node_batch
from repro.sim.rng import RngStreams
from repro.simcuda.device import QUADRO_2000, TESLA_C1060, TESLA_C2050
from repro.workloads.base import WorkloadSpec
from repro.workloads.catalog import SHORT_RUNNING, workload
from repro.workloads.generator import make_job

__all__ = [
    "FigureResult",
    "fig5_overhead",
    "fig6_sharing",
    "fig7_swapping",
    "fig8_mix",
    "fig9_load_balancing",
    "fig10_cluster_short",
    "fig11_cluster_long",
]

#: The paper's single-node testbed (§5.1): two C2050s and one C1060.
NODE_3GPU = [TESLA_C2050, TESLA_C2050, TESLA_C1060]
#: The unbalanced node of §5.3.4: the C1060 replaced by a Quadro 2000.
NODE_UNBALANCED = [TESLA_C2050, TESLA_C2050, QUADRO_2000]
#: The two compute nodes of the §5.4 cluster.
CLUSTER_NODES = [NODE_3GPU, [TESLA_C1060]]


@dataclasses.dataclass
class FigureResult:
    """One figure's data: x-axis, named series, and bar annotations."""

    figure: str
    x_label: str
    x_values: List
    #: series label → one value per x (total seconds unless stated)
    series: Dict[str, List[float]]
    #: annotation label → one count per x (swaps, migrations)
    annotations: Dict[str, List[int]] = dataclasses.field(default_factory=dict)
    #: secondary metric (cluster figures report Avg alongside Total)
    avg_series: Dict[str, List[float]] = dataclasses.field(default_factory=dict)

    def series_value(self, label: str, x) -> float:
        return self.series[label][self.x_values.index(x)]


def _draw_short_specs(rng, count: int) -> List[WorkloadSpec]:
    picks = rng.integers(0, len(SHORT_RUNNING), size=count)
    return [SHORT_RUNNING[int(i)] for i in picks]


def _jobs_from_specs(specs: Sequence[WorkloadSpec], use_runtime: bool):
    # Bare-CUDA jobs carry the programmer-defined static binding
    # (cudaSetDevice(i % #GPUs)); the runtime ignores the same call.
    return [
        make_job(
            spec,
            name=f"{spec.tag}#{i}",
            use_runtime=use_runtime,
            static_device=i,
        )
        for i, spec in enumerate(specs)
    ]


# ---------------------------------------------------------------------------
# Figure 5 — overhead vs bare CUDA runtime (1 GPU, 1–8 short jobs)
# ---------------------------------------------------------------------------

def fig5_overhead(
    seed: int = 0,
    repeats: int = 3,
    job_counts: Sequence[int] = (1, 2, 4, 8),
    vgpu_counts: Sequence[int] = (1, 2, 4, 8),
) -> FigureResult:
    """§5.3.1: our runtime against the bare CUDA runtime on one GPU.

    The bare runtime is the lower bound; our runtime approaches it as
    vGPUs (sharing) increase; worst case ≈10% overhead.
    """
    rngs = RngStreams(seed)
    labels = ["CUDA Runtime"] + [f"{k} vGPU" + ("s" if k > 1 else "") for k in vgpu_counts]
    sums = {label: [0.0] * len(job_counts) for label in labels}

    for rep in range(repeats):
        rng = rngs.spawn(f"fig5-rep{rep}").stream("jobs")
        for xi, n in enumerate(job_counts):
            specs = _draw_short_specs(rng, n)
            result = run_node_batch(
                _jobs_from_specs(specs, use_runtime=False),
                [TESLA_C2050],
                config=None,
                label="bare",
            )
            sums["CUDA Runtime"][xi] += result.total_time
            for k, label in zip(vgpu_counts, labels[1:]):
                result = run_node_batch(
                    _jobs_from_specs(specs, use_runtime=True),
                    [TESLA_C2050],
                    config=RuntimeConfig(vgpus_per_device=k),
                    label=label,
                )
                sums[label][xi] += result.total_time

    series = {label: [v / repeats for v in vals] for label, vals in sums.items()}
    return FigureResult(
        figure="Figure 5",
        x_label="# of jobs",
        x_values=list(job_counts),
        series=series,
    )


# ---------------------------------------------------------------------------
# Figure 6 — GPU sharing with 3 GPUs, 8–48 short jobs
# ---------------------------------------------------------------------------

def fig6_sharing(
    seed: int = 0,
    repeats: int = 3,
    job_counts: Sequence[int] = (8, 16, 32, 48),
    vgpu_counts: Sequence[int] = (1, 2, 4),
    bare_limit: int = 8,
) -> FigureResult:
    """§5.3.2: sharing on the 3-GPU node.  The bare CUDA runtime cannot
    handle more than 8 concurrent jobs, so its series stops there."""
    rngs = RngStreams(seed)
    labels = ["CUDA runtime"] + [f"{k} vGPU" + ("s" if k > 1 else "") for k in vgpu_counts]
    sums: Dict[str, List[Optional[float]]] = {
        label: [0.0] * len(job_counts) for label in labels
    }

    for rep in range(repeats):
        rng = rngs.spawn(f"fig6-rep{rep}").stream("jobs")
        for xi, n in enumerate(job_counts):
            specs = _draw_short_specs(rng, n)
            if n <= bare_limit:
                result = run_node_batch(
                    _jobs_from_specs(specs, use_runtime=False),
                    NODE_3GPU,
                    config=None,
                )
                sums["CUDA runtime"][xi] += result.total_time
            else:
                sums["CUDA runtime"][xi] = None
            for k, label in zip(vgpu_counts, labels[1:]):
                result = run_node_batch(
                    _jobs_from_specs(specs, use_runtime=True),
                    NODE_3GPU,
                    config=RuntimeConfig(vgpus_per_device=k),
                )
                sums[label][xi] += result.total_time

    series = {
        label: [None if v is None else v / repeats for v in vals]
        for label, vals in sums.items()
    }
    return FigureResult(
        figure="Figure 6",
        x_label="# of jobs",
        x_values=list(job_counts),
        series=series,
    )


# ---------------------------------------------------------------------------
# Figure 7 — conflicting memory needs: effect of swapping (36 MM-L jobs)
# ---------------------------------------------------------------------------

def fig7_swapping(
    seed: int = 0,
    cpu_fractions: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    njobs: int = 36,
) -> FigureResult:
    """§5.3.3: serialized execution grows linearly with the CPU fraction;
    GPU sharing (4 vGPUs) keeps total time ~constant thanks to swapping."""
    serialized, sharing, swaps = [], [], []
    for fraction in cpu_fractions:
        spec = workload("MM-L").with_cpu_fraction(fraction)
        jobs = lambda: [
            make_job(spec, name=f"MM-L#{i}", use_runtime=True) for i in range(njobs)
        ]
        r1 = run_node_batch(jobs(), NODE_3GPU, RuntimeConfig(vgpus_per_device=1))
        r4 = run_node_batch(jobs(), NODE_3GPU, RuntimeConfig(vgpus_per_device=4))
        serialized.append(r1.total_time)
        sharing.append(r4.total_time)
        swaps.append(r4.swaps)
    return FigureResult(
        figure="Figure 7",
        x_label="Fraction of CPU code",
        x_values=list(cpu_fractions),
        series={
            "serialized execution (1 vGPU)": serialized,
            "GPU sharing (4 vGPUs)": sharing,
        },
        annotations={"swaps (4 vGPUs)": swaps},
    )


# ---------------------------------------------------------------------------
# Figure 8 — BS-L / MM-L workload mix
# ---------------------------------------------------------------------------

def fig8_mix(
    seed: int = 0,
    mixes: Sequence[Tuple[int, int]] = ((36, 0), (27, 9), (18, 18), (9, 27), (0, 36)),
    mml_cpu_fraction: float = 1.0,
) -> FigureResult:
    """§5.3.3: 36 jobs mixing GPU-intensive BS-L with CPU-phase-heavy,
    memory-hungry MM-L.  Sharing gains grow as MM-L dominates; at a
    75/25 mix the swap overhead makes sharing slightly worse."""
    bsl = workload("BS-L")
    mml = workload("MM-L").with_cpu_fraction(mml_cpu_fraction)
    serialized, sharing, swaps = [], [], []
    x_labels = []
    for n_bs, n_mm in mixes:
        x_labels.append(f"{int(100 * n_bs / (n_bs + n_mm))}/{int(100 * n_mm / (n_bs + n_mm))}")

        def jobs():
            out = []
            # Interleave so round-robin placement mixes classes per GPU.
            for i in range(max(n_bs, n_mm)):
                if i < n_bs:
                    out.append(make_job(bsl, name=f"BS-L#{i}", use_runtime=True))
                if i < n_mm:
                    out.append(make_job(mml, name=f"MM-L#{i}", use_runtime=True))
            return out

        r1 = run_node_batch(jobs(), NODE_3GPU, RuntimeConfig(vgpus_per_device=1))
        r4 = run_node_batch(jobs(), NODE_3GPU, RuntimeConfig(vgpus_per_device=4))
        serialized.append(r1.total_time)
        sharing.append(r4.total_time)
        swaps.append(r4.swaps)
    return FigureResult(
        figure="Figure 8",
        x_label="Workload composition - Fraction BlackScholes/Matmul",
        x_values=x_labels,
        series={
            "serialized execution (1 vGPU)": serialized,
            "GPU sharing (4 vGPUs)": sharing,
        },
        annotations={"swaps (4 vGPUs)": swaps},
    )


# ---------------------------------------------------------------------------
# Figure 9 — unbalanced node: load balancing through dynamic binding
# ---------------------------------------------------------------------------

def fig9_load_balancing(
    seed: int = 0,
    job_counts: Sequence[int] = (12, 24, 36),
    cpu_fractions: Sequence[float] = (0.0, 1.0),
) -> FigureResult:
    """§5.3.4: 2×C2050 + Quadro 2000, MM-S jobs.  Migrating jobs from the
    slow to the fast GPUs helps small batches; with many pending jobs the
    fast GPUs serve the queue instead (few or no migrations)."""
    x_values: List[str] = []
    no_lb: List[float] = []
    with_lb: List[float] = []
    migrations: List[int] = []
    for fraction in cpu_fractions:
        spec = workload("MM-S").with_cpu_fraction(fraction)
        for n in job_counts:
            x_values.append(f"{n} jobs, cpu={fraction:g}")
            jobs = lambda: [
                make_job(spec, name=f"MM-S#{i}", use_runtime=True) for i in range(n)
            ]
            r_static = run_node_batch(
                jobs(),
                NODE_UNBALANCED,
                RuntimeConfig(vgpus_per_device=4, migration_enabled=False),
            )
            r_dynamic = run_node_batch(
                jobs(),
                NODE_UNBALANCED,
                RuntimeConfig(vgpus_per_device=4, migration_enabled=True),
            )
            no_lb.append(r_static.total_time)
            with_lb.append(r_dynamic.total_time)
            migrations.append(r_dynamic.migrations)
    return FigureResult(
        figure="Figure 9",
        x_label="# of jobs (per CPU fraction)",
        x_values=x_values,
        series={
            "no load balancing": no_lb,
            "load balancing through dynamic binding": with_lb,
        },
        annotations={"migrations": migrations},
    )


# ---------------------------------------------------------------------------
# Figure 10 — two-node cluster, short jobs, TORQUE
# ---------------------------------------------------------------------------

def _cluster_configs() -> Dict[str, RuntimeConfig]:
    return {
        "serialized execution": RuntimeConfig(vgpus_per_device=1),
        "GPU sharing (4 vGPUs)": RuntimeConfig(vgpus_per_device=4),
        "GPU sharing + load balancing": RuntimeConfig(
            vgpus_per_device=4, offload_enabled=True
        ),
    }


def fig10_cluster_short(
    seed: int = 0,
    repeats: int = 3,
    job_counts: Sequence[int] = (32, 48),
) -> FigureResult:
    """§5.4: short jobs through TORQUE on the unbalanced 2-node cluster.
    GPU sharing beats serialized by up to ~28%; inter-node offloading
    adds up to ~18%."""
    rngs = RngStreams(seed)
    configs = _cluster_configs()
    totals = {label: [0.0] * len(job_counts) for label in configs}
    avgs = {label: [0.0] * len(job_counts) for label in configs}
    for rep in range(repeats):
        rng = rngs.spawn(f"fig10-rep{rep}").stream("jobs")
        for xi, n in enumerate(job_counts):
            specs = _draw_short_specs(rng, n)
            for label, config in configs.items():
                result = run_cluster_batch(
                    _jobs_from_specs(specs, use_runtime=True),
                    CLUSTER_NODES,
                    config,
                    mode=TorqueMode.OBLIVIOUS,
                    label=label,
                )
                totals[label][xi] += result.total_time
                avgs[label][xi] += result.avg_time
    return FigureResult(
        figure="Figure 10",
        x_label="# of jobs",
        x_values=list(job_counts),
        series={k: [v / repeats for v in vals] for k, vals in totals.items()},
        avg_series={k: [v / repeats for v in vals] for k, vals in avgs.items()},
    )


# ---------------------------------------------------------------------------
# Figure 11 — two-node cluster, long jobs with conflicting memory
# ---------------------------------------------------------------------------

def fig11_cluster_long(
    seed: int = 0,
    job_counts: Sequence[int] = (16, 32, 48),
    bsl_share: float = 0.25,
    mml_cpu_fraction: float = 1.0,
) -> FigureResult:
    """§5.4: BS-L and MM-L jobs (25/75) through TORQUE.  Sharing wins by
    up to ~50% despite swap overhead; offloading accelerates further."""
    configs = _cluster_configs()
    bsl = workload("BS-L")
    mml = workload("MM-L").with_cpu_fraction(mml_cpu_fraction)
    totals = {label: [] for label in configs}
    avgs = {label: [] for label in configs}
    swaps = []
    for n in job_counts:
        n_bs = round(n * bsl_share)

        def jobs():
            out = []
            for i in range(n):
                spec = bsl if i % 4 == 0 and i // 4 < n_bs else mml
                out.append(
                    make_job(spec, name=f"{spec.tag}#{i}", use_runtime=True)
                )
            return out

        swap_count = 0
        for label, config in configs.items():
            result = run_cluster_batch(
                jobs(), CLUSTER_NODES, config, mode=TorqueMode.OBLIVIOUS, label=label
            )
            totals[label].append(result.total_time)
            avgs[label].append(result.avg_time)
            if label == "GPU sharing (4 vGPUs)":
                swap_count = result.swaps
        swaps.append(swap_count)
    return FigureResult(
        figure="Figure 11",
        x_label="# of jobs",
        x_values=list(job_counts),
        series=totals,
        avg_series=avgs,
        annotations={"swaps (4 vGPUs)": swaps},
    )
