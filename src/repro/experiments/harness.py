"""Batch runners and result records.

The paper's metric: "the overall execution time for a batch of
concurrent jobs (the time elapsed between the first job starts and the
last job finishes processing)", plus the average per-job time for the
cluster experiments.  All reported times are *simulated* seconds; every
overhead the runtime introduces (interception, queueing, scheduling,
memory management, swapping) is inside them, exactly as in the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.jobs import Job
from repro.cluster.node import ComputeNode
from repro.cluster.torque import Torque, TorqueMode
from repro.core.config import RuntimeConfig
from repro.core.stats import RuntimeStats
from repro.obs import ObsCollector
from repro.sim import Environment
from repro.simcuda.device import GPUSpec

__all__ = ["BatchResult", "run_arrival_process", "run_cluster_batch", "run_node_batch"]

#: Let vGPU contexts finish booting before the batch starts; the paper's
#: measurements likewise exclude daemon start-up.
BOOT_GRACE_SECONDS = 5.0


@dataclasses.dataclass
class BatchResult:
    """Outcome of one batch run under one configuration."""

    label: str
    total_time: float
    avg_time: float
    job_times: List[float]
    stats: Dict[str, int]
    errors: int = 0
    #: workload tag -> per-job times (class breakdown, e.g. BS-L vs MM-L)
    tag_times: Dict[str, List[float]] = dataclasses.field(default_factory=dict)
    #: device name -> execution-engine busy fraction over the batch
    gpu_utilization: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: device name -> seconds its copy and exec engines ran concurrently
    #: (the overlap engine's win; always 0 without pipelined transfers)
    copy_overlap: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def total_copy_overlap(self) -> float:
        return sum(self.copy_overlap.values())

    def avg_by_tag(self) -> Dict[str, float]:
        return {
            tag: sum(ts) / len(ts) for tag, ts in self.tag_times.items() if ts
        }

    @property
    def mean_gpu_utilization(self) -> float:
        if not self.gpu_utilization:
            return 0.0
        return sum(self.gpu_utilization.values()) / len(self.gpu_utilization)

    @property
    def swaps(self) -> int:
        return self.stats.get("swaps_total", 0)

    @property
    def migrations(self) -> int:
        return self.stats.get("migrations", 0)

    @property
    def offloads(self) -> int:
        return self.stats.get("offloads_out", 0)


def _merge_stats(stats_list: List[RuntimeStats]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for stats in stats_list:
        for key, value in stats.as_dict().items():
            merged[key] = merged.get(key, 0) + value
    return merged


def run_node_batch(
    jobs: List[Job],
    gpu_specs: List[GPUSpec],
    config: Optional[RuntimeConfig],
    label: str = "",
    cpu_threads: int = 16,
    collector: Optional[ObsCollector] = None,
    profiler=None,
) -> BatchResult:
    """Run ``jobs`` concurrently on a single node.

    ``config=None`` runs on the bare CUDA runtime (the baseline);
    otherwise the node boots the paper's runtime with ``config``.
    Passing an :class:`ObsCollector` enables tracing on the node's
    runtime and leaves the collector holding the run's events/metrics.
    Passing a :class:`~repro.sim.SimProfiler` attaches it to the
    environment for the whole run (simulator self-profiling: events/sec,
    queue depth, per-handler hotspots).
    """
    env = Environment()
    if profiler is not None:
        profiler.attach(env)
    node = ComputeNode(env, "node0", gpu_specs, cpu_threads=cpu_threads,
                       runtime_config=config)
    if collector is not None and node.runtime is not None:
        collector.attach(node.runtime)
    env.process(node.start())
    env.run(until=BOOT_GRACE_SECONDS)

    t0 = env.now
    busy0 = {d.name: d.busy_seconds for d in node.driver.devices}
    finish_times: List[float] = []
    tag_times: Dict[str, List[float]] = {}
    errors: List[BaseException] = []

    def run_job(job: Job):
        try:
            yield from job.execute(node, submitted_at=t0)
        except BaseException as exc:  # noqa: BLE001 - recorded per job
            errors.append(exc)
        finish_times.append(env.now)
        tag_times.setdefault(job.tag, []).append(env.now - t0)

    for job in jobs:
        env.process(run_job(job), name=f"job-{job.name}")
    env.run()
    if profiler is not None:
        profiler.detach()

    job_times = [t - t0 for t in finish_times]
    elapsed = max(job_times) if job_times else 0.0
    utilization = {
        d.name: min(1.0, (d.busy_seconds - busy0.get(d.name, 0.0)) / elapsed)
        if elapsed > 0
        else 0.0
        for d in node.driver.devices
    }
    stats = node.runtime.stats.as_dict() if node.runtime else {}
    return BatchResult(
        label=label,
        total_time=elapsed,
        avg_time=sum(job_times) / len(job_times) if job_times else 0.0,
        job_times=job_times,
        stats=stats,
        errors=len(errors),
        tag_times=tag_times,
        gpu_utilization=utilization,
        copy_overlap={
            d.name: d.copy_exec_overlap_seconds for d in node.driver.devices
        },
    )


def run_arrival_process(
    specs,
    gpu_specs: List[GPUSpec],
    config: Optional[RuntimeConfig],
    rng,
    arrival_rate_per_s: float,
    horizon_s: float,
    label: str = "",
    cpu_threads: int = 16,
    collector: Optional[ObsCollector] = None,
) -> BatchResult:
    """Open-loop experiment: jobs arrive as a Poisson process.

    The paper evaluates closed batches (all jobs present at t=0); a
    multi-tenant deployment sees arrivals over time instead.  Jobs are
    drawn uniformly from ``specs`` with exponential inter-arrival gaps at
    ``arrival_rate_per_s`` until ``horizon_s``; the run then drains.
    ``avg_time`` is the mean *response* time (arrival → completion) — the
    open-loop analogue of the paper's per-job metric.
    """
    from repro.workloads.generator import make_job

    env = Environment()
    node = ComputeNode(env, "node0", gpu_specs, cpu_threads=cpu_threads,
                       runtime_config=config)
    if collector is not None and node.runtime is not None:
        collector.attach(node.runtime)
    env.process(node.start())
    env.run(until=BOOT_GRACE_SECONDS)

    t0 = env.now
    response_times: List[float] = []
    tag_times: Dict[str, List[float]] = {}
    errors: List[BaseException] = []
    busy0 = {d.name: d.busy_seconds for d in node.driver.devices}

    def run_job(job: Job, arrived: float):
        try:
            yield from job.execute(node, submitted_at=arrived)
        except BaseException as exc:  # noqa: BLE001 - recorded per job
            errors.append(exc)
        response_times.append(env.now - arrived)
        tag_times.setdefault(job.tag, []).append(env.now - arrived)

    def arrivals():
        index = 0
        while env.now - t0 < horizon_s:
            gap = float(rng.exponential(1.0 / arrival_rate_per_s))
            yield env.timeout(gap)
            if env.now - t0 >= horizon_s:
                break
            spec = specs[int(rng.integers(0, len(specs)))]
            job = make_job(
                spec,
                name=f"{spec.tag}@{env.now:.2f}",
                use_runtime=config is not None,
                static_device=index if config is None else None,
            )
            index += 1
            env.process(run_job(job, env.now), name=f"arrival-{job.name}")

    env.process(arrivals(), name="arrival-process")
    env.run()

    makespan = env.now - t0
    utilization = {
        d.name: min(1.0, (d.busy_seconds - busy0.get(d.name, 0.0)) / makespan)
        if makespan > 0
        else 0.0
        for d in node.driver.devices
    }
    stats = node.runtime.stats.as_dict() if node.runtime else {}
    return BatchResult(
        label=label,
        total_time=makespan,
        avg_time=sum(response_times) / len(response_times) if response_times else 0.0,
        job_times=response_times,
        stats=stats,
        errors=len(errors),
        tag_times=tag_times,
        gpu_utilization=utilization,
        copy_overlap={
            d.name: d.copy_exec_overlap_seconds for d in node.driver.devices
        },
    )


def run_cluster_batch(
    jobs: List[Job],
    node_specs: List[List[GPUSpec]],
    config: Optional[RuntimeConfig],
    mode: TorqueMode = TorqueMode.OBLIVIOUS,
    label: str = "",
    cpu_threads: int = 16,
    collector: Optional[ObsCollector] = None,
) -> BatchResult:
    """Run ``jobs`` through TORQUE on a multi-node cluster.

    ``node_specs`` lists each node's GPUs.  With a runtime config whose
    ``offload_enabled`` is set, the node runtimes are peered for
    inter-node offloading.
    """
    env = Environment()
    cluster = Cluster(env)
    for i, specs in enumerate(node_specs):
        cluster.add_node(f"node{i}", specs, cpu_threads=cpu_threads,
                         runtime_config=config)
    if config is not None and config.offload_enabled:
        cluster.peer_runtimes()
    if collector is not None:
        for cluster_node in cluster.nodes:
            if cluster_node.runtime is not None:
                collector.attach(cluster_node.runtime)
    env.process(cluster.start())
    env.run(until=BOOT_GRACE_SECONDS)

    torque = Torque(env, cluster.nodes, mode=mode)
    p = env.process(torque.run_batch(jobs))
    env.run(until=p)
    env.run()  # drain any trailing bookkeeping events

    stats = _merge_stats([n.runtime.stats for n in cluster.nodes if n.runtime])
    job_times = [o.turnaround for o in torque.outcomes if o.turnaround is not None]
    return BatchResult(
        label=label,
        total_time=torque.total_execution_time,
        avg_time=torque.average_turnaround,
        job_times=job_times,
        stats=stats,
        errors=sum(1 for o in torque.outcomes if not o.ok),
    )
