"""Text rendering of figure results — the rows/series the paper plots,
as fixed-width tables and ASCII bar charts."""

from __future__ import annotations

from typing import List

from repro.experiments.figures import FigureResult

__all__ = ["format_table", "format_figure", "format_bars"]


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    """Plain fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    return f"{value:.1f}"


def format_figure(result: FigureResult) -> str:
    """Render one figure's series (and annotations) as a table."""
    headers = [result.x_label] + list(result.series)
    if result.avg_series:
        headers += [f"Avg: {label}" for label in result.avg_series]
    headers += list(result.annotations)
    rows = []
    for i, x in enumerate(result.x_values):
        row = [str(x)]
        for label in result.series:
            row.append(_fmt(result.series[label][i]))
        for label in result.avg_series:
            row.append(_fmt(result.avg_series[label][i]))
        for label in result.annotations:
            row.append(str(result.annotations[label][i]))
        rows.append(row)
    title = f"== {result.figure} (simulated seconds) =="
    return title + "\n" + format_table(headers, rows)


def format_bars(result: FigureResult, width: int = 48) -> str:
    """Render the figure as grouped horizontal ASCII bars — the visual
    form of the paper's charts.

    One group per x value; one bar per series; swap/migration
    annotations appended to the bar they annotate.
    """
    values = [
        v
        for series in result.series.values()
        for v in series
        if v is not None
    ]
    if not values:
        return f"== {result.figure} == (no data)"
    peak = max(values)
    label_width = max(len(label) for label in result.series)
    lines = [f"== {result.figure} ==  (each '█' ≈ {peak / width:.1f} s)"]
    for i, x in enumerate(result.x_values):
        lines.append(f"{result.x_label} = {x}")
        for label, series in result.series.items():
            value = series[i]
            if value is None:
                lines.append(f"  {label.ljust(label_width)} |  (n/a)")
                continue
            bar = "█" * max(1, round(value / peak * width))
            note = ""
            for ann_label, counts in result.annotations.items():
                # "swaps (4 vGPUs)" annotates the "(4 vGPUs)" series;
                # unqualified annotations go on the non-baseline series.
                paren = ann_label[ann_label.find("(") :] if "(" in ann_label else None
                applies = (
                    paren in label
                    if paren
                    else label != next(iter(result.series))
                )
                if applies:
                    note = f"  [{ann_label.split(' (')[0]}={counts[i]}]"
            lines.append(
                f"  {label.ljust(label_width)} |{bar} {value:.1f}{note}"
            )
    return "\n".join(lines)
