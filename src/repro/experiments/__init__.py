"""Experiment drivers reproducing every table and figure of §5.

- :mod:`repro.experiments.harness` — batch runners and result records;
- :mod:`repro.experiments.figures` — one driver per paper figure
  (``fig5`` … ``fig11``) plus the ablations DESIGN.md calls out;
- :mod:`repro.experiments.report` — text rendering of the series the
  paper plots.
"""

from repro.experiments.harness import (
    BatchResult,
    run_arrival_process,
    run_cluster_batch,
    run_node_batch,
)
from repro.experiments import figures
from repro.experiments.report import format_bars, format_figure, format_table

__all__ = [
    "BatchResult",
    "figures",
    "format_bars",
    "format_figure",
    "format_table",
    "run_arrival_process",
    "run_cluster_batch",
    "run_node_batch",
]
