"""Simulator-throughput measurement: one runner for bench, CLI and CI.

Measures how fast the simulator itself runs — events per wall second and
simulated seconds per wall second — on the canonical overcommitted job
mix, in four variants: macro-stepped model execution off/on x structured
tracing off/on.  ``benchmarks/test_simspeed.py`` asserts the regression
gates over a :func:`measure` result, ``repro bench simspeed`` prints the
scorecard interactively, and ``--pin-baseline`` regenerates
``benchmarks/simspeed_baseline.json`` so the CI ratchet can move upward
after a perf win lands on the machine class that records it.

Two kinds of gate live in the baseline JSON:

- machine-pinned: ``events_per_second`` (the stock untraced figure on
  the recording machine) with ``min_speedup`` sized to absorb CI-machine
  variance;
- machine-independent: ``min_macro_speedup``, a *same-run* ratio — the
  macro-stepped run's sim-s/wall-s over the stock run's, measured on
  whatever machine executes the bench, so it gates the macro fast paths
  themselves, not the hardware.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional

from repro.core.config import RuntimeConfig
from repro.obs import ObsCollector
from repro.sim import SimProfiler
from repro.simcuda.device import TESLA_C2050

__all__ = [
    "JOB_COUNT",
    "VGPUS",
    "REPEATS",
    "BASELINE_PATH",
    "run_once",
    "best_of",
    "measure",
    "pin_baseline",
]

#: Canonical overcommit mix: the CLI's default memory-heavy MM-L/BS-L
#: alternation, enough jobs to oversubscribe a C2050 and swap.
JOB_COUNT = 8
VGPUS = 4
#: Wall-clock figures take the best of this many runs (sim results are
#: deterministic; only the wall side is noisy).
REPEATS = 3

#: Pinned simulated results + recorded events/sec + both ratchets.
BASELINE_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "simspeed_baseline.json"
)


def run_once(*, macro_step: bool, tracing: bool):
    """One run of the canonical mix; returns ``(BatchResult, report)``.

    ``macro_step=True`` leaves the config default in place, which means
    the run honours ``REPRO_MACRO_STEP=0`` — the macro-off CI identity
    job reuses this exact runner and simply skips the speedup gate.
    ``macro_step=False`` forces the stock event-per-hop execution.
    """
    from repro.cli import _parse_jobs
    from repro.experiments.harness import run_node_batch

    profiler = SimProfiler()
    jobs = _parse_jobs([str(JOB_COUNT)], 0.0)
    config = RuntimeConfig(vgpus_per_device=VGPUS, tracing=tracing)
    if not macro_step:
        config.macro_step = False
    collector = ObsCollector() if tracing else None
    result = run_node_batch(jobs, [TESLA_C2050], config, label="simspeed",
                            collector=collector, profiler=profiler)
    assert result.errors == 0
    return result, profiler.report()


def best_of(repeats: int, *, macro_step: bool, tracing: bool):
    """Fastest of ``repeats`` runs (sim side is identical across them)."""
    runs = [run_once(macro_step=macro_step, tracing=tracing)
            for _ in range(max(1, repeats))]
    result = runs[0][0]
    report = max((rep for _, rep in runs),
                 key=lambda r: r["events_per_second"])
    return result, report


def measure(repeats: int = REPEATS) -> dict:
    """The full four-variant measurement the bench and CLI share.

    Returns ``{"stock": {"off": (result, report), "on": ...},
    "macro": {...}, "macro_enabled": bool}`` where off/on is tracing and
    ``macro_enabled`` records whether the config default actually ran
    macro-stepped (False under ``REPRO_MACRO_STEP=0``).
    """
    return {
        "stock": {
            "off": best_of(repeats, macro_step=False, tracing=False),
            "on": best_of(repeats, macro_step=False, tracing=True),
        },
        "macro": {
            "off": best_of(repeats, macro_step=True, tracing=False),
            "on": best_of(repeats, macro_step=True, tracing=True),
        },
        "macro_enabled": RuntimeConfig().macro_step,
    }


def load_baseline(path: Optional[pathlib.Path] = None) -> dict:
    return json.loads((path or BASELINE_PATH).read_text())


def pin_baseline(measurement: dict,
                 path: Optional[pathlib.Path] = None) -> dict:
    """Write a fresh ``simspeed_baseline.json`` from ``measurement``.

    Preserves the gate sizes (``min_speedup``/``min_macro_speedup``)
    from the existing baseline when present — pinning refreshes the
    recorded figures, it does not loosen or tighten the ratchets.
    """
    path = path or BASELINE_PATH
    try:
        old = json.loads(path.read_text())
    except (OSError, ValueError):
        old = {}
    res_stock, rep_stock = measurement["stock"]["off"]
    _, rep_macro = measurement["macro"]["off"]
    baseline = {
        "comment": (
            "simspeed baseline pinned by `repro bench simspeed "
            "--pin-baseline`. sim_* values pin the canonical 8-job/"
            "4-vGPU overcommit mix's simulated results bit-for-bit. "
            "events_per_second is the stock (macro_step=False) untraced "
            "figure on the recording machine with min_speedup as the "
            "machine-variance-tolerant CI ratchet; "
            "macro_events_per_second records the macro-stepped figure "
            "for the scorecard, and min_macro_speedup gates the "
            "SAME-RUN sim-rate ratio macro/stock (machine-independent). "
            "See docs/simulator.md for the honest-throughput scorecard."
        ),
        "workload": {"jobs": JOB_COUNT, "vgpus": VGPUS,
                     "gpu": TESLA_C2050.name},
        "sim_total_time": res_stock.total_time,
        "sim_job_times": list(res_stock.job_times),
        "events_per_second": rep_stock["events_per_second"],
        "min_speedup": old.get("min_speedup", 0.7),
        "macro_events_per_second": rep_macro["events_per_second"],
        "min_macro_speedup": old.get("min_macro_speedup", 1.25),
    }
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def scorecard(measurement: dict, baseline: Optional[dict] = None) -> str:
    """Human-readable table for the CLI and the bench's -s output."""
    from repro.experiments.report import format_table

    rows = []
    for mode in ("stock", "macro"):
        for tracing in ("off", "on"):
            _, rep = measurement[mode][tracing]
            rows.append([
                mode,
                tracing,
                str(rep["events"]),
                f"{rep['events_per_second']:.0f}",
                f"{rep['sim_seconds_per_wall_second']:.1f}",
                f"{rep['queue_depth_mean']:.1f}",
                str(rep["queue_depth_peak"]),
            ])
    out = format_table(
        ["mode", "tracing", "events", "events/s", "sim s / wall s",
         "queue mean", "queue peak"],
        rows,
    )
    rep_stock = measurement["stock"]["off"][1]
    rep_macro = measurement["macro"]["off"][1]
    ratio = (rep_macro["sim_seconds_per_wall_second"]
             / rep_stock["sim_seconds_per_wall_second"])
    out += f"\nmacro-step same-run sim-rate speedup: {ratio:.3f}x"
    if not measurement.get("macro_enabled", True):
        out += " (macro-step DISABLED via REPRO_MACRO_STEP=0)"
    if baseline is not None:
        speedup = (rep_stock["events_per_second"]
                   / baseline["events_per_second"])
        out += (
            f"\nstock events/s vs recorded baseline: "
            f"{baseline['events_per_second']:.0f} -> "
            f"{rep_stock['events_per_second']:.0f} ({speedup:.3f}x, "
            f"ratchet {baseline['min_speedup']}x)"
        )
    return out
