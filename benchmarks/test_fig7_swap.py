"""Figure 7: conflicting memory needs — the effect of swapping.

36 MM-L jobs (three of which cannot co-reside on one GPU) on the 3-GPU
node, sweeping the injected CPU fraction.

Paper claims reproduced here:
- serialized execution (1 vGPU) grows linearly with the CPU fraction;
- GPU sharing (4 vGPUs) keeps total time roughly constant — swapping
  hides the CPU-driven latency;
- swap operations occur under sharing and resolve the memory conflicts
  (no job fails).
"""

import numpy as np
import pytest

from repro.experiments import figures
from repro.experiments.report import format_figure


def test_fig7_swapping(once):
    result = once(figures.fig7_swapping, seed=0)
    print("\n" + format_figure(result))

    fractions = np.asarray(result.x_values, dtype=float)
    serialized = np.asarray(result.series["serialized execution (1 vGPU)"])
    sharing = np.asarray(result.series["GPU sharing (4 vGPUs)"])
    swaps = result.annotations["swaps (4 vGPUs)"]

    # Serialized grows linearly in the CPU fraction (R² of a linear fit).
    coeffs = np.polyfit(fractions, serialized, 1)
    fit = np.polyval(coeffs, fractions)
    ss_res = float(np.sum((serialized - fit) ** 2))
    ss_tot = float(np.sum((serialized - serialized.mean()) ** 2))
    r2 = 1 - ss_res / ss_tot
    assert r2 > 0.99, f"serialized not linear in CPU fraction (R²={r2:.3f})"
    assert coeffs[0] > 0  # strictly growing

    # Sharing stays ~flat: spread within 15% of its mean.
    assert (sharing.max() - sharing.min()) / sharing.mean() < 0.15

    # The crossover: sharing wins clearly once CPU phases exist.
    for xi, f in enumerate(fractions):
        if f >= 0.5:
            assert sharing[xi] < serialized[xi]
    # At fraction 2 the win approaches the serialized/sharing ratio the
    # paper shows (≈2×).
    assert serialized[-1] / sharing[-1] > 1.8

    # Swap operations appear once CPU phases open eviction windows.
    assert swaps[-1] > swaps[0]
    assert max(swaps) > 0
