"""Locality-aware dynamic binding vs stock FCFS under rebind churn.

Four jobs with 512 MiB working sets time-share two single-vGPU ~2 GiB
devices.  Every job alternates short read-mostly kernels with CPU
phases; the CPU-phase reaper unbinds whoever lingers while others wait,
so each job is unbound and rebound many times over the run.  Two
configurations:

``fcfs``
    The stock runtime: every unbind swaps the working set out, every
    rebind lands wherever the load heuristic points and faults the full
    512 MiB back in through the swap area.
``locality``
    The transfer-cost model drives ordering and placement
    (``policy="locality"`` + ``locality_binding=True``): unbinds retain
    the device copy as a cache, and rebinds prefer the vGPU whose
    device already holds the job's data — a same-vGPU rebind skips the
    fault-in entirely.

Writes ``BENCH_locality.json``.  The tentpole claim: locality beats
FCFS on *both* makespan and total bytes moved through the swap area.
"""

import json

from repro.cluster.jobs import Job
from repro.core import RuntimeConfig
from repro.core.frontend import Frontend
from repro.experiments.report import format_table
from repro.experiments.harness import run_node_batch
from repro.simcuda import GPUSpec
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

MIB = 1024**2

BENCH_GPU = GPUSpec(
    name="BenchGPU",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    memory_bytes=2048 * MIB,
)

JOBS = 4
DEVICES = 2
WORKING_SET_MIB = 512
ROUNDS = 6
KERNEL_S = 0.03
CPU_PHASE_S = 0.18
#: Staggered arrivals keep the waiting list non-trivial from the start.
ARRIVAL_STEP_S = 0.05
#: Aggressive reaping maximises rebind churn — the regime the cost
#: model is for.  Identical in both configurations.
REAP_AFTER_S = 0.05


def make_job(index):
    name = f"churn{index}"

    def body(node):
        if index:
            yield from node.cpu_phase(index * ARRIVAL_STEP_S)
        fe = Frontend(node.env, node.runtime.listener, name=name)
        yield from fe.open()
        k = KernelDescriptor(
            name="scan", flops=KERNEL_S * BENCH_GPU.effective_gflops * 1e9
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        buf = yield from fe.cuda_malloc(WORKING_SET_MIB * MIB)
        yield from fe.cuda_memcpy_h2d(buf, WORKING_SET_MIB * MIB)
        for _ in range(ROUNDS):
            # Read-mostly iteration: after the first write-back the
            # working set stays clean, so retention costs nothing.
            yield from fe.launch_kernel(k, [buf], read_only=[buf])
            yield from node.cpu_phase(CPU_PHASE_S)
        yield from fe.cuda_memcpy_d2h(buf, WORKING_SET_MIB * MIB)
        yield from fe.cuda_free(buf)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="CHURN")


def _config(locality):
    kwargs = dict(
        vgpus_per_device=1,
        unbind_on_cpu_phase_s=REAP_AFTER_S,
    )
    if locality:
        kwargs.update(policy="locality", locality_binding=True)
    return RuntimeConfig(**kwargs)


def _run(locality):
    jobs = [make_job(i) for i in range(JOBS)]
    return run_node_batch(jobs, [BENCH_GPU] * DEVICES, _config(locality))


def _swap_total(result):
    return result.stats["swap_bytes_in"] + result.stats["swap_bytes_out"]


def test_locality_binding_beats_fcfs_on_makespan_and_swap_traffic(once):
    def experiment():
        return {"fcfs": _run(locality=False), "locality": _run(locality=True)}

    results = once(experiment)
    for name, result in results.items():
        assert result.errors == 0, f"{name}: {result.errors} job errors"

    fcfs = results["fcfs"]
    loc = results["locality"]

    print(
        f"\n== Locality-aware binding: {JOBS} x {WORKING_SET_MIB} MiB jobs "
        f"churning over {DEVICES} vGPUs ==\n"
        + format_table(
            ["config", "makespan (s)", "swap in (MiB)", "swap out (MiB)",
             "locality hits", "MiB avoided"],
            [
                [
                    name,
                    f"{r.total_time:.2f}",
                    f"{r.stats['swap_bytes_in'] / MIB:.0f}",
                    f"{r.stats['swap_bytes_out'] / MIB:.0f}",
                    str(r.stats.get("locality_hits", 0)),
                    f"{r.stats.get('locality_bytes_avoided', 0) / MIB:.0f}",
                ]
                for name, r in results.items()
            ],
        )
    )

    # The tentpole claim: better on BOTH axes, not a trade.
    assert loc.total_time < fcfs.total_time, (
        f"locality makespan {loc.total_time:.2f}s not below "
        f"fcfs {fcfs.total_time:.2f}s"
    )
    assert _swap_total(loc) < _swap_total(fcfs)
    # And via the intended mechanism, not by accident.
    assert loc.stats["locality_hits"] >= 1
    assert loc.stats["locality_bytes_avoided"] >= WORKING_SET_MIB * MIB
    assert fcfs.stats["locality_hits"] == 0

    with open("BENCH_locality.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "jobs": JOBS,
                    "devices": DEVICES,
                    "working_set_mib": WORKING_SET_MIB,
                    "rounds": ROUNDS,
                    "kernel_s": KERNEL_S,
                    "cpu_phase_s": CPU_PHASE_S,
                    "reap_after_s": REAP_AFTER_S,
                    "gpu_memory_mib": BENCH_GPU.memory_bytes // MIB,
                },
                "makespan_s": {
                    "fcfs": fcfs.total_time, "locality": loc.total_time,
                },
                "swap_bytes": {
                    "fcfs": _swap_total(fcfs), "locality": _swap_total(loc),
                },
                "swap_reduction": 1.0 - _swap_total(loc) / _swap_total(fcfs),
                "speedup": fcfs.total_time / loc.total_time,
                "locality_hits": loc.stats["locality_hits"],
                "locality_bytes_avoided": loc.stats["locality_bytes_avoided"],
                "locality_reclaims": loc.stats.get("locality_reclaims", 0),
            },
            fh,
            indent=2,
        )
        fh.write("\n")
