"""§7 future work, realized: larger clusters and multi-node applications.

Two sweeps:

1. strong scaling of one BSP application (fixed total work, 1–8 ranks on
   1–8 nodes): speedup grows until the all-reduce dominates;
2. a 96-job TORQUE batch over an 8-node cluster under the runtime —
   throughput scales with node count.
"""

from repro.cluster import Cluster, Torque, TorqueMode
from repro.cluster.node import ComputeNode
from repro.core import RuntimeConfig
from repro.experiments.report import format_table
from repro.sim import Environment, RngStreams
from repro.simcuda import TESLA_C2050
from repro.workloads import draw_short_jobs
from repro.workloads.multinode import MultiNodeSpec, run_multinode_application

MIB = 1024**2

TOTAL_KERNEL_SECONDS = 16.0  # fixed total work, divided among ranks
ITERATIONS = 8


def strong_scaling_point(ranks: int) -> float:
    env = Environment()
    nodes = [
        ComputeNode(env, f"n{i}", [TESLA_C2050],
                    runtime_config=RuntimeConfig(vgpus_per_device=2))
        for i in range(ranks)
    ]
    for node in nodes:
        env.process(node.start())
    env.run(until=2.0)
    spec = MultiNodeSpec(
        name="scaling",
        iterations=ITERATIONS,
        shard_bytes=256 * MIB // ranks,
        kernel_seconds=TOTAL_KERNEL_SECONDS / ITERATIONS / ranks,
        halo_bytes=16 * MIB,
    )
    p = env.process(run_multinode_application(env, spec, nodes))
    env.run(until=p)
    start, end = p.value
    return end - start


def test_strong_scaling_multinode(once):
    counts = [1, 2, 4, 8]
    times = once(lambda: {n: strong_scaling_point(n) for n in counts})

    speedups = {n: times[1] / times[n] for n in counts}
    print(
        "\n== Strong scaling: one BSP application, fixed total work ==\n"
        + format_table(
            ["ranks", "time (s)", "speedup"],
            [[str(n), f"{times[n]:.1f}", f"{speedups[n]:.2f}×"] for n in counts],
        )
    )

    # More ranks, less time — up to communication limits.
    assert times[2] < times[1]
    assert times[4] < times[2]
    # Speedup is sublinear (the all-reduce is not free).
    assert speedups[8] < 8.0
    assert speedups[4] > 2.0  # but real


def batch_throughput(n_nodes: int, n_jobs: int = 96) -> float:
    env = Environment()
    cluster = Cluster(env)
    cfg = RuntimeConfig(vgpus_per_device=4, offload_enabled=True)
    for i in range(n_nodes):
        cluster.add_node(f"n{i}", [TESLA_C2050], runtime_config=cfg)
    cluster.peer_runtimes()
    env.process(cluster.start())
    env.run(until=5.0)
    rng = RngStreams(42).stream("jobs")
    torque = Torque(env, cluster.nodes, mode=TorqueMode.OBLIVIOUS)
    jobs = draw_short_jobs(rng, n_jobs)
    p = env.process(torque.run_batch(jobs))
    env.run(until=p)
    env.run()
    assert all(o.ok for o in torque.outcomes)
    return torque.total_execution_time


def test_batch_scaling_eight_nodes(once):
    counts = [2, 4, 8]
    times = once(lambda: {n: batch_throughput(n) for n in counts})

    print(
        "\n== Batch scaling: 96 short jobs, 1 GPU per node ==\n"
        + format_table(
            ["nodes", "total (s)", "vs 2 nodes"],
            [
                [str(n), f"{times[n]:.1f}", f"{times[2] / times[n]:.2f}×"]
                for n in counts
            ],
        )
    )

    assert times[4] < times[2] * 0.7
    assert times[8] < times[4] * 0.8
