"""Ablation: scheduling policies (§2 "Configurable Scheduling").

Two long jobs arrive (and bind) first, then six short jobs queue behind
them on a single serialized vGPU.  FCFS serves the remaining long job
before the shorts; SJF (using the profiling hint the connection carries)
lets the shorts jump the queue, cutting the average job time; the
credit-based policy also favours the shorts (zero GPU time consumed).
"""

from repro.cluster.node import ComputeNode
from repro.core import RuntimeConfig
from repro.experiments.report import format_table
from repro.sim import Environment
from repro.simcuda import TESLA_C2050
from repro.workloads import make_job, workload


def run(policy: str):
    env = Environment()
    node = ComputeNode(
        env,
        "bench",
        [TESLA_C2050],
        runtime_config=RuntimeConfig(vgpus_per_device=1, policy=policy),
    )
    env.process(node.start())
    env.run(until=5.0)

    t0 = env.now
    finish = []

    def run_job(spec, name, delay):
        yield env.timeout(delay)
        job = make_job(spec, name=name)
        yield from job.execute(node, submitted_at=t0)
        finish.append(env.now - t0)

    # Longs first; shorts arrive once the first long is already bound.
    for i in range(2):
        env.process(run_job(workload("BS-L"), f"long{i}", delay=0.0))
    for i in range(6):
        env.process(run_job(workload("HS"), f"short{i}", delay=3.0))
    env.run()
    return {
        "total": max(finish),
        "avg": sum(finish) / len(finish),
        "count": len(finish),
    }


def test_ablation_scheduling_policies(once):
    results = once(lambda: {p: run(p) for p in ("fcfs", "sjf", "credit")})

    print(
        "\n== Ablation: scheduling policy (2 long then 6 short jobs, 1 vGPU) ==\n"
        + format_table(
            ["policy", "total (s)", "avg job (s)"],
            [
                [p, f"{r['total']:.1f}", f"{r['avg']:.1f}"]
                for p, r in results.items()
            ],
        )
    )

    for r in results.values():
        assert r["count"] == 8

    # SJF's profiling hint lets the six short jobs bypass the queued
    # long job → lower average turnaround than FCFS.
    assert results["sjf"]["avg"] < results["fcfs"]["avg"] * 0.9
    # Credit cannot distinguish jobs that have not run yet (everyone has
    # zero consumed GPU seconds), so it degenerates to FCFS here.
    assert results["credit"]["avg"] == results["fcfs"]["avg"]
    # The makespan stays policy-insensitive (same work, one engine).
    totals = [r["total"] for r in results.values()]
    assert max(totals) / min(totals) < 1.1
