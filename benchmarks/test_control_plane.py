"""Control-plane batching and graph replay on many-small-kernel work.

The Table 2 programs launch kernels that run hundreds of milliseconds,
so the per-launch round-trip — wire framing, dispatcher scheduling,
driver submission (``launch_control_plane_s``) — vanishes in execution
time.  The fine-grained family (GT-F, AP-F) inverts the ratio: thousands
of ~25–30 µs kernels make the control plane the dominant term.  Four
mechanisms, measured separately per workload on one GPU:

``per_call``
    The historic path: every intercepted call is its own RPC round
    trip, every launch pays the full control-plane charge.
``batch4`` / ``batch16`` / ``batch64``
    The frontend journals batchable calls and ships N of them in one
    frame; the dispatcher runs the frame in a single scheduler round
    trip.  Wire and dispatch overheads amortize; the per-launch
    control-plane charge remains.
``graph``
    ``batch16`` plus auto-detected graph replay: repeated launch-only
    frames instantiate once and replay for a single control-plane
    charge per frame.
``capture``
    Explicit CUDA-Graph-style stream capture: the program records the
    8-launch sequence once and re-issues it via ``graph_launch``.

Writes ``BENCH_batching.json``.  The tentpole claims: ≥2× turnaround at
batch ≥16 vs per-call; graph replay beats batched submission on
repeated sequences; and ``batch_max_calls=1`` with replay disabled is
sim-time *identical* to the stock configuration (the CI gate).
"""

import dataclasses
import json

from repro.cluster.jobs import Job
from repro.core import Frontend, RuntimeConfig
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050
from repro.simcuda.timing import CONTROL_PLANE_SECONDS
from repro.workloads.finegrained import AGENT_PIPELINE, GRAPH_TRAVERSAL_FINE
from repro.workloads.generator import make_job

#: Reference per-launch driver submission cost (runtime bookkeeping +
#: driver ioctl) from the timing model.
CONTROL_PLANE_S = CONTROL_PLANE_SECONDS
#: Launches per repeated sequence — the frame the auto-detector sees at
#: batch_max_calls=16 (configure+launch pairs) and the explicitly
#: captured graph's length.
SEQUENCE = 8
#: Trimmed call counts keep the bench fast while preserving the catalog
#: specs' per-launch execution time (~25–30 µs).  Working sets scale
#: with the trim so the one-time data movement (h2d/d2h, fault-in) stays
#: proportional to the shortened run.
TRIM = {"GT-F": 600, "AP-F": 600}


def trimmed(spec):
    calls = TRIM[spec.tag]
    scale = calls / spec.kernel_calls
    return dataclasses.replace(
        spec,
        kernel_calls=calls,
        gpu_seconds_c2050=spec.gpu_seconds_c2050 * scale,
        buffer_bytes=tuple(int(b * scale) for b in spec.buffer_bytes),
    )


WORKLOADS = [trimmed(GRAPH_TRAVERSAL_FINE), trimmed(AGENT_PIPELINE)]


def config(batch=1, graph=False, cp=CONTROL_PLANE_S, **kwargs):
    return RuntimeConfig(
        launch_control_plane_s=cp,
        batch_max_calls=batch,
        graph_replay_enabled=graph,
        **kwargs,
    )


CONFIGS = {
    "per_call": config(batch=1),
    "batch4": config(batch=4),
    "batch16": config(batch=16),
    "batch64": config(batch=64),
    "graph": config(batch=16, graph=True),
}


def make_capture_job(spec, name):
    """The same program hand-ported to explicit stream capture: record
    the SEQUENCE-launch loop body once, then replay it."""
    reps = spec.kernel_calls // SEQUENCE

    def body(node):
        fe = Frontend(node.env, node.runtime.listener, name=name)
        yield from fe.open()
        kernel = KernelDescriptor(name=f"{name}-k", flops=spec.flops_per_kernel)
        handle = yield from fe.register_fat_binary(FatBinary())
        yield from fe.register_function(handle, kernel)
        buffers = []
        for size in spec.buffer_bytes:
            ptr = yield from fe.cuda_malloc(size)
            buffers.append(ptr)
            yield from fe.cuda_memcpy_h2d(ptr, size)
        read_only = [buffers[i] for i in spec.read_only_buffers]
        yield from fe.graph_begin_capture()
        for _ in range(SEQUENCE):
            yield from fe.launch_kernel(kernel, buffers, read_only=read_only)
        graph = yield from fe.graph_end_capture()
        for _ in range(reps):
            yield from fe.graph_launch(graph)
        yield from fe.cuda_memcpy_d2h(buffers[0], spec.buffer_bytes[0])
        for ptr in buffers:
            yield from fe.cuda_free(ptr)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag=spec.tag)


def _run_all():
    results = {}
    for label, cfg in CONFIGS.items():
        per_workload = {}
        for spec in WORKLOADS:
            job = make_job(spec, name=f"{spec.tag}-{label}")
            per_workload[spec.tag] = run_node_batch(
                [job], [TESLA_C2050], cfg, label=label
            )
        results[label] = per_workload
    # explicit capture rides the graph-enabled runtime
    results["capture"] = {
        spec.tag: run_node_batch(
            [make_capture_job(spec, f"{spec.tag}-capture")],
            [TESLA_C2050],
            config(batch=16, graph=True),
            label="capture",
        )
        for spec in WORKLOADS
    }
    return results


def _per_kernel_us(result, spec):
    return result.avg_time / spec.kernel_calls * 1e6


def test_batching_and_graph_replay_make_fine_grained_kernels_cheap(once):
    results = once(_run_all)
    for label, per_workload in results.items():
        for tag, result in per_workload.items():
            assert result.errors == 0, f"{label}/{tag}: {result.errors} errors"

    table_rows = []
    bench = {}
    for label, per_workload in results.items():
        row = [label]
        for spec in WORKLOADS:
            r = per_workload[spec.tag]
            row.append(f"{r.avg_time * 1e3:.1f}")
            row.append(f"{_per_kernel_us(r, spec):.1f}")
        table_rows.append(row)
        bench[label] = {
            spec.tag: {
                "turnaround_s": per_workload[spec.tag].avg_time,
                "per_kernel_us": _per_kernel_us(per_workload[spec.tag], spec),
            }
            for spec in WORKLOADS
        }
    print(
        "\n== Control-plane cost per launch "
        f"(cp={CONTROL_PLANE_S * 1e6:.0f} us, one job on one C2050) ==\n"
        + format_table(
            ["config"]
            + [h for s in WORKLOADS for h in (f"{s.tag} (ms)", f"{s.tag} us/k")],
            table_rows,
        )
    )

    speedups = {}
    for spec in WORKLOADS:
        per_call = results["per_call"][spec.tag].avg_time
        for label in ("batch4", "batch16", "batch64", "graph", "capture"):
            speedups.setdefault(label, {})[spec.tag] = (
                per_call / results[label][spec.tag].avg_time
            )

    for spec in WORKLOADS:
        # the tentpole bar: batching alone buys ≥2× on fine-grained work
        assert speedups["batch16"][spec.tag] >= 2.0, (
            f"{spec.tag}: batch16 speedup {speedups['batch16'][spec.tag]:.2f}x < 2x"
        )
        # graph replay strictly beats plain batching: the per-launch
        # control-plane charge collapses to one per replayed frame
        assert (
            results["graph"][spec.tag].avg_time
            < results["batch16"][spec.tag].avg_time
        )
        assert results["graph"][spec.tag].stats["graph_replays"] > 0
        assert results["graph"][spec.tag].stats["graphs_instantiated"] >= 1
        # explicit capture lands in the same regime as auto-detection
        assert (
            results["capture"][spec.tag].avg_time
            < results["batch16"][spec.tag].avg_time
        )
        assert results["capture"][spec.tag].stats["graph_replayed_kernels"] > 0

    # ------------------------------------------------------------------
    # QoS still holds: two fine-grained tenants time-slicing one vGPU
    # under batching get quantum-preempted at batch boundaries, with
    # pipelined transfers enabled.
    # ------------------------------------------------------------------
    shared = run_node_batch(
        [make_job(spec, name=f"{spec.tag}-shared") for spec in WORKLOADS],
        [TESLA_C2050],
        config(
            batch=16,
            vgpus_per_device=1,
            qos_enabled=True,
            vgpu_quantum_s=0.005,
            overlap_transfers=True,
        ),
        label="shared",
    )
    assert shared.errors == 0
    assert shared.stats["preemptions"] > 0
    assert shared.stats["batches_submitted"] > 0

    # ------------------------------------------------------------------
    # The CI gate: batch_max_calls=1 with replay disabled and a zero
    # control-plane charge is *sim-time identical* to the stock runtime.
    # ------------------------------------------------------------------
    def identity_run(cfg):
        return run_node_batch(
            [make_job(spec, name=f"{spec.tag}-id") for spec in WORKLOADS],
            [TESLA_C2050],
            cfg,
            label="identity",
        )

    stock = identity_run(RuntimeConfig())
    plumbed = identity_run(
        RuntimeConfig(
            batch_max_calls=1, graph_replay_enabled=False, launch_control_plane_s=0.0
        )
    )
    assert plumbed.total_time == stock.total_time, (
        f"batch_max_calls=1 diverged: {plumbed.total_time!r} "
        f"!= {stock.total_time!r}"
    )
    assert plumbed.job_times == stock.job_times

    with open("BENCH_batching.json", "w") as fh:
        json.dump(
            {
                "control_plane_us": CONTROL_PLANE_S * 1e6,
                "sequence": SEQUENCE,
                "workloads": {
                    spec.tag: {
                        "kernel_calls": spec.kernel_calls,
                        "per_launch_exec_us": spec.gpu_seconds_c2050
                        / spec.kernel_calls
                        * 1e6,
                    }
                    for spec in WORKLOADS
                },
                "turnaround": bench,
                "speedup_vs_per_call": speedups,
                "graph_stats": {
                    tag: {
                        k: results["graph"][tag].stats[k]
                        for k in (
                            "graphs_instantiated",
                            "graph_replays",
                            "graph_replayed_kernels",
                            "batches_submitted",
                        )
                    }
                    for tag in (s.tag for s in WORKLOADS)
                },
                "shared_vgpu_preemptions": shared.stats["preemptions"],
                "identity": {
                    "stock_total_time_s": stock.total_time,
                    "batch1_total_time_s": plumbed.total_time,
                    "identical": plumbed.job_times == stock.job_times,
                },
            },
            fh,
            indent=2,
        )
        fh.write("\n")
