"""Production-trace policy bake-off: ``BENCH_trace.json``.

A 2000-job synthetic production-shaped trace (Zipf users, per-group
duration scales, heavy-tailed lognormal durations, diurnal arrivals,
T4/P100/V100 demand mix) replayed open-loop over an 8-node
heterogeneous cluster (16 GPUs), once per scheduling policy:

``fcfs``, ``wfq``, ``locality`` (the pre-existing runtime policies) vs
the history-driven trio this subsystem adds: ``sjf_est`` (shortest
predicted remaining time from per-user/group EWMA history), ``hrrn``
(highest response ratio next) and ``fairshare`` (decayed hierarchical
group→user fair share).

The shape claims the bake-off gates:

- **estimator-SJF beats FCFS on mean JCT** — user history predicts
  runtime well enough to buy real turnaround at production shape;
- **fair share beats estimator-SJF on Jain's index** over per-user
  median slowdown — SJF buys its throughput by skewing service
  quality across users, fair share equalizes it;
- every policy drains the full trace with zero errors.

The smoke slice (200 jobs, 4 nodes) additionally asserts bit-identical
metrics across two replays of the same seed — the determinism contract
CI gates on every run.
"""

import json

from repro.experiments.report import format_table
from repro.sim import SimProfiler
from repro.workloads.trace_replay import replay_trace, synthetic_trace

#: The bake-off workload: moderate sustained contention (offered load
#: ~70% of the 16 GPUs) with diurnal peaks pushing the cluster into
#: transient overload — the regime where policy choice matters most.
JOBS = 2000
SEED = 2020
ARRIVAL_RATE = 8.0
NODES = 8
GPUS_PER_NODE = 2

POLICIES = ("fcfs", "wfq", "locality", "sjf_est", "hrrn", "fairshare", "lottery")

SMOKE_JOBS = 200
SMOKE_NODES = 4


def run_bakeoff(jobs=JOBS, nodes=NODES, policies=POLICIES):
    trace = synthetic_trace(jobs, seed=SEED, arrival_rate_per_s=ARRIVAL_RATE)
    results = {}
    for policy in policies:
        res = replay_trace(
            trace, nodes=nodes, gpus_per_node=GPUS_PER_NODE, policy=policy
        )
        results[policy] = res.metrics()
    return results


def _print_table(results):
    headers = ["policy", "jobs", "err", "makespan_s", "mean_jct_s",
               "p50_jct_s", "p99_jct_s", "queue_delay_s", "jain"]
    rows = [
        [
            policy,
            str(int(m["completed"])),
            str(int(m["errors"])),
            f"{m['makespan_s']:.1f}",
            f"{m['mean_jct_s']:.3f}",
            f"{m['p50_jct_s']:.3f}",
            f"{m['p99_jct_s']:.3f}",
            f"{m['mean_queue_delay_s']:.3f}",
            f"{m['jain_fairness']:.4f}",
        ]
        for policy, m in results.items()
    ]
    print()
    print(f"== trace bake-off: {JOBS} jobs, {NODES}x{GPUS_PER_NODE} GPUs ==")
    print(format_table(headers, rows))


def test_trace_policy_bakeoff(once):
    results = once(run_bakeoff)
    _print_table(results)

    for policy, m in results.items():
        assert m["errors"] == 0, f"{policy}: {m['errors']} job errors"
        assert m["completed"] == JOBS, f"{policy}: lost jobs"
        assert 0 < m["jain_fairness"] <= 1.0

    # History-driven SJF turns per-user runtime predictability into
    # turnaround: it must beat FCFS on mean JCT.
    assert results["sjf_est"]["mean_jct_s"] < results["fcfs"]["mean_jct_s"], (
        "estimator-SJF did not beat FCFS on mean JCT"
    )
    # ... and pays for it in service-quality skew: fair share must beat
    # it on Jain's fairness over per-user median slowdown.
    assert (
        results["fairshare"]["jain_fairness"]
        > results["sjf_est"]["jain_fairness"]
    ), "fair share did not beat estimator-SJF on Jain's index"

    with open("BENCH_trace.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "jobs": JOBS,
                    "seed": SEED,
                    "arrival_rate_per_s": ARRIVAL_RATE,
                    "nodes": NODES,
                    "gpus_per_node": GPUS_PER_NODE,
                },
                "policies": results,
                "claims": {
                    "sjf_est_beats_fcfs_mean_jct": True,
                    "fairshare_beats_sjf_est_jain": True,
                },
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")


#: Cluster-scale slice: the same synthetic shape spread over a 32-node
#: (64-GPU) cluster — large enough that simulator throughput, not just
#: policy quality, becomes the story.  Records wall time and events/sec
#: (via SimProfiler) alongside the sim-time metrics.
SCALE_NODES = 32
SCALE_JOBS = 1000
SCALE_ARRIVAL = 16.0


def run_scale():
    import time

    trace = synthetic_trace(
        SCALE_JOBS, seed=SEED, arrival_rate_per_s=SCALE_ARRIVAL
    )
    profiler = SimProfiler()
    t0 = time.perf_counter()
    res = replay_trace(
        trace,
        nodes=SCALE_NODES,
        gpus_per_node=GPUS_PER_NODE,
        policy="fcfs",
        profiler=profiler,
    )
    wall = time.perf_counter() - t0
    return res, profiler.report(), wall


def test_trace_scale_32_nodes(once):
    res, report, wall = once(run_scale)
    m = res.metrics()
    assert m["errors"] == 0
    assert m["completed"] == SCALE_JOBS
    assert report["events"] > 0

    print(
        f"\n== 32-node scale slice: {SCALE_JOBS} jobs, "
        f"{SCALE_NODES}x{GPUS_PER_NODE} GPUs ==\n"
        f"makespan {m['makespan_s']:.1f} sim-s in {wall:.2f} wall-s | "
        f"{report['events']} events @ "
        f"{report['events_per_second']:.0f} events/s | "
        f"{report['sim_seconds_per_wall_second']:.0f} sim-s/wall-s"
    )

    # Merge into the bake-off's BENCH file (this test runs after it in
    # file order; standalone runs create the file fresh).
    try:
        with open("BENCH_trace.json") as fh:
            bench = json.load(fh)
    except (OSError, ValueError):
        bench = {}
    bench["scale_32_nodes"] = {
        "nodes": SCALE_NODES,
        "gpus_per_node": GPUS_PER_NODE,
        "jobs": SCALE_JOBS,
        "arrival_rate_per_s": SCALE_ARRIVAL,
        "policy": "fcfs",
        "wall_seconds": wall,
        "events": report["events"],
        "events_per_second": report["events_per_second"],
        "sim_seconds_per_wall_second": report["sim_seconds_per_wall_second"],
        "metrics": m,
    }
    with open("BENCH_trace.json", "w") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_smoke():
    trace = synthetic_trace(
        SMOKE_JOBS, seed=SEED, arrival_rate_per_s=ARRIVAL_RATE
    )
    first = replay_trace(trace, nodes=SMOKE_NODES, policy="sjf_est")
    second = replay_trace(trace, nodes=SMOKE_NODES, policy="sjf_est")
    return first, second


def test_trace_smoke_deterministic(once):
    first, second = once(run_smoke)
    # Same trace, same seed, fresh simulation: bit-identical sim-time
    # metrics and per-job records.
    assert first.metrics() == second.metrics()
    assert first.records == second.records
    assert first.errors == 0
    assert len(first.records) == SMOKE_JOBS
