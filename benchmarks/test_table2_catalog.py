"""Table 2: the benchmark programs.

Regenerates the catalog's rows by actually *running* every application
in isolation on a Tesla C2050 (bare CUDA runtime, as the paper measured
them) and reporting its kernel-call count and measured runtime; asserts
the paper's categories: short-running 3–5 s, long-running 30–90 s
(with the paper's injected CPU fraction for MM-S/MM-L).
"""

from repro.cluster.node import ComputeNode
from repro.experiments.report import format_table
from repro.sim import Environment
from repro.simcuda import TESLA_C2050
from repro.workloads import ALL_WORKLOADS, make_job


def run_alone(spec):
    env = Environment()
    node = ComputeNode(env, "bench", [TESLA_C2050])
    # The paper's long-running jobs include injected CPU phases; use a
    # representative fraction of 1 for the matmul probes.
    effective = spec.with_cpu_fraction(1.0) if spec.tag in ("MM-S", "MM-L") else spec
    job = make_job(effective, use_runtime=False)
    p = env.process(job.execute(node, submitted_at=0.0))
    env.run(until=p)
    return job.outcome.execution_time


def test_table2_catalog(once):
    def run_all():
        return {spec.tag: run_alone(spec) for spec in ALL_WORKLOADS}

    times = once(run_all)

    rows = []
    for spec in ALL_WORKLOADS:
        rows.append(
            [
                spec.tag,
                spec.name,
                str(spec.kernel_calls),
                f"{times[spec.tag]:.1f}",
                "long" if spec.long_running else "short",
            ]
        )
    print(
        "\n== Table 2 (measured on simulated Tesla C2050) ==\n"
        + format_table(
            ["Tag", "Program", "Kernel calls", "Runtime (s)", "Class"], rows
        )
    )

    for spec in ALL_WORKLOADS:
        t = times[spec.tag]
        if spec.long_running:
            assert 30.0 <= t <= 90.0, f"{spec.tag}: {t:.1f}s outside 30-90s"
        else:
            assert 3.0 <= t <= 5.5, f"{spec.tag}: {t:.1f}s outside 3-5s"
