"""Figure 11: two-node cluster under TORQUE, long-running jobs with
conflicting memory requirements (BS-L/MM-L at 25/75), 16/32/48 jobs.

Paper claims reproduced here:
- sharing increases throughput significantly (the paper: up to 50%)
  despite the swap overhead;
- inter-node offloading accelerates execution further;
- swap operations occur (the memory conflicts are real) yet no job fails.
"""

from repro.experiments import figures
from repro.experiments.report import format_figure

SER = "serialized execution"
SHARE = "GPU sharing (4 vGPUs)"
LB = "GPU sharing + load balancing"


def test_fig11_cluster_long(once):
    result = once(figures.fig11_cluster_long, seed=0)
    print("\n" + format_figure(result))

    swaps = result.annotations["swaps (4 vGPUs)"]
    for xi, n in enumerate(result.x_values):
        total_ser = result.series[SER][xi]
        total_share = result.series[SHARE][xi]
        total_lb = result.series[LB][xi]
        gain = (total_ser - total_share) / total_ser
        # "allowing jobs to share GPUs increases the throughput
        # significantly (up to 50%)"
        assert 0.25 < gain < 0.65, f"sharing gain {gain:.0%} at {n} jobs"
        # "the execution is further accelerated by allowing the
        # overloaded node to offload the excess jobs remotely"
        assert total_lb < total_share
        # Avg ordering matches.
        assert result.avg_series[LB][xi] < result.avg_series[SER][xi]
        # Swapping really happened.
        assert swaps[xi] > 0

    best_gain = max(
        (result.series[SER][xi] - result.series[SHARE][xi]) / result.series[SER][xi]
        for xi in range(len(result.x_values))
    )
    assert best_gain > 0.4  # approaches the paper's 50%
