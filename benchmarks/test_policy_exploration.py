"""§7 future work, realized: "we plan to explore alternative mapping and
scheduling algorithms."

Sweeps all four policies over a staggered mixed batch on the 3-GPU node
(serialized vGPUs): long BS-L jobs arrive first and occupy every GPU;
twelve short HS jobs then queue behind them.  The report shows the
trade-off surface — per-class average turnaround against total makespan.
"""

from repro.cluster.node import ComputeNode
from repro.core import RuntimeConfig
from repro.experiments.figures import NODE_3GPU
from repro.experiments.report import format_table
from repro.sim import Environment
from repro.workloads import make_job, workload

POLICIES = ("fcfs", "sjf", "credit", "edf")


def run(policy: str):
    env = Environment()
    node = ComputeNode(
        env, "bench", NODE_3GPU,
        runtime_config=RuntimeConfig(vgpus_per_device=1, policy=policy),
    )
    env.process(node.start())
    env.run(until=5.0)
    t0 = env.now
    times = {"HS": [], "BS-L": []}

    def run_job(spec_tag, name, delay, deadline):
        yield env.timeout(delay)
        job = make_job(
            workload(spec_tag),
            name=name,
            deadline_s=deadline if policy == "edf" else None,
        )
        yield from job.execute(node, submitted_at=t0)
        times[spec_tag].append(env.now - t0)

    # Three longs bind all three serialized vGPUs immediately.
    for i in range(3):
        env.process(run_job("BS-L", f"long{i}", 0.0, 1000.0))
    # Two more longs and twelve shorts then QUEUE together — the mixed
    # waiting list is where the policies diverge.
    for i in range(3, 5):
        env.process(run_job("BS-L", f"long{i}", 4.5, 1000.0))
    for i in range(12):
        env.process(run_job("HS", f"short{i}", 5.0, 30.0))
    env.run()
    all_times = times["HS"] + times["BS-L"]
    return {
        "total": max(all_times),
        "avg": sum(all_times) / len(all_times),
        "avg_hs": sum(times["HS"]) / len(times["HS"]),
        "avg_bsl": sum(times["BS-L"]) / len(times["BS-L"]),
        "count": len(all_times),
    }


def test_policy_exploration(once):
    results = once(lambda: {p: run(p) for p in POLICIES})

    print(
        "\n== Policy exploration: 3 BS-L then 12 HS, 3 GPUs serialized ==\n"
        + format_table(
            ["policy", "total (s)", "avg (s)", "avg HS (s)", "avg BS-L (s)"],
            [
                [
                    p,
                    f"{r['total']:.1f}",
                    f"{r['avg']:.1f}",
                    f"{r['avg_hs']:.1f}",
                    f"{r['avg_bsl']:.1f}",
                ]
                for p, r in results.items()
            ],
        )
    )

    for r in results.values():
        assert r["count"] == 17
    # Same total work; makespans differ only by tail effects (running
    # the longs last stretches the tail under SJF/EDF).
    totals = [r["total"] for r in results.values()]
    assert max(totals) / min(totals) < 1.25
    # Short-friendly policies (SJF via the profiling hint, EDF via the
    # tight deadline) let the 12 shorts bypass the two queued longs.
    for p in ("sjf", "edf"):
        assert results[p]["avg_hs"] < results["fcfs"]["avg_hs"] * 0.8, p
    # The longs pay for it — a real trade-off, not a free lunch.
    for p in ("sjf", "edf"):
        assert results[p]["avg_bsl"] >= results["fcfs"]["avg_bsl"]
    # And the overall average improves (12 shorts outweigh 2 longs).
    assert results["sjf"]["avg"] < results["fcfs"]["avg"]
