"""Ablation: kernel consolidation (space-sharing), the §6 integration.

Small-kernel applications (filling half the device) benefit from
co-running; full-device kernels are unaffected.  The paper argues its
delayed binding and transfer deferral make this integration natural —
here it is, behind one configuration flag.
"""

from repro.core import RuntimeConfig
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.simcuda import TESLA_C2050
from repro.cluster.jobs import Job
from repro.core.frontend import Frontend
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

MIB = 1024**2


def small_kernel_job(name, kernels=8, seconds=0.4):
    """Kernels that can only fill 7 of the C2050's 14 SMs."""
    kernel = KernelDescriptor(
        name=f"{name}-k",
        flops=seconds * TESLA_C2050.effective_gflops * 0.5 * 1e9,
        sm_demand=7,
    )

    def body(node):
        fe = Frontend(node.env, node.runtime.listener, name=name)
        yield from fe.open()
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, kernel)
        a = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.cuda_memcpy_h2d(a, 16 * MIB)
        for _ in range(kernels):
            yield from fe.launch_kernel(kernel, [a])
        yield from fe.cuda_memcpy_d2h(a, 16 * MIB)
        yield from fe.cuda_free(a)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="SMALLK")


def run(consolidation: bool, n_jobs: int = 6):
    jobs = [small_kernel_job(f"s{i}") for i in range(n_jobs)]
    return run_node_batch(
        jobs,
        [TESLA_C2050],
        RuntimeConfig(vgpus_per_device=4, kernel_consolidation=consolidation),
    )


def test_ablation_kernel_consolidation(once):
    shared, serialized = once(lambda: (run(True), run(False)))

    print(
        "\n== Ablation: kernel consolidation (6 half-device-kernel jobs) ==\n"
        + format_table(
            ["config", "total (s)", "kernels"],
            [
                ["consolidation ON", f"{shared.total_time:.1f}",
                 str(shared.stats["kernels_launched"])],
                ["consolidation OFF", f"{serialized.total_time:.1f}",
                 str(serialized.stats["kernels_launched"])],
            ],
        )
    )

    assert shared.errors == serialized.errors == 0
    assert shared.stats["kernels_launched"] == serialized.stats["kernels_launched"]
    # Two half-device kernels co-run → close to 2× throughput.
    assert shared.total_time < serialized.total_time * 0.65
