"""Overlap engine: stream-pipelined transfers vs plain deferral (§4.5).

The paper's second runtime configuration — "overlap computation and
communication" — routes bulk transfers and swap write-backs through
per-vGPU copy streams and prefetches the predicted next-launch working
set during CPU phases.  On the update-heavy multi-tenant pattern (host
updates + kernels interleaved with CPU code, automatic checkpoints after
every kernel) the copies hide under the CPU phases and under other
tenants' kernels, so the batch finishes strictly earlier than with
synchronous deferred transfers.

Writes ``BENCH_overlap.json`` with both makespans next to the engine
overlap achieved, and checks the Chrome trace really contains concurrent
copy-engine and exec-engine spans on one device.
"""

import json

from repro.cluster.jobs import Job
from repro.core import RuntimeConfig
from repro.core.frontend import Frontend
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.obs import EngineSpan, ObsCollector
from repro.simcuda import TESLA_C2050
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

MIB = 1024**2
ROUNDS = 8
BUFFER_MIB = 512
KERNEL_SECONDS = 0.3
CPU_PHASE_S = 0.4
N_TENANTS = 3


def make_pipelined_job(name):
    """Each round: host update → CPU phase → kernel → CPU phase.

    The kernel dirties the buffer, and ``checkpoint_kernel_seconds=0``
    checkpoints after every kernel — so every round moves the buffer in
    both directions, the traffic the overlap engine can hide.
    """

    def body(node):
        fe = Frontend(node.env, node.runtime.listener, name=name)
        yield from fe.open()
        k = KernelDescriptor(
            name="round", flops=KERNEL_SECONDS * TESLA_C2050.effective_gflops * 1e9
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        buf = yield from fe.cuda_malloc(BUFFER_MIB * MIB)
        for _ in range(ROUNDS):
            yield from fe.cuda_memcpy_h2d(buf, BUFFER_MIB * MIB)
            yield from node.cpu_phase(CPU_PHASE_S)
            yield from fe.launch_kernel(k, [buf])
            yield from node.cpu_phase(CPU_PHASE_S)
        yield from fe.cuda_memcpy_d2h(buf, BUFFER_MIB * MIB)
        yield from fe.cuda_free(buf)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="OVL")


def run(overlap: bool, collector=None):
    config = RuntimeConfig(
        vgpus_per_device=N_TENANTS,
        checkpoint_kernel_seconds=0.0,
        tracing=collector is not None,
    )
    if overlap:
        config = config.overlapped()
    jobs = [make_pipelined_job(f"ovl{i}") for i in range(N_TENANTS)]
    return run_node_batch(jobs, [TESLA_C2050], config, collector=collector)


def _spans_overlap(spans):
    """True if any copy span and exec span intersect on one device."""
    copies = [s for s in spans if s.engine == "copy"]
    execs = [s for s in spans if s.engine == "exec"]
    for c in copies:
        for e in execs:
            if c.device_id == e.device_id and (
                c.begin_at < e.begin_at + e.duration
                and e.begin_at < c.begin_at + c.duration
            ):
                return True
    return False


def test_overlap_engine_beats_deferred(once):
    def experiment():
        deferred = run(overlap=False)
        collector = ObsCollector()
        overlapped = run(overlap=True, collector=collector)
        spans = [e for e in collector.events if isinstance(e, EngineSpan)]
        return deferred, overlapped, spans

    deferred, overlapped, spans = once(experiment)

    print(
        "\n== Overlap engine: pipelined transfers vs deferred "
        f"({N_TENANTS} update-heavy tenants) ==\n"
        + format_table(
            ["config", "makespan (s)", "engine overlap (s)",
             "prefetch hits", "swap out (MiB)"],
            [
                [
                    "deferred (sync)",
                    f"{deferred.total_time:.1f}",
                    f"{deferred.total_copy_overlap:.2f}",
                    str(deferred.stats["prefetch_hits"]),
                    str(deferred.stats["swap_bytes_out"] // MIB),
                ],
                [
                    "overlap (streams)",
                    f"{overlapped.total_time:.1f}",
                    f"{overlapped.total_copy_overlap:.2f}",
                    str(overlapped.stats["prefetch_hits"]),
                    str(overlapped.stats["swap_bytes_out"] // MIB),
                ],
            ],
        )
    )

    assert deferred.errors == overlapped.errors == 0
    # The tentpole claim: pipelining strictly beats the deferred baseline
    # on the overlap-friendly pattern.
    assert overlapped.total_time < deferred.total_time
    # It does so by actually overlapping: the device's copy and exec
    # engines ran concurrently, and the trace shows intersecting spans.
    assert overlapped.total_copy_overlap > 0
    assert _spans_overlap(spans)
    # Prefetch converted CPU phases into staged bulk transfers.
    assert overlapped.stats["prefetch_hits"] > 0
    # Same logical work in both modes.
    assert overlapped.stats["kernels_launched"] == deferred.stats["kernels_launched"]
    assert overlapped.stats["swap_bytes_out"] == deferred.stats["swap_bytes_out"]

    with open("BENCH_overlap.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "tenants": N_TENANTS,
                    "rounds": ROUNDS,
                    "buffer_mib": BUFFER_MIB,
                    "kernel_seconds": KERNEL_SECONDS,
                    "cpu_phase_seconds": CPU_PHASE_S,
                },
                "deferred": {
                    "makespan_s": deferred.total_time,
                    "copy_exec_overlap_s": deferred.total_copy_overlap,
                    "prefetch_hits": deferred.stats["prefetch_hits"],
                },
                "overlap": {
                    "makespan_s": overlapped.total_time,
                    "copy_exec_overlap_s": overlapped.total_copy_overlap,
                    "prefetch_hits": overlapped.stats["prefetch_hits"],
                },
                "speedup": deferred.total_time / overlapped.total_time,
            },
            fh,
            indent=2,
        )
        fh.write("\n")
