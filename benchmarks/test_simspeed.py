"""Simulator self-profiling: how fast does the simulation itself run?

Every other benchmark reports *simulated* seconds; this one reports the
simulator's own speed — events processed per wall-clock second, simulated
seconds advanced per wall second, event-queue depth and the per-handler
hotspot breakdown — for the canonical overcommitted job mix, in four
variants: stock vs macro-stepped model execution, tracing off vs on.
The measurement itself lives in :mod:`repro.experiments.simspeed` (one
runner shared with ``repro bench simspeed`` and CI).

Gates asserted here:

* **Sim-time identity (stock)**: the macro-off run reproduces the pinned
  simulated results (``simspeed_baseline.json``) bit-for-bit — total
  time and every per-job completion time.
* **Sim-time identity (macro)**: the macro-stepped run reproduces the
  stock run bit-for-bit — same total time, same per-job times, same
  aggregate stats.  Macro-stepping collapses heap events, never moves a
  timestamp.
* **Zero simulated cost of tracing**: traced and untraced runs advance
  simulated time identically, process identical event counts, and
  tracing costs at most ``MAX_TRACING_OVERHEAD`` in events/sec.
* **Throughput ratchet (machine-pinned)**: stock untraced events/sec
  must stay above ``min_speedup`` x the baseline's recorded figure; the
  failure message prints old -> new.
* **Macro speedup (machine-independent)**: the macro run's
  sim-s/wall-s must be at least ``min_macro_speedup`` x the stock run's
  *in the same bench execution* — a same-machine ratio, so it gates the
  fast paths, not the hardware.  Skipped when ``REPRO_MACRO_STEP=0``
  disables macro-stepping (the CI identity job).

The honest scorecard (see docs/simulator.md): the macro-step work
targeted an order of magnitude; the measured same-run sim-rate ratio on
the recording machine is ~1.5-1.6x, because the event count is already
near the structural floor (one delivery event per message plus genuine
cross-vGPU interleave points) and the remaining wall time is the
model's own generator code, which macro-stepping deliberately does not
rewrite.  ``min_macro_speedup`` is sized below the measurement (1.25x)
to absorb machine variance, like every other ratchet here.

Writes ``BENCH_simspeed.json`` and ``BENCH_simspeed_hotspots.txt``
(the SimProfiler hotspot artifact CI uploads).
"""

import json

import pytest

from repro.experiments import simspeed
from repro.experiments.report import format_table

MAX_TRACING_OVERHEAD = 1.6
REPEATS = 3

#: One full measurement shared by both gate tests (either may run
#: standalone; whichever runs first pays for the measurement).
_CACHE = {}


def _measurement(once):
    def get():
        if "m" not in _CACHE:
            _CACHE["m"] = simspeed.measure(REPEATS)
        return _CACHE["m"]

    return once(get)


def test_stock_identity_tracing_and_ratchet(once):
    m = _measurement(once)
    res_off, rep_off = m["stock"]["off"]
    res_on, rep_on = m["stock"]["on"]

    # Sim-time identity against the pinned baseline: no rework may move
    # a single simulated timestamp.
    baseline = simspeed.load_baseline()
    assert res_off.total_time == baseline["sim_total_time"], (
        f"simulated total time diverged from the pinned baseline: "
        f"{res_off.total_time!r} != {baseline['sim_total_time']!r}"
    )
    assert list(res_off.job_times) == baseline["sim_job_times"], (
        "per-job completion times diverged from the pinned baseline"
    )

    # Tracing is observation only: identical simulated outcome.
    assert res_on.total_time == res_off.total_time
    assert res_on.job_times == res_off.job_times
    assert rep_on["events"] == rep_off["events"]
    assert rep_on["sim_seconds"] == rep_off["sim_seconds"]

    # Machine-pinned throughput ratchet; the message prints old -> new
    # so a CI failure shows the regression magnitude at a glance.
    speedup = rep_off["events_per_second"] / baseline["events_per_second"]
    assert speedup >= baseline["min_speedup"], (
        f"events/sec regressed: baseline "
        f"{baseline['events_per_second']:.0f} -> measured "
        f"{rep_off['events_per_second']:.0f} ({speedup:.2f}x, ratchet "
        f"{baseline['min_speedup']}x)"
    )

    overhead = rep_off["events_per_second"] / rep_on["events_per_second"]
    assert overhead <= MAX_TRACING_OVERHEAD, (
        f"tracing costs {overhead:.2f}x in events/sec "
        f"(bound {MAX_TRACING_OVERHEAD}x)"
    )


def test_macro_identity_and_speedup(once):
    m = _measurement(once)
    res_stock, rep_stock = m["stock"]["off"]
    res_macro, rep_macro = m["macro"]["off"]
    res_macro_tr, rep_macro_tr = m["macro"]["on"]

    # Macro-stepping is an execution strategy, not a model change: the
    # simulated outcome is bit-identical to stock.
    assert res_macro.total_time == res_stock.total_time
    assert list(res_macro.job_times) == list(res_stock.job_times)
    assert res_macro.stats == res_stock.stats

    # ... and it applies identically under tracing (tracing must never
    # observe a different schedule).
    assert res_macro_tr.total_time == res_macro.total_time
    assert res_macro_tr.job_times == res_macro.job_times
    assert rep_macro_tr["events"] == rep_macro["events"]

    _write_bench(m)

    baseline = simspeed.load_baseline()
    if not m["macro_enabled"]:
        pytest.skip("macro-step disabled via REPRO_MACRO_STEP=0: "
                    "identity verified, speedup gate not applicable")

    # Fewer heap events is the mechanism; assert it holds.
    assert rep_macro["events"] < rep_stock["events"]

    # Machine-independent gate: same-run sim-rate ratio.
    ratio = (rep_macro["sim_seconds_per_wall_second"]
             / rep_stock["sim_seconds_per_wall_second"])
    assert ratio >= baseline["min_macro_speedup"], (
        f"macro-step speedup regressed: stock "
        f"{rep_stock['sim_seconds_per_wall_second']:.0f} -> macro "
        f"{rep_macro['sim_seconds_per_wall_second']:.0f} sim-s/wall-s "
        f"({ratio:.2f}x, gate {baseline['min_macro_speedup']}x)"
    )


def _write_bench(m):
    res_stock, rep_stock = m["stock"]["off"]
    _, rep_stock_tr = m["stock"]["on"]
    _, rep_macro = m["macro"]["off"]
    _, rep_macro_tr = m["macro"]["on"]
    baseline = simspeed.load_baseline()
    overhead = (rep_stock["events_per_second"]
                / rep_stock_tr["events_per_second"])
    ratio = (rep_macro["sim_seconds_per_wall_second"]
             / rep_stock["sim_seconds_per_wall_second"])

    print("\n== simulator speed: "
          f"{simspeed.JOB_COUNT}-job overcommit mix, {simspeed.VGPUS} "
          f"vGPUs (best of {REPEATS}) ==\n"
          + simspeed.scorecard(m, baseline)
          + f"\ntracing overhead (stock): {overhead:.3f}x")

    with open("BENCH_simspeed.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "jobs": simspeed.JOB_COUNT,
                    "vgpus": simspeed.VGPUS,
                    "repeats": REPEATS,
                },
                "macro_enabled": m["macro_enabled"],
                # stock figures keep their historical keys so the CI
                # baseline-candidate step and older tooling still read
                # them.
                "tracing_off": rep_stock,
                "tracing_on": rep_stock_tr,
                "macro_off": rep_macro,
                "macro_on": rep_macro_tr,
                "tracing_overhead_ratio": overhead,
                "macro_sim_rate_speedup": ratio,
                "baseline_events_per_second": baseline["events_per_second"],
                "speedup_vs_baseline": (
                    rep_stock["events_per_second"]
                    / baseline["events_per_second"]
                ),
                "min_speedup": baseline["min_speedup"],
                "min_macro_speedup": baseline["min_macro_speedup"],
                "sim_time_matches_pinned_baseline": True,
            },
            fh,
            indent=2,
        )
        fh.write("\n")

    # The SimProfiler hotspot artifact CI uploads: where the remaining
    # wall time goes, per execution mode.
    with open("BENCH_simspeed_hotspots.txt", "w") as fh:
        for mode, rep in (("stock", rep_stock), ("macro", rep_macro)):
            fh.write(f"hotspots ({mode}, untraced):\n")
            fh.write(format_table(
                ["handler", "events"],
                [[h["handler"], str(h["events"])] for h in rep["hotspots"]],
            ))
            fh.write("\n\n")
