"""Simulator self-profiling: how fast does the simulation itself run?

Every other benchmark reports *simulated* seconds; this one reports the
simulator's own speed — events processed per wall-clock second, simulated
seconds advanced per wall second, event-queue depth and the per-handler
hotspot breakdown — for the canonical overcommitted job mix, with
structured tracing off and on.

Four claims are asserted:

* **Sim-time identity**: the run reproduces the PR 6 pinned simulated
  results (``simspeed_baseline.json``) bit-for-bit — total time and every
  per-job completion time.  The kernel rework (event cancellation, timer
  wheel, ghost-waiter purging) may change how many events it takes, but
  never *when* anything happens.
* **Zero simulated cost**: the traced and untraced runs advance simulated
  time identically and finish with identical batch results (tracing is
  pure observation).
* **Bounded wall cost**: tracing may not slow the simulator down by more
  than ``MAX_TRACING_OVERHEAD`` (events/sec ratio, best of
  ``REPEATS`` runs each way to damp scheduler noise).
* **Throughput ratchet**: untraced events/sec must stay above
  ``min_speedup`` x the baseline's recorded figure.  The ratchet is
  deliberately below the measured speedup (see ``min_speedup`` in the
  baseline JSON) because the recorded figure is machine-specific: CI
  runners differ from the box that recorded it, so the gate is sized to
  catch the integer-factor regressions an algorithmic mistake in the
  kernel causes (O(n) queue scans, eager cancellation sweeps), not
  scheduler noise.

The honest scorecard: the ROADMAP's 10x-throughput item targeted 10x
(acceptance floor 5x); the rework measured ~1.13x on the recording
machine.  Profiling shows why: the kernel was already thin (pop + two
attribute loads + one callback per event), so cancellation and the timer
wheel bought correctness and fewer events, while wall time is dominated
by the *model's* generator code — irreducible Python function-call cost,
not kernel overhead.  ``speedup_vs_baseline`` in the output records the
actual ratio; see docs/simulator.md for the full breakdown.

Writes ``BENCH_simspeed.json``.
"""

import json
import pathlib

from repro.cli import _parse_jobs
from repro.core import RuntimeConfig
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.obs import ObsCollector
from repro.sim import SimProfiler
from repro.simcuda.device import TESLA_C2050

#: Canonical overcommit mix: the CLI's default memory-heavy MM-L/BS-L
#: alternation, enough jobs to oversubscribe a C2050 and swap.
JOB_COUNT = 8
VGPUS = 4
#: Tracing must cost less than this factor in events/sec.  Measured
#: ~1.3x on this deliberately event-dense mix (every call emits
#: CallBegin/CallEnd/PhaseBreakdown and runs span accounting, at ~2 us
#: of pure-Python event construction each while the per-call simulated
#: work is tiny); the recorded JSON keeps the exact ratio as the
#: baseline for the ROADMAP's 10x-throughput item, and the bound here
#: only guards against regressions, with slack for CI wall-clock jitter.
MAX_TRACING_OVERHEAD = 1.6
REPEATS = 3

#: PR 6 pinned simulated results + recorded events/sec + the ratchet.
BASELINE_PATH = pathlib.Path(__file__).with_name("simspeed_baseline.json")


def _run(tracing: bool):
    profiler = SimProfiler()
    jobs = _parse_jobs([str(JOB_COUNT)], 0.0)
    config = RuntimeConfig(vgpus_per_device=VGPUS, tracing=tracing)
    collector = ObsCollector() if tracing else None
    result = run_node_batch(jobs, [TESLA_C2050], config, label="simspeed",
                            collector=collector, profiler=profiler)
    assert result.errors == 0
    return result, profiler.report()


def _best(tracing: bool):
    """Best (fastest) of REPEATS runs; sim results are deterministic, so
    only the wall-clock figures differ between repeats."""
    runs = [_run(tracing) for _ in range(REPEATS)]
    result = runs[0][0]
    report = max((rep for _, rep in runs), key=lambda r: r["events_per_second"])
    return result, report


def test_simspeed_baseline_and_tracing_overhead(once):
    def experiment():
        return {"off": _best(tracing=False), "on": _best(tracing=True)}

    results = once(experiment)
    (res_off, rep_off) = results["off"]
    (res_on, rep_on) = results["on"]

    # Sim-time identity against the pinned PR 6 baseline: the kernel
    # rework must not move a single simulated timestamp.
    baseline = json.loads(BASELINE_PATH.read_text())
    assert res_off.total_time == baseline["sim_total_time"], (
        f"simulated total time diverged from the pinned baseline: "
        f"{res_off.total_time!r} != {baseline['sim_total_time']!r}"
    )
    assert list(res_off.job_times) == baseline["sim_job_times"], (
        "per-job completion times diverged from the pinned baseline"
    )

    # Tracing is observation only: identical simulated outcome.
    assert res_on.total_time == res_off.total_time
    assert res_on.job_times == res_off.job_times
    assert rep_on["events"] == rep_off["events"]
    assert rep_on["sim_seconds"] == rep_off["sim_seconds"]

    # Throughput ratchet against the recorded baseline figure.
    speedup = rep_off["events_per_second"] / baseline["events_per_second"]
    assert speedup >= baseline["min_speedup"], (
        f"events/sec regressed: {rep_off['events_per_second']:.0f} is "
        f"{speedup:.2f}x the recorded baseline "
        f"{baseline['events_per_second']:.0f} "
        f"(ratchet {baseline['min_speedup']}x)"
    )

    overhead = rep_off["events_per_second"] / rep_on["events_per_second"]
    print(
        f"\n== simulator speed: {JOB_COUNT}-job overcommit mix, "
        f"{VGPUS} vGPUs ==\n"
        + format_table(
            ["tracing", "events", "events/s", "sim s / wall s",
             "queue mean", "queue peak"],
            [
                [
                    name,
                    str(rep["events"]),
                    f"{rep['events_per_second']:.0f}",
                    f"{rep['sim_seconds_per_wall_second']:.1f}",
                    f"{rep['queue_depth_mean']:.1f}",
                    str(rep["queue_depth_peak"]),
                ]
                for name, rep in (("off", rep_off), ("on", rep_on))
            ],
        )
        + f"\ntracing overhead: {overhead:.3f}x"
        + f"\nspeedup vs recorded baseline: {speedup:.3f}x"
        + f" (ratchet {baseline['min_speedup']}x)\nhotspots (untraced):\n"
        + format_table(
            ["handler", "events"],
            [[h["handler"], str(h["events"])] for h in rep_off["hotspots"]],
        )
    )

    assert overhead <= MAX_TRACING_OVERHEAD, (
        f"tracing costs {overhead:.2f}x in events/sec "
        f"(bound {MAX_TRACING_OVERHEAD}x)"
    )

    with open("BENCH_simspeed.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "jobs": JOB_COUNT,
                    "vgpus": VGPUS,
                    "gpu": TESLA_C2050.name,
                    "repeats": REPEATS,
                },
                "tracing_off": rep_off,
                "tracing_on": rep_on,
                "tracing_overhead_ratio": overhead,
                "sim_time_identical": res_on.total_time == res_off.total_time,
                "baseline_events_per_second": baseline["events_per_second"],
                "speedup_vs_baseline": speedup,
                "min_speedup": baseline["min_speedup"],
                "sim_time_matches_pinned_baseline": True,
            },
            fh,
            indent=2,
        )
        fh.write("\n")
