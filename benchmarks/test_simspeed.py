"""Simulator self-profiling: how fast does the simulation itself run?

Every other benchmark reports *simulated* seconds; this one reports the
simulator's own speed — events processed per wall-clock second, simulated
seconds advanced per wall second, event-queue depth and the per-handler
hotspot breakdown — for the canonical overcommitted job mix, with
structured tracing off and on.

Two claims are asserted:

* **Zero simulated cost**: the traced and untraced runs advance simulated
  time identically and finish with identical batch results (tracing is
  pure observation).
* **Bounded wall cost**: tracing may not slow the simulator down by more
  than ``MAX_TRACING_OVERHEAD`` (events/sec ratio, best of
  ``REPEATS`` runs each way to damp scheduler noise).

Writes ``BENCH_simspeed.json``.
"""

import json

from repro.cli import _parse_jobs
from repro.core import RuntimeConfig
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.obs import ObsCollector
from repro.sim import SimProfiler
from repro.simcuda.device import TESLA_C2050

#: Canonical overcommit mix: the CLI's default memory-heavy MM-L/BS-L
#: alternation, enough jobs to oversubscribe a C2050 and swap.
JOB_COUNT = 8
VGPUS = 4
#: Tracing must cost less than this factor in events/sec.  Measured
#: ~1.3x on this deliberately event-dense mix (every call emits
#: CallBegin/CallEnd/PhaseBreakdown and runs span accounting, at ~2 us
#: of pure-Python event construction each while the per-call simulated
#: work is tiny); the recorded JSON keeps the exact ratio as the
#: baseline for the ROADMAP's 10x-throughput item, and the bound here
#: only guards against regressions, with slack for CI wall-clock jitter.
MAX_TRACING_OVERHEAD = 1.6
REPEATS = 3


def _run(tracing: bool):
    profiler = SimProfiler()
    jobs = _parse_jobs([str(JOB_COUNT)], 0.0)
    config = RuntimeConfig(vgpus_per_device=VGPUS, tracing=tracing)
    collector = ObsCollector() if tracing else None
    result = run_node_batch(jobs, [TESLA_C2050], config, label="simspeed",
                            collector=collector, profiler=profiler)
    assert result.errors == 0
    return result, profiler.report()


def _best(tracing: bool):
    """Best (fastest) of REPEATS runs; sim results are deterministic, so
    only the wall-clock figures differ between repeats."""
    runs = [_run(tracing) for _ in range(REPEATS)]
    result = runs[0][0]
    report = max((rep for _, rep in runs), key=lambda r: r["events_per_second"])
    return result, report


def test_simspeed_baseline_and_tracing_overhead(once):
    def experiment():
        return {"off": _best(tracing=False), "on": _best(tracing=True)}

    results = once(experiment)
    (res_off, rep_off) = results["off"]
    (res_on, rep_on) = results["on"]

    # Tracing is observation only: identical simulated outcome.
    assert res_on.total_time == res_off.total_time
    assert res_on.job_times == res_off.job_times
    assert rep_on["events"] == rep_off["events"]
    assert rep_on["sim_seconds"] == rep_off["sim_seconds"]

    overhead = rep_off["events_per_second"] / rep_on["events_per_second"]
    print(
        f"\n== simulator speed: {JOB_COUNT}-job overcommit mix, "
        f"{VGPUS} vGPUs ==\n"
        + format_table(
            ["tracing", "events", "events/s", "sim s / wall s",
             "queue mean", "queue peak"],
            [
                [
                    name,
                    str(rep["events"]),
                    f"{rep['events_per_second']:.0f}",
                    f"{rep['sim_seconds_per_wall_second']:.1f}",
                    f"{rep['queue_depth_mean']:.1f}",
                    str(rep["queue_depth_peak"]),
                ]
                for name, rep in (("off", rep_off), ("on", rep_on))
            ],
        )
        + f"\ntracing overhead: {overhead:.3f}x\nhotspots (untraced):\n"
        + format_table(
            ["handler", "events"],
            [[h["handler"], str(h["events"])] for h in rep_off["hotspots"]],
        )
    )

    assert overhead <= MAX_TRACING_OVERHEAD, (
        f"tracing costs {overhead:.2f}x in events/sec "
        f"(bound {MAX_TRACING_OVERHEAD}x)"
    )

    with open("BENCH_simspeed.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "jobs": JOB_COUNT,
                    "vgpus": VGPUS,
                    "gpu": TESLA_C2050.name,
                    "repeats": REPEATS,
                },
                "tracing_off": rep_off,
                "tracing_on": rep_on,
                "tracing_overhead_ratio": overhead,
                "sim_time_identical": res_on.total_time == res_off.total_time,
            },
            fh,
            indent=2,
        )
        fh.write("\n")
