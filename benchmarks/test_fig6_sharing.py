"""Figure 6: benefits of GPU sharing with three GPUs, 8–48 short jobs.

Paper claims reproduced here:
- the bare CUDA runtime cannot handle more than eight concurrent jobs;
- at 8 jobs, 4 vGPUs is competitive with (or better than) fewer vGPUs —
  the framework overhead is compensated by load balancing;
- more sharing helps as the job count grows, with 4 vGPUs the knee.
"""

import pytest

from repro.experiments import figures
from repro.experiments.report import format_figure
from repro.simcuda import (
    CudaDriver,
    CudaError,
    CudaRuntimeAPI,
    CudaRuntimeError,
    TESLA_C2050,
)
from repro.sim import Environment


def test_bare_cuda_runtime_cannot_exceed_eight_jobs(once):
    """The observation motivating the whole design (§1): a ninth
    concurrent context fails on the bare runtime."""

    def probe():
        env = Environment()
        driver = CudaDriver(env, [TESLA_C2050])
        failures = []

        def app(i):
            api = CudaRuntimeAPI(driver, owner=f"app{i}")
            try:
                yield from api.cuda_malloc(1024)
                yield env.timeout(10.0)  # hold the context
            except CudaRuntimeError as exc:
                failures.append(exc.code)

        for i in range(9):
            env.process(app(i))
        env.run()
        return failures

    failures = once(probe)
    assert CudaError.cudaErrorTooManyContexts in failures


def test_fig6_sharing(once):
    result = once(figures.fig6_sharing, seed=0, repeats=1)
    print("\n" + format_figure(result))

    bare = result.series["CUDA runtime"]
    v1 = result.series["1 vGPU"]
    v2 = result.series["2 vGPUs"]
    v4 = result.series["4 vGPUs"]

    # The bare series stops at 8 jobs.
    assert bare[0] is not None
    assert all(v is None for v in bare[1:])

    # At 8 jobs, 4-way sharing is within ~15% of the bare runtime.
    assert v4[0] == pytest.approx(bare[0], rel=0.15)

    # Sharing helps at scale: at 32 and 48 jobs, 4 vGPUs beats 1 vGPU.
    for xi in (2, 3):
        assert v4[xi] < v1[xi]
        assert v2[xi] < v1[xi] * 1.02

    # Monotone in job count for every configuration.
    for series in (v1, v2, v4):
        assert series == sorted(series)
