"""Figure 10: two-node cluster under TORQUE, short jobs (no memory
conflicts), 32 and 48 jobs.

Paper claims reproduced here:
- GPU sharing (4 vGPUs) improves total time over serialized execution;
- adding inter-node offloading improves it further (GPU-oblivious
  TORQUE overloads the single-GPU node; offloading repairs it);
- the same ordering holds for the average per-job time.
"""

from repro.experiments import figures
from repro.experiments.report import format_figure

SER = "serialized execution"
SHARE = "GPU sharing (4 vGPUs)"
LB = "GPU sharing + load balancing"


def test_fig10_cluster_short(once):
    result = once(figures.fig10_cluster_short, seed=0, repeats=1)
    print("\n" + format_figure(result))

    for xi, n in enumerate(result.x_values):
        total_ser = result.series[SER][xi]
        total_share = result.series[SHARE][xi]
        total_lb = result.series[LB][xi]
        # Ordering: serialized ≥ sharing > sharing+offloading.
        assert total_share < total_ser, f"sharing did not help at {n} jobs"
        assert total_lb < total_share, f"offloading did not help at {n} jobs"

        avg_ser = result.avg_series[SER][xi]
        avg_lb = result.avg_series[LB][xi]
        assert avg_lb < avg_ser

    # Sharing gains are in the "up to tens of percent" band, not noise.
    gains = [
        (result.series[SER][xi] - result.series[SHARE][xi]) / result.series[SER][xi]
        for xi in range(len(result.x_values))
    ]
    assert max(gains) > 0.05
