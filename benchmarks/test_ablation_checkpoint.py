"""Ablation: automatic checkpointing after long kernels (§4.6).

Under failure injection, checkpoints bound the replay penalty (fewer
kernels re-executed) at the cost of extra device→host write-backs during
normal operation.
"""

from repro.core import RuntimeConfig
from repro.core.fault import FailureInjector, HotplugEvent
from repro.experiments.report import format_table
from repro.sim import Environment
from repro.simcuda import TESLA_C1060, TESLA_C2050
from repro.workloads import make_job, workload


def run(checkpoint_threshold, fail_at=40.0, n_jobs=4):
    env = Environment()
    from repro.cluster.node import ComputeNode

    node = ComputeNode(
        env,
        "bench",
        [TESLA_C2050, TESLA_C1060],
        runtime_config=RuntimeConfig(
            vgpus_per_device=2,
            checkpoint_kernel_seconds=checkpoint_threshold,
        ),
    )
    runtime = node.runtime
    env.process(node.start())
    env.run(until=5.0)

    finish = []
    spec = workload("MM-S").with_cpu_fraction(0.5)

    def run_job(i):
        job = make_job(spec, name=f"mm{i}")
        yield from job.execute(node, submitted_at=env.now)
        finish.append(env.now)

    t0 = env.now
    for i in range(n_jobs):
        env.process(run_job(i))
    FailureInjector(
        runtime, [HotplugEvent(at_seconds=fail_at, action="fail", device_index=0)]
    ).start()
    env.run()
    return {
        "total": max(finish) - t0,
        "completed": len(finish),
        "replayed": runtime.stats.replayed_kernels,
        "checkpoints": runtime.stats.checkpoints,
        "recovered": runtime.stats.failures_recovered,
    }


def test_ablation_checkpoint_bounds_replay(once):
    # MM-S kernels run 0.2 s each: a 0.1 s threshold checkpoints after
    # every kernel; None never checkpoints automatically.
    with_ckpt, without_ckpt = once(lambda: (run(0.1), run(None)))

    print(
        "\n== Ablation: automatic checkpoint after long kernels ==\n"
        + format_table(
            ["config", "total (s)", "completed", "recovered", "replayed kernels",
             "checkpoints"],
            [
                [
                    "checkpoint ON",
                    f"{with_ckpt['total']:.1f}",
                    str(with_ckpt["completed"]),
                    str(with_ckpt["recovered"]),
                    str(with_ckpt["replayed"]),
                    str(with_ckpt["checkpoints"]),
                ],
                [
                    "checkpoint OFF",
                    f"{without_ckpt['total']:.1f}",
                    str(without_ckpt["completed"]),
                    str(without_ckpt["recovered"]),
                    str(without_ckpt["replayed"]),
                    str(without_ckpt["checkpoints"]),
                ],
            ],
        )
    )

    # Every job survives the failure either way.
    assert with_ckpt["completed"] == without_ckpt["completed"] == 4
    assert with_ckpt["recovered"] >= 1
    assert without_ckpt["recovered"] >= 1
    # Checkpointing happened and bounded the replay to (near) zero.
    assert with_ckpt["checkpoints"] > 0
    assert with_ckpt["replayed"] <= 1
    # Without checkpoints, recovery replays the journaled kernels.
    assert without_ckpt["replayed"] > with_ckpt["replayed"]
