"""Figure 9: load balancing through dynamic binding on an unbalanced node
(two Tesla C2050s + one Quadro 2000), MM-S jobs.

Paper claims reproduced here:
- migrating jobs from the slow to the fast GPUs improves the small-batch
  (12-job) case substantially despite the migration overhead;
- migration counts are small (≈4 — the jobs parked on the Quadro);
- with larger batches the fast GPUs serve pending jobs instead, so the
  benefit (and migration count) shrinks.
"""

from repro.experiments import figures
from repro.experiments.report import format_figure


def test_fig9_load_balancing(once):
    result = once(figures.fig9_load_balancing, seed=0)
    print("\n" + format_figure(result))

    static = result.series["no load balancing"]
    dynamic = result.series["load balancing through dynamic binding"]
    migrations = result.annotations["migrations"]

    # x layout: [12,24,36] × cpu=0 then [12,24,36] × cpu=1
    for base in (0, 3):
        i12, i24, i36 = base, base + 1, base + 2
        # 12 jobs: everything binds at once, 4 land on the Quadro; when
        # the C2050s drain, those jobs migrate → clear improvement.
        assert dynamic[i12] < static[i12] * 0.9
        # Migration count stays small (the Quadro's vGPU population).
        assert 1 <= migrations[i12] <= 6
        # Larger batches: never worse than ~5% (migration is guarded by
        # the empty-queue condition).
        assert dynamic[i24] <= static[i24] * 1.05
        assert dynamic[i36] <= static[i36] * 1.05

    # Load balancing never increases the makespan beyond noise anywhere.
    assert all(d <= s * 1.05 for d, s in zip(dynamic, static))
