"""Figure 8: mixing GPU-intensive (BS-L) and CPU-phase-heavy (MM-L) jobs.

36 jobs at BS-L/MM-L ratios from 100/0 to 0/100 on the 3-GPU node.

Paper claims reproduced here:
- at 100/0 (all BS-L, no memory conflicts) zero swaps occur and sharing
  brings little or no benefit over serialized execution;
- the sharing gain grows as MM-L becomes dominant;
- swap counts grow along the same axis.
"""

from repro.experiments import figures
from repro.experiments.report import format_figure


def test_fig8_mix(once):
    result = once(figures.fig8_mix, seed=0)
    print("\n" + format_figure(result))

    serialized = result.series["serialized execution (1 vGPU)"]
    sharing = result.series["GPU sharing (4 vGPUs)"]
    swaps = result.annotations["swaps (4 vGPUs)"]

    # 100/0: GPU-intensive BS-L only — no memory conflicts, no swaps.
    assert swaps[0] == 0
    # Sharing brings almost nothing for pure BS-L (within 5%).
    gain_bs_only = (serialized[0] - sharing[0]) / serialized[0]
    assert abs(gain_bs_only) < 0.08

    # Gains grow monotonically as MM-L dominates.
    gains = [
        (s - g) / s for s, g in zip(serialized, sharing)
    ]
    assert all(b >= a - 0.02 for a, b in zip(gains, gains[1:])), gains
    # 0/100 reaches the Figure 7 regime: a large win.
    assert gains[-1] > 0.35

    # Swap counts grow with the MM-L share.
    assert all(b >= a for a, b in zip(swaps, swaps[1:])), swaps
