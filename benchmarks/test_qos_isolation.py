"""Multi-tenant QoS isolation: a memory-hog tenant vs a light tenant.

One vGPU on a ~2 GiB device.  The *heavy* tenant runs a single job with
a 1.2 GiB working set and long kernels; the *light* tenant runs three
short small-footprint jobs.  Three configurations:

``solo``
    The light tenant alone — its best-case turnaround.
``qos off``
    Both tenants, stock runtime: the heavy job binds first and runs to
    completion, so every light job waits out its entire runtime.
``qos on``
    Both tenants with the QoS subsystem engaged: a device-memory quota
    on the heavy tenant, weighted-fair scheduling (light weight 4) and
    a 0.25 s vGPU quantum preempting at call boundaries.

Writes ``BENCH_qos.json``.  The tentpole claim: with QoS on, the light
tenant's mean turnaround co-running with the hog stays within 2x of its
solo run, while with QoS off it degrades unboundedly (tracks the heavy
job's full runtime instead).
"""

import json

from repro.cluster.jobs import Job
from repro.core import RuntimeConfig
from repro.core.frontend import Frontend
from repro.experiments.report import format_table
from repro.experiments.harness import run_node_batch
from repro.qos import Tenant
from repro.simcuda import GPUSpec
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

MIB = 1024**2

BENCH_GPU = GPUSpec(
    name="BenchGPU",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    memory_bytes=2048 * MIB,
)

HEAVY_MIB = 1200
HEAVY_ROUNDS = 20
HEAVY_KERNEL_S = 0.5
LIGHT_JOBS = 3
LIGHT_MIB = 64
LIGHT_KERNELS = 4
LIGHT_KERNEL_S = 0.05
#: Light jobs arrive once the hog is mid-kernel-train (its 1.2 GiB h2d
#: alone takes ~1.5 s of PCIe time).  The same stagger applies in every
#: configuration, so turnarounds compare.
LIGHT_DELAY_S = 2.0
QUANTUM_S = 0.25
HEAVY_QUOTA_MIB = 768
LIGHT_WEIGHT = 4.0

TENANT_CONTRACTS = {
    "heavy": dict(weight=1.0, device_quota_bytes=HEAVY_QUOTA_MIB * MIB),
    "light": dict(weight=LIGHT_WEIGHT),
}


def _ensure_tenant(node, name):
    runtime = node.runtime
    if runtime is not None and name not in runtime.qos:
        runtime.qos.register(Tenant(name, **TENANT_CONTRACTS[name]))


def make_heavy(name="hog"):
    def body(node):
        _ensure_tenant(node, "heavy")
        fe = Frontend(node.env, node.runtime.listener, name=name, tenant="heavy")
        yield from fe.open()
        k = KernelDescriptor(
            name="crunch", flops=HEAVY_KERNEL_S * BENCH_GPU.effective_gflops * 1e9
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        buf = yield from fe.cuda_malloc(HEAVY_MIB * MIB)
        yield from fe.cuda_memcpy_h2d(buf, HEAVY_MIB * MIB)
        # Back-to-back launches: the hog never enters a CPU phase, so
        # nothing short of quantum preemption takes the vGPU from it.
        for _ in range(HEAVY_ROUNDS):
            yield from fe.launch_kernel(k, [buf])
        yield from fe.cuda_memcpy_d2h(buf, HEAVY_MIB * MIB)
        yield from fe.cuda_free(buf)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="HEAVY")


def make_light(name):
    def body(node):
        yield from node.cpu_phase(LIGHT_DELAY_S)
        _ensure_tenant(node, "light")
        fe = Frontend(node.env, node.runtime.listener, name=name, tenant="light")
        yield from fe.open()
        k = KernelDescriptor(
            name="ping", flops=LIGHT_KERNEL_S * BENCH_GPU.effective_gflops * 1e9
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        buf = yield from fe.cuda_malloc(LIGHT_MIB * MIB)
        yield from fe.cuda_memcpy_h2d(buf, LIGHT_MIB * MIB)
        for _ in range(LIGHT_KERNELS):
            yield from fe.launch_kernel(k, [buf])
        yield from fe.cuda_memcpy_d2h(buf, LIGHT_MIB * MIB)
        yield from fe.cuda_free(buf)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="LIGHT")


def _config(qos):
    kwargs = dict(vgpus_per_device=1)
    if qos:
        kwargs.update(
            qos_enabled=True,
            policy="wfq",
            vgpu_quantum_s=QUANTUM_S,
            eviction_policy="quota_aware",
        )
    return RuntimeConfig(**kwargs)


def _light_jobs():
    return [make_light(f"light{i}") for i in range(LIGHT_JOBS)]


def run_solo():
    return run_node_batch(_light_jobs(), [BENCH_GPU], _config(qos=False))


def run_corun(qos):
    jobs = [make_heavy()] + _light_jobs()
    return run_node_batch(jobs, [BENCH_GPU], _config(qos=qos))


def _light_mean(result):
    return result.avg_by_tag()["LIGHT"]


def test_qos_bounds_light_tenant_slowdown(once):
    def experiment():
        return {
            "solo": run_solo(),
            "qos_off": run_corun(qos=False),
            "qos_on": run_corun(qos=True),
        }

    results = once(experiment)
    for name, result in results.items():
        assert result.errors == 0, f"{name}: {result.errors} job errors"

    solo = _light_mean(results["solo"])
    off = _light_mean(results["qos_off"])
    on = _light_mean(results["qos_on"])

    print(
        f"\n== QoS isolation: {LIGHT_JOBS} light jobs vs a "
        f"{HEAVY_MIB} MiB hog on one vGPU ==\n"
        + format_table(
            ["config", "light mean (s)", "slowdown vs solo", "preemptions",
             "quota evictions"],
            [
                [
                    name,
                    f"{_light_mean(r):.2f}",
                    f"{_light_mean(r) / solo:.1f}x",
                    str(r.stats.get("preemptions", 0)),
                    str(r.stats.get("quota_evictions", 0)),
                ]
                for name, r in results.items()
            ],
        )
    )

    # The isolation claim: QoS keeps the light tenant within 2x of its
    # solo turnaround despite the co-running hog...
    assert on <= 2.0 * solo, f"qos_on light mean {on:.2f}s > 2x solo {solo:.2f}s"
    # ...while the stock runtime lets the hog starve it unboundedly.
    assert off > 2.0 * solo
    assert on < off
    # The mechanisms actually engaged.
    assert results["qos_on"].stats["preemptions"] >= 1
    assert results["qos_off"].stats["preemptions"] == 0

    with open("BENCH_qos.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "heavy_mib": HEAVY_MIB,
                    "heavy_rounds": HEAVY_ROUNDS,
                    "heavy_kernel_s": HEAVY_KERNEL_S,
                    "light_jobs": LIGHT_JOBS,
                    "light_mib": LIGHT_MIB,
                    "light_kernels": LIGHT_KERNELS,
                    "light_kernel_s": LIGHT_KERNEL_S,
                    "quantum_s": QUANTUM_S,
                    "heavy_quota_mib": HEAVY_QUOTA_MIB,
                    "light_weight": LIGHT_WEIGHT,
                    "gpu_memory_mib": BENCH_GPU.memory_bytes // MIB,
                },
                "light_mean_turnaround_s": {
                    "solo": solo, "qos_off": off, "qos_on": on,
                },
                "light_slowdown_vs_solo": {
                    "qos_off": off / solo, "qos_on": on / solo,
                },
                "heavy_makespan_s": {
                    name: results[name].avg_by_tag().get("HEAVY")
                    for name in ("qos_off", "qos_on")
                },
                "preemptions": {
                    name: results[name].stats.get("preemptions", 0)
                    for name in ("qos_off", "qos_on")
                },
            },
            fh,
            indent=2,
        )
        fh.write("\n")
