"""GPU utilization under serialized vs shared execution.

The paper's premise (§1): with one application per GPU, the device idles
through every CPU phase; time-sharing fills those holes.  This bench
measures execution-engine busy fractions directly.
"""

from repro.core import RuntimeConfig
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.simcuda import TESLA_C2050
from repro.workloads import make_job, workload


def run(vgpus: int, n_jobs: int = 8, cpu_fraction: float = 1.0):
    spec = workload("MM-L").with_cpu_fraction(cpu_fraction)
    jobs = [make_job(spec, name=f"mm{i}") for i in range(n_jobs)]
    return run_node_batch(
        jobs, [TESLA_C2050], RuntimeConfig(vgpus_per_device=vgpus)
    )


def test_sharing_raises_gpu_utilization(once):
    serialized, shared = once(lambda: (run(1), run(4)))

    print(
        "\n== GPU utilization: 8 MM-L jobs (CPU fraction 1), one C2050 ==\n"
        + format_table(
            ["config", "total (s)", "GPU busy fraction"],
            [
                ["serialized (1 vGPU)", f"{serialized.total_time:.1f}",
                 f"{serialized.mean_gpu_utilization:.0%}"],
                ["shared (4 vGPUs)", f"{shared.total_time:.1f}",
                 f"{shared.mean_gpu_utilization:.0%}"],
            ],
        )
    )

    assert serialized.errors == shared.errors == 0
    # Serialized: the GPU idles through each job's CPU phases — busy
    # roughly gpu/(gpu+cpu) = 50%.
    assert serialized.mean_gpu_utilization < 0.65
    # Shared: CPU phases overlap other tenants' kernels.
    assert shared.mean_gpu_utilization > 0.85
    # Which is exactly why sharing wins on wall-clock.
    assert shared.total_time < serialized.total_time * 0.75
    # Same GPU work either way: busy seconds ≈ equal, so utilization is
    # the whole story.
    assert shared.mean_gpu_utilization > serialized.mean_gpu_utilization
