"""Ablation: inter-node offload aggressiveness (§4.7).

Sweeps the load margin above which a saturated node redirects incoming
connections to its peer.  A small margin balances eagerly; a huge margin
effectively disables offloading.
"""

from repro.cluster.torque import TorqueMode
from repro.core import RuntimeConfig
from repro.experiments.harness import run_cluster_batch
from repro.experiments.figures import CLUSTER_NODES
from repro.experiments.report import format_table
from repro.sim import RngStreams
from repro.workloads import draw_short_jobs


def run(margin: float, n_jobs: int = 32, seed: int = 3):
    rng = RngStreams(seed).stream("jobs")
    jobs = draw_short_jobs(rng, n_jobs)
    return run_cluster_batch(
        jobs,
        CLUSTER_NODES,
        RuntimeConfig(
            vgpus_per_device=4, offload_enabled=True, offload_load_margin=margin
        ),
        mode=TorqueMode.OBLIVIOUS,
    )


def test_ablation_offload_threshold(once):
    margins = [0.25, 0.5, 1.0, 2.0, 1e9]
    results = once(lambda: {m: run(m) for m in margins})

    print(
        "\n== Ablation: offload load margin (32 short jobs, 3+1 GPU cluster) ==\n"
        + format_table(
            ["margin", "total (s)", "avg (s)", "offloaded"],
            [
                [
                    f"{m:g}",
                    f"{r.total_time:.1f}",
                    f"{r.avg_time:.1f}",
                    str(r.offloads),
                ]
                for m, r in results.items()
            ],
        )
    )

    for r in results.values():
        assert r.errors == 0
    # An infinite margin disables offloading entirely.
    assert results[1e9].offloads == 0
    # Eager margins offload a meaningful share of the small node's jobs.
    assert results[0.25].offloads >= 4
    # Offload volume is monotone non-increasing in the margin.
    counts = [results[m].offloads for m in margins]
    assert all(b <= a for a, b in zip(counts, counts[1:])), counts
    # Any enabled offloading beats none on this imbalanced cluster.
    assert results[0.5].total_time < results[1e9].total_time
