"""Ablation: intra-application swap (§4.5).

With intra-application swap, an application whose *total* footprint
exceeds the device runs as long as each kernel's working set fits — the
paper's worked example.  Without it, the same application cannot run at
all on a single-tenant device.
"""

import pytest

from repro.core import RuntimeConfig
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.simcuda import GPUSpec
from repro.workloads import make_job
from repro.workloads.base import WorkloadSpec

MIB = 1024**2

SMALL_GPU = GPUSpec(
    name="small", sm_count=14, cores_per_sm=32, clock_ghz=1.15,
    memory_bytes=1024 * MIB,
)

#: Total footprint 1.5 GiB on a 1 GiB card; each kernel touches one
#: 300 MiB buffer at a time (modelled as 5 sequential phases).
OVERSIZED = WorkloadSpec(
    name="oversized",
    tag="OVR",
    description="phase-wise pipeline larger than device memory",
    kernel_calls=5,
    gpu_seconds_c2050=2.0,
    buffer_bytes=(300 * MIB, 300 * MIB, 300 * MIB, 300 * MIB, 300 * MIB),
)


class PhaseWiseJobSpec(WorkloadSpec):
    pass


def make_phase_job(name):
    """The generic Application launches on all buffers at once, which
    would legitimately exceed the device; build the phase-wise variant
    (one buffer per kernel) by hand."""
    from repro.cluster.jobs import Job
    from repro.core.frontend import Frontend
    from repro.simcuda.fatbin import FatBinary
    from repro.simcuda.kernels import KernelDescriptor

    def body(node):
        fe = Frontend(node.env, node.runtime.listener, name=name)
        yield from fe.open()
        k = KernelDescriptor(name="phase", flops=OVERSIZED.flops_per_kernel)
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        ptrs = []
        for size in OVERSIZED.buffer_bytes:
            p = yield from fe.cuda_malloc(size)
            yield from fe.cuda_memcpy_h2d(p, size)
            ptrs.append(p)
        for p in ptrs:  # one buffer per kernel: working set fits
            yield from fe.launch_kernel(k, [p])
        for p in ptrs:
            yield from fe.cuda_memcpy_d2h(p, OVERSIZED.buffer_bytes[0])
            yield from fe.cuda_free(p)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="OVR")


def run(intra: bool):
    return run_node_batch(
        [make_phase_job("ovr0")],
        [SMALL_GPU],
        RuntimeConfig(
            vgpus_per_device=1,
            enable_intra_swap=intra,
            enable_inter_swap=False,
            swap_retry_backoff_s=1e-3,
            max_failed_rebind_attempts=0,
        ),
    )


def test_ablation_intra_swap(once):
    with_swap, without_swap = once(lambda: (run(True), run(False)))

    print(
        "\n== Ablation: intra-application swap (1.5 GiB app, 1 GiB GPU) ==\n"
        + format_table(
            ["config", "completed", "total (s)", "intra swaps", "retries", "swap MiB out"],
            [
                [
                    "intra-swap ON",
                    str(with_swap.errors == 0),
                    f"{with_swap.total_time:.1f}",
                    str(with_swap.stats["swaps_intra"]),
                    str(with_swap.stats["swap_retries"]),
                    f"{with_swap.stats['swap_bytes_out'] / MIB:.0f}",
                ],
                [
                    "intra-swap OFF",
                    str(without_swap.errors == 0),
                    f"{without_swap.total_time:.1f}",
                    str(without_swap.stats["swaps_intra"]),
                    str(without_swap.stats["swap_retries"]),
                    f"{without_swap.stats['swap_bytes_out'] / MIB:.0f}",
                ],
            ],
        )
    )

    # Both complete — without intra-swap the application falls back to
    # whole-context unbind-and-retry (a coarse self-swap).
    assert with_swap.errors == 0
    assert without_swap.errors == 0
    # With intra-application swap: targeted single-entry evictions, no
    # retry round-trips.
    assert with_swap.stats["swaps_intra"] >= 1
    assert with_swap.stats["swap_retries"] == 0
    # Without it: the launch path needed unbind-retry cycles.
    assert without_swap.stats["swaps_intra"] == 0
    assert without_swap.stats["swap_retries"] >= 1
    # Fine-grained eviction never moves more data or takes longer.
    assert with_swap.stats["swap_bytes_out"] <= without_swap.stats["swap_bytes_out"]
    assert with_swap.total_time <= without_swap.total_time * 1.05
