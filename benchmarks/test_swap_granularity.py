"""Demand-paged chunked swapping vs the paper's whole-context eviction.

Three tenants share one ~2 GiB device, each holding a 768 MiB input
buffer of which only 192 MiB contains data (host-written prefix) plus a
256 MiB output buffer — 3 GiB of working sets on 1.8 GiB of usable
memory, so every launch evicts somebody.  Three configurations:

``context``
    The paper's inter-application swap: one victim's entire device
    state written back, victim unbound.
``partial``
    Device-wide eviction loop freeing only the bytes the launch needs
    (LRU-ordered), victims stay bound.  Whole-entry transfers.
``chunked+partial``
    Partial eviction plus 64 MiB demand-paging chunks: the input buffer
    stages/faults only its 192 MiB of valid chunks instead of 768 MiB.

Writes ``BENCH_swap.json``.  The tentpole claim: chunked+partial beats
whole-context eviction on both swap bytes moved *and* makespan.
"""

import json

from repro.cluster.jobs import Job
from repro.core import RuntimeConfig
from repro.core.frontend import Frontend
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.simcuda import GPUSpec
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

MIB = 1024**2

BENCH_GPU = GPUSpec(
    name="BenchGPU",
    sm_count=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    memory_bytes=2048 * MIB,
)
# 2048 MiB - 3 vGPU reservations of 64 MiB = 1856 MiB usable.

N_TENANTS = 3
ROUNDS = 6
BIG_MIB = 768          # sparse input buffer…
WRITTEN_MIB = 192      # …of which only this prefix holds data
OUT_MIB = 256          # dense output buffer (kernel-written)
CHUNK_MIB = 64
KERNEL_SECONDS = 0.2
CPU_PHASE_S = 0.4


def make_tenant(name):
    def body(node):
        fe = Frontend(node.env, node.runtime.listener, name=name)
        yield from fe.open()
        k = KernelDescriptor(
            name="round", flops=KERNEL_SECONDS * BENCH_GPU.effective_gflops * 1e9
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        big = yield from fe.cuda_malloc(BIG_MIB * MIB)
        out = yield from fe.cuda_malloc(OUT_MIB * MIB)
        yield from fe.cuda_memcpy_h2d(big, WRITTEN_MIB * MIB)
        for _ in range(ROUNDS):
            yield from fe.launch_kernel(k, [big, out], read_only=[big])
            yield from node.cpu_phase(CPU_PHASE_S)
        yield from fe.cuda_memcpy_d2h(out, OUT_MIB * MIB)
        yield from fe.cuda_free(big)
        yield from fe.cuda_free(out)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="SWP")


def run(eviction_mode, chunk_mib=0):
    config = RuntimeConfig(
        vgpus_per_device=N_TENANTS,
        eviction_mode=eviction_mode,
        swap_chunk_bytes=chunk_mib * MIB,
    )
    jobs = [make_tenant(f"swp{i}") for i in range(N_TENANTS)]
    return run_node_batch(jobs, [BENCH_GPU], config)


def _row(result):
    swap_bytes = result.stats["swap_bytes_in"] + result.stats["swap_bytes_out"]
    return {
        "makespan_s": result.total_time,
        "swap_bytes": swap_bytes,
        "swap_bytes_in": result.stats["swap_bytes_in"],
        "swap_bytes_out": result.stats["swap_bytes_out"],
        "swap_retries": result.stats["swap_retries"],
        "swaps_inter": result.stats["swaps_inter"],
        "evictions_partial": result.stats["evictions_partial"],
        "eviction_bytes_freed": result.stats["eviction_bytes_freed"],
    }


def test_chunked_partial_beats_whole_context(once):
    def experiment():
        return {
            "context": run("context"),
            "partial": run("partial"),
            "chunked+partial": run("partial", chunk_mib=CHUNK_MIB),
        }

    results = once(experiment)
    rows = {name: _row(r) for name, r in results.items()}

    print(
        f"\n== Swap granularity: {N_TENANTS} overcommitted tenants, "
        f"{BIG_MIB}+{OUT_MIB} MiB each on {BENCH_GPU.memory_bytes // MIB} MiB ==\n"
        + format_table(
            ["eviction", "makespan (s)", "swap (MiB)", "retries", "inter-swaps"],
            [
                [
                    name,
                    f"{row['makespan_s']:.1f}",
                    str(row["swap_bytes"] // MIB),
                    str(row["swap_retries"]),
                    str(row["swaps_inter"]),
                ]
                for name, row in rows.items()
            ],
        )
    )

    for name, result in results.items():
        assert result.errors == 0, f"{name}: {result.errors} job errors"
    baseline = rows["context"]
    best = rows["chunked+partial"]
    # The tentpole claim: byte-proportional, demand-paged eviction wins
    # on both traffic and completion time.
    assert best["swap_bytes"] < baseline["swap_bytes"]
    assert best["makespan_s"] < baseline["makespan_s"]
    # Partial eviction alone must not regress traffic either.
    assert rows["partial"]["swap_bytes"] <= baseline["swap_bytes"]

    with open("BENCH_swap.json", "w") as fh:
        json.dump(
            {
                "workload": {
                    "tenants": N_TENANTS,
                    "rounds": ROUNDS,
                    "big_buffer_mib": BIG_MIB,
                    "written_prefix_mib": WRITTEN_MIB,
                    "out_buffer_mib": OUT_MIB,
                    "chunk_mib": CHUNK_MIB,
                    "kernel_seconds": KERNEL_SECONDS,
                    "cpu_phase_seconds": CPU_PHASE_S,
                    "gpu_memory_mib": BENCH_GPU.memory_bytes // MIB,
                },
                "results": rows,
                "swap_bytes_saved_vs_context": (
                    baseline["swap_bytes"] - best["swap_bytes"]
                ),
                "speedup_vs_context": (
                    baseline["makespan_s"] / best["makespan_s"]
                ),
            },
            fh,
            indent=2,
        )
        fh.write("\n")
