"""Figure 5: framework overhead vs the bare CUDA runtime (1 GPU).

Paper claims reproduced here:
- the bare CUDA runtime is (approximately) a lower bound;
- the runtime's total time approaches that bound as vGPUs increase;
- worst-case overhead (1 vGPU) is on the order of 10%.
"""

from repro.experiments import figures
from repro.experiments.report import format_figure


def test_fig5_overhead(once):
    result = once(figures.fig5_overhead, seed=0, repeats=2)
    print("\n" + format_figure(result))

    bare = result.series["CUDA Runtime"]
    one = result.series["1 vGPU"]
    eight = result.series["8 vGPUs"]

    for xi in range(len(result.x_values)):
        # Our runtime never beats the bare runtime by more than the
        # context-reuse saving, and is never more than ~15% slower.
        overhead_1 = (one[xi] - bare[xi]) / bare[xi]
        overhead_8 = (eight[xi] - bare[xi]) / bare[xi]
        assert overhead_1 < 0.15, f"1 vGPU overhead {overhead_1:.1%} at x={xi}"
        assert abs(overhead_8) < 0.05, f"8 vGPU overhead {overhead_8:.1%}"
        # More sharing amortizes the overhead.
        assert eight[xi] <= one[xi] * 1.01

    # The worst case across the sweep is the paper's ~10% figure.
    worst = max((o - b) / b for o, b in zip(one, bare))
    assert 0.0 < worst < 0.15
