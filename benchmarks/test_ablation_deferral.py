"""Ablation: data-transfer deferral (§4.5).

Deferring host→device transfers until the next launch (the paper's
experimental configuration) coalesces repeated copies into one bulk
transfer; issuing them immediately (when bound) buys potential
computation/communication overlap at the cost of extra PCIe traffic.

The probe application updates its device buffer several times from the
host between kernels — the pattern where deferral's coalescing pays.
"""

from repro.cluster.jobs import Job
from repro.core import RuntimeConfig
from repro.core.frontend import Frontend
from repro.experiments.harness import run_node_batch
from repro.experiments.report import format_table
from repro.simcuda import TESLA_C2050
from repro.simcuda.fatbin import FatBinary
from repro.simcuda.kernels import KernelDescriptor

MIB = 1024**2
UPDATES_PER_ROUND = 4
ROUNDS = 16


def make_update_heavy_job(name):
    """Each round: 4 host-side updates of the buffer, then one kernel."""

    def body(node):
        fe = Frontend(node.env, node.runtime.listener, name=name)
        yield from fe.open()
        k = KernelDescriptor(
            name="round", flops=0.2 * TESLA_C2050.effective_gflops * 1e9
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, k)
        buf = yield from fe.cuda_malloc(128 * MIB)
        for _ in range(ROUNDS):
            for _ in range(UPDATES_PER_ROUND):
                yield from fe.cuda_memcpy_h2d(buf, 128 * MIB)
            yield from fe.launch_kernel(k, [buf])
        yield from fe.cuda_memcpy_d2h(buf, 128 * MIB)
        yield from fe.cuda_free(buf)
        yield from fe.cuda_thread_exit()

    return Job(name, body, tag="UPD")


def run(defer: bool, n_jobs: int = 4):
    jobs = [make_update_heavy_job(f"upd{i}") for i in range(n_jobs)]
    return run_node_batch(
        jobs,
        [TESLA_C2050],
        RuntimeConfig(vgpus_per_device=4, defer_transfers=defer),
    )


def test_ablation_transfer_deferral(once):
    deferred, eager = once(lambda: (run(True), run(False)))

    print(
        "\n== Ablation: transfer deferral (4 update-heavy jobs) ==\n"
        + format_table(
            ["config", "total (s)", "H2D calls", "device transfers"],
            [
                [
                    "deferred (paper)",
                    f"{deferred.total_time:.1f}",
                    str(deferred.stats["h2d_requests"]),
                    str(deferred.stats["h2d_device_transfers"]),
                ],
                [
                    "eager (overlap)",
                    f"{eager.total_time:.1f}",
                    str(eager.stats["h2d_requests"]),
                    str(eager.stats["h2d_device_transfers"]),
                ],
            ],
        )
    )

    assert deferred.errors == eager.errors == 0
    # Deferral coalesces the 4 updates per round into one bulk transfer.
    assert (
        deferred.stats["h2d_device_transfers"]
        <= deferred.stats["h2d_requests"] / (UPDATES_PER_ROUND * 0.8)
    )
    # Eager mode pushes (almost) every update across PCIe once bound.
    assert (
        eager.stats["h2d_device_transfers"]
        > deferred.stats["h2d_device_transfers"] * 2
    )
    # Coalescing is never slower for this pattern.
    assert deferred.total_time <= eager.total_time * 1.02
