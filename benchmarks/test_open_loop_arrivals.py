"""Open-loop multi-tenancy: Poisson job arrivals on the 3-GPU node.

The paper evaluates closed batches; a deployed multi-tenant service sees
a stream of arrivals.  At an offered load near the serialized capacity,
sharing cuts the mean response time sharply (queueing-theory territory:
utilization ↓ at the bottleneck ⇒ waiting ↓ superlinearly).
"""

from repro.core import RuntimeConfig
from repro.experiments.figures import NODE_3GPU
from repro.experiments.harness import run_arrival_process
from repro.experiments.report import format_table
from repro.sim import RngStreams
from repro.workloads.catalog import SHORT_RUNNING


def run(vgpus: int, rate: float, seed: int = 9, horizon: float = 150.0):
    rng = RngStreams(seed).stream("arrivals")
    return run_arrival_process(
        SHORT_RUNNING,
        NODE_3GPU,
        RuntimeConfig(vgpus_per_device=vgpus),
        rng,
        arrival_rate_per_s=rate,
        horizon_s=horizon,
    )


def test_open_loop_sharing_cuts_response_time(once):
    # Serialized capacity ≈ 0.76 jobs/s (each job holds its vGPU through
    # CPU phases and copies); sharing overlaps those, pushing capacity to
    # ≈ 0.85.  Offering 0.75 jobs/s puts serialized execution near
    # saturation while sharing still has headroom.
    rate = 0.75
    serialized, shared = once(lambda: (run(1, rate), run(4, rate)))

    print(
        "\n== Open-loop arrivals: Poisson 0.75 jobs/s, 150 s, 3 GPUs ==\n"
        + format_table(
            ["config", "jobs served", "mean response (s)", "GPU util"],
            [
                [
                    "serialized (1 vGPU)",
                    str(len(serialized.job_times)),
                    f"{serialized.avg_time:.1f}",
                    f"{serialized.mean_gpu_utilization:.0%}",
                ],
                [
                    "shared (4 vGPUs)",
                    str(len(shared.job_times)),
                    f"{shared.avg_time:.1f}",
                    f"{shared.mean_gpu_utilization:.0%}",
                ],
            ],
        )
    )

    assert serialized.errors == shared.errors == 0
    # Same arrival sequence (same seed) → same jobs served.
    assert len(serialized.job_times) == len(shared.job_times)
    assert len(serialized.job_times) > 80
    # Sharing reduces queueing: mean response drops by 20%+.
    assert shared.avg_time < serialized.avg_time * 0.8
    # The honest trade-off: time-sharing behaves like processor sharing —
    # means improve, but individual jobs stretch, so the tail may grow.
    p95 = lambda xs: sorted(xs)[int(0.95 * (len(xs) - 1))]
    assert p95(shared.job_times) < 3 * p95(serialized.job_times)
    # Sharing keeps the GPUs busier.
    assert shared.mean_gpu_utilization > serialized.mean_gpu_utilization
