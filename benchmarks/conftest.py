"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures on the
simulated testbed, prints the same rows/series the paper reports, and
asserts the *shape* claims (who wins, by roughly what factor, where the
crossovers fall).  Absolute seconds are simulated and are not expected
to match the paper's hardware.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
figure tables inline.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark.

    The interesting output is the figure data (deterministic), not the
    wall-clock of the simulator, so a single round suffices.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
