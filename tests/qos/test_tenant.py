"""Tenant identity and the per-node registry (repro.qos.tenant)."""

import pytest

from repro.qos import Tenant, TenantRegistry


def test_tenant_validation():
    with pytest.raises(ValueError):
        Tenant("")
    with pytest.raises(ValueError):
        Tenant("t", weight=0)
    with pytest.raises(ValueError):
        Tenant("t", weight=-1.0)
    with pytest.raises(ValueError):
        Tenant("t", vgpu_share=0.0)
    with pytest.raises(ValueError):
        Tenant("t", vgpu_share=1.5)
    Tenant("t", vgpu_share=1.0)  # inclusive upper bound


def test_attach_detach_idempotent():
    t = Tenant("t")
    ctx = object()
    t.attach(ctx)
    t.attach(ctx)
    assert t.contexts == [ctx]
    t.detach(ctx)
    t.detach(ctx)
    assert t.contexts == []


def test_normalized_gpu_seconds_divides_by_weight():
    t = Tenant("t", weight=4.0)
    t.gpu_seconds_used = 8.0
    assert t.normalized_gpu_seconds() == 2.0
    assert Tenant("u").normalized_gpu_seconds() == 0.0


def test_registry_register_and_lookup():
    reg = TenantRegistry()
    t = reg.register(Tenant("gold", weight=2.0))
    assert reg.get("gold") is t
    assert "gold" in reg
    assert "silver" not in reg
    assert len(reg) == 1
    assert reg.tenants() == [t]
    with pytest.raises(ValueError):
        reg.register(Tenant("gold"))


def test_get_or_create_defaults_unknown_tenants():
    reg = TenantRegistry()
    t = reg.get_or_create("new")
    assert t.weight == 1.0
    assert t.device_quota_bytes is None
    assert reg.get_or_create("new") is t  # same object on repeat


def test_on_register_callback_fires_for_both_paths():
    reg = TenantRegistry()
    seen = []
    reg.on_register = seen.append
    a = reg.register(Tenant("a"))
    b = reg.get_or_create("b")
    reg.get_or_create("b")  # already registered: no second callback
    assert seen == [a, b]


def test_rollup_reports_contract_and_counters():
    reg = TenantRegistry()
    t = reg.register(
        Tenant("gold", weight=2.0, device_quota_bytes=100, deadline_class="interactive")
    )
    t.gpu_seconds_used = 1.5
    t.preemptions = 3
    roll = reg.rollup()
    assert roll["gold"]["weight"] == 2.0
    assert roll["gold"]["deadline_class"] == "interactive"
    assert roll["gold"]["device_quota_bytes"] == 100
    assert roll["gold"]["gpu_seconds"] == 1.5
    assert roll["gold"]["preemptions"] == 3
    assert roll["gold"]["contexts"] == 0
    assert roll["gold"]["device_bytes"] == 0  # no page table given
