"""Torture: preemptive time-slicing crossed with every memory mechanism.

The satellite bugfix this guards: a context unbound by quantum expiry
while the overlap engine still has asynchronous write-backs in flight
must drain them before its device memory is released — otherwise a
stale write-back lands in freed (possibly reallocated) device memory.
Chunked demand paging, partial eviction and a mid-run device failure
are layered on top so the drain holds under the full interaction.
"""

from repro.core import NodeRuntime, RuntimeConfig
from repro.core.fault import FailureInjector, HotplugEvent
from repro.qos import Tenant
from repro.sim import Environment, RngStreams
from repro.simcuda import CudaDriver, TESLA_C1060, TESLA_C2050

MIB = 1024**2


def test_preemption_with_overlap_chunked_swap_and_failure():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050, TESLA_C1060])
    runtime = NodeRuntime(
        env,
        driver,
        RuntimeConfig(
            vgpus_per_device=2,
            qos_enabled=True,
            policy="wfq",
            vgpu_quantum_s=0.25,
            overlap_transfers=True,
            prefetch_enabled=True,
            swap_chunk_bytes=16 * MIB,
            eviction_mode="partial",
            eviction_policy="quota_aware",
        ),
    )
    for name in ("alpha", "beta", "gamma"):
        runtime.qos.register(
            Tenant(name, weight=1.0 + (name == "alpha") * 3.0,
                   device_quota_bytes=768 * MIB)
        )
    env.process(runtime.start())
    rngs = RngStreams(7)
    results = []
    for i in range(9):
        env.process(
            _tenant_app(env, runtime, f"t{i}", ("alpha", "beta", "gamma")[i % 3],
                        rngs.spawn(f"t{i}").stream("x"), results)
        )
    FailureInjector(
        runtime, [HotplugEvent(at_seconds=3.0, action="fail", device_index=1)]
    ).start()
    env.run()

    assert len(results) == 9  # nobody lost, despite preemption + failure
    assert runtime.stats.preemptions >= 1  # slicing actually engaged
    # System quiesced: all swap returned, nothing still queued or bound.
    assert runtime.memory.swap.used_bytes == 0
    assert runtime.scheduler.waiting_count == 0
    assert all(v.idle or v.retired for v in runtime.scheduler.vgpus)
    # No write-back leaked past a preemption: the overlap engine's
    # pending-barrier map fully drained.
    assert not any(runtime.memory._pending_writebacks.values())
    # Healthy device holds only its vGPU context reservations.
    healthy = driver.devices[0]
    assert (
        healthy.allocator.used_bytes
        == 2 * healthy.spec.context_reservation_bytes
    )


def _tenant_app(env, runtime, name, tenant, rng, results):
    """mixed_app with a tenant on the handshake."""
    from repro.core import Frontend
    from repro.simcuda import FatBinary, KernelDescriptor

    def app():
        fe = Frontend(env, runtime.listener, name=name, tenant=tenant)
        yield from fe.open()
        kernel = KernelDescriptor(
            name=f"{name}-k",
            flops=float(rng.uniform(0.2, 0.5)) * TESLA_C2050.effective_gflops * 1e9,
        )
        fb = FatBinary()
        handle = yield from fe.register_fat_binary(fb)
        yield from fe.register_function(handle, kernel)
        sizes = [int(rng.integers(64, 400)) * MIB for _ in range(int(rng.integers(1, 4)))]
        ptrs = []
        for size in sizes:
            p = yield from fe.cuda_malloc(size)
            yield from fe.cuda_memcpy_h2d(p, size)
            ptrs.append(p)
        for _ in range(int(rng.integers(3, 6))):
            yield from fe.launch_kernel(kernel, ptrs)
            yield env.timeout(float(rng.uniform(0.02, 0.3)))
        for p, size in zip(ptrs, sizes):
            yield from fe.cuda_memcpy_d2h(p, size)
            yield from fe.cuda_free(p)
        yield from fe.cuda_thread_exit()
        results.append(name)

    return app()
