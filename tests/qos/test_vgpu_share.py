"""Per-tenant vGPU share enforcement at binding time (repro.qos)."""

from repro.core import RuntimeConfig
from repro.qos import Tenant

from tests.qos.conftest import Harness
from tests.qos.test_preemption import _App


def test_share_caps_concurrent_bindings_per_tenant():
    """A 0.5-share tenant on a 2-vGPU node holds at most one binding:
    its second app waits even while a vGPU idles, and an uncapped
    bystander can claim that idle vGPU at any time."""
    h = Harness(config=RuntimeConfig(qos_enabled=True, vgpus_per_device=2))
    tenant = h.runtime.qos.register(Tenant("capped", vgpu_share=0.5))
    a1 = _App(h, "a1", tenant="capped", kernels=4, kernel_s=0.4, cpu_s=0.0)
    a2 = _App(h, "a2", tenant="capped", kernels=4, kernel_s=0.4, cpu_s=0.0)
    b = _App(h, "b", kernels=2, kernel_s=0.2, cpu_s=0.0)

    held = {"max": 0}

    def probe():
        while tenant.contexts or h.env.now < 0.5:
            bound = sum(1 for c in h.scheduler.bound_contexts()
                        if getattr(c, "tenant", None) is tenant)
            held["max"] = max(held["max"], bound)
            yield h.env.timeout(0.05)

    for i, app in enumerate((a1, a2, b)):
        def staged(app=app, delay=0.01 * i):
            yield h.env.timeout(delay)
            yield from app.run()
        h.spawn(staged(), name=app.name)
    h.spawn(probe(), name="probe")
    h.run()
    assert a1.finished_at and a2.finished_at and b.finished_at
    # Never more than the share's one vGPU, though two were installed.
    assert held["max"] == 1
    # The bystander was not starved by the capped tenant's queue: it ran
    # on the share-protected idle vGPU and finished before the capped
    # tenant's serialized pair.
    assert b.finished_at < max(a1.finished_at, a2.finished_at)


def test_share_rounds_up_to_one_vgpu():
    """Tiny shares still allow one binding — a share can throttle, not
    strand, a tenant."""
    h = Harness(config=RuntimeConfig(qos_enabled=True, vgpus_per_device=2))
    h.runtime.qos.register(Tenant("tiny", vgpu_share=0.01))
    app = _App(h, "a", tenant="tiny", kernels=2)
    h.spawn(app.run())
    h.run()
    assert app.finished_at is not None


def test_share_ignored_when_qos_disabled():
    h = Harness(config=RuntimeConfig(vgpus_per_device=2))
    tenant = h.runtime.qos.register(Tenant("capped", vgpu_share=0.5))
    a1 = _App(h, "a1", tenant="capped", kernels=3, kernel_s=0.4, cpu_s=0.0)
    a2 = _App(h, "a2", tenant="capped", kernels=3, kernel_s=0.4, cpu_s=0.0)
    held = {"max": 0}

    def probe():
        while h.env.now < 1.0:
            bound = sum(1 for c in h.scheduler.bound_contexts()
                        if getattr(c, "tenant", None) is tenant)
            held["max"] = max(held["max"], bound)
            yield h.env.timeout(0.05)

    h.spawn(a1.run(), name="a1")
    h.spawn(a2.run(), name="a2")
    h.spawn(probe(), name="probe")
    h.run()
    assert held["max"] == 2  # both bound concurrently; the share is inert
