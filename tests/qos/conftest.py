"""Shared builders for multi-tenant QoS tests (repro.qos)."""

import pytest

from tests.core.conftest import Harness

MIB = 1024**2
GIB = 1024**3


@pytest.fixture
def harness():
    return Harness()


__all__ = ["Harness", "MIB", "GIB"]
