"""Admission control at the handshake (repro.qos.admission)."""

import pytest

from repro.core import Frontend, RuntimeConfig
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.qos import Tenant

from tests.qos.conftest import Harness, MIB


def _open_app(h, name, tenant=None, estimated_bytes=None, hold_s=1.0, results=None):
    """Open, idle for ``hold_s``, exit.  Records open/finish times."""

    def app():
        fe = Frontend(
            h.env, h.runtime.listener, name=name,
            tenant=tenant, estimated_bytes=estimated_bytes,
        )
        yield from fe.open()
        if results is not None:
            results[name] = {"opened": h.env.now}
        yield h.env.timeout(hold_s)
        yield from fe.cuda_thread_exit()
        if results is not None:
            results[name]["finished"] = h.env.now

    return h.spawn(app(), name=name)


def _open_expect_reject(h, name, tenant, errors, estimated_bytes=None):
    def app():
        fe = Frontend(
            h.env, h.runtime.listener, name=name,
            tenant=tenant, estimated_bytes=estimated_bytes,
        )
        try:
            yield from fe.open()
        except RuntimeApiError as exc:
            errors[name] = exc

    return h.spawn(app(), name=name)


def test_reject_mode_bounces_over_cap_connection():
    h = Harness(config=RuntimeConfig(qos_enabled=True, admission_mode="reject"))
    tenant = h.runtime.qos.register(Tenant("gold", max_concurrent_contexts=1))
    results, errors = {}, {}
    _open_app(h, "a1", tenant="gold", hold_s=2.0, results=results)

    def late():
        yield h.env.timeout(0.5)  # while a1 still holds its slot
        _open_expect_reject(h, "a2", "gold", errors)

    h.spawn(late())
    h.run()
    assert "finished" in results["a1"]
    assert errors["a2"].code is RuntimeErrorCode.ADMISSION_REJECTED
    assert h.stats.admission_rejects == 1
    assert tenant.admission_rejects == 1
    # The rejected context never joined the tenant's live list.
    assert tenant.contexts == []


def test_queue_mode_blocks_until_slot_frees():
    h = Harness(config=RuntimeConfig(qos_enabled=True, admission_mode="queue"))
    h.runtime.qos.register(Tenant("gold", max_concurrent_contexts=1))
    results = {}
    _open_app(h, "a1", tenant="gold", hold_s=2.0, results=results)

    def late():
        yield h.env.timeout(0.5)
        _open_app(h, "a2", tenant="gold", hold_s=0.1, results=results)

    h.spawn(late())
    h.run()
    # a2's handshake waited for a1's exit before completing.
    assert results["a2"]["opened"] >= results["a1"]["finished"]
    assert h.stats.admission_queued == 1
    assert h.stats.admission_rejects == 0


def test_node_wide_context_cap_spans_tenants():
    h = Harness(config=RuntimeConfig(
        qos_enabled=True, admission_mode="reject", admission_max_contexts=2,
    ))
    results, errors = {}, {}
    _open_app(h, "a1", tenant="t1", hold_s=2.0, results=results)
    _open_app(h, "a2", tenant="t2", hold_s=2.0, results=results)

    def late():
        yield h.env.timeout(0.5)
        _open_expect_reject(h, "a3", "t3", errors)

    h.spawn(late())
    h.run()
    assert errors["a3"].code is RuntimeErrorCode.ADMISSION_REJECTED


def test_footprint_budget_counts_estimated_bytes():
    h = Harness(config=RuntimeConfig(
        qos_enabled=True, admission_mode="reject",
        admission_max_footprint_bytes=100 * MIB,
    ))
    results, errors = {}, {}
    _open_app(h, "big", tenant="t", estimated_bytes=80 * MIB, hold_s=2.0,
              results=results)

    def late():
        yield h.env.timeout(0.5)
        # 80 + 30 > 100: over budget.
        _open_expect_reject(h, "too-big", "t", errors, estimated_bytes=30 * MIB)
        # Undeclared footprints count zero and are admitted.
        _open_app(h, "undeclared", tenant="t", hold_s=0.1, results=results)

    h.spawn(late())
    h.run()
    assert errors["too-big"].code is RuntimeErrorCode.ADMISSION_REJECTED
    assert "finished" in results["undeclared"]


def test_qos_disabled_ignores_caps():
    """Default config: tenants may be named but nothing is enforced."""
    h = Harness()  # qos_enabled=False
    h.runtime.qos.register(Tenant("gold", max_concurrent_contexts=1))
    results = {}
    _open_app(h, "a1", tenant="gold", hold_s=1.0, results=results)
    _open_app(h, "a2", tenant="gold", hold_s=1.0, results=results)
    h.run()
    # Both opened immediately, concurrently, with no queueing.
    assert results["a1"]["opened"] < 0.5
    assert results["a2"]["opened"] < 0.5
    assert h.stats.admission_rejects == 0
    assert h.stats.admission_queued == 0


def test_tenantless_connections_bypass_admission():
    h = Harness(config=RuntimeConfig(
        qos_enabled=True, admission_mode="reject", admission_max_contexts=1,
    ))
    results = {}
    _open_app(h, "a1", hold_s=1.0, results=results)
    _open_app(h, "a2", hold_s=1.0, results=results)
    h.run()
    assert "finished" in results["a1"] and "finished" in results["a2"]
    assert h.runtime.admission.admitted_count == 0


def test_admission_events_and_gauge(harness):
    h = Harness(config=RuntimeConfig(
        qos_enabled=True, admission_mode="queue", tracing=True,
    ))
    h.runtime.qos.register(Tenant("gold", max_concurrent_contexts=1))
    results = {}
    _open_app(h, "a1", tenant="gold", hold_s=1.0, results=results)

    def late():
        yield h.env.timeout(0.2)
        _open_app(h, "a2", tenant="gold", hold_s=0.1, results=results)

    h.spawn(late())
    h.run()
    from repro.obs import TenantAdmission

    events = h.runtime.obs.events_of(TenantAdmission)
    decisions = [e.decision for e in events]
    assert decisions.count("admitted") == 2
    assert decisions.count("queued") == 1
    waited = [e for e in events if e.decision == "admitted" and e.waited_s > 0]
    assert len(waited) == 1 and waited[0].context == "a2"
    # All slots returned at exit.
    assert h.runtime.admission.admitted_count == 0
