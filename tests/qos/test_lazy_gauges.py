"""Lazy per-tenant gauge computation: ``Tenant.device_bytes`` is derived
from the page table (never incrementally maintained) but memoized on the
table's residency epoch, so monitor sampling and exports stop paying an
O(PTEs) walk per tick when nothing moved."""

from repro.core import Frontend, RuntimeConfig
from repro.sim.profile import SimProfiler
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

from tests.qos.conftest import Harness, MIB


def _tenant_app(h, name, tenant, kernels=4):
    def body():
        fe = Frontend(h.env, h.runtime.listener, name=name, tenant=tenant)
        yield from fe.open()
        kernel = KernelDescriptor(
            name=f"{name}-k", flops=0.2 * TESLA_C2050.effective_gflops * 1e9
        )
        handle = yield from fe.register_fat_binary(FatBinary())
        yield from fe.register_function(handle, kernel)
        ptr = yield from fe.cuda_malloc(32 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 32 * MIB)
        for _ in range(kernels):
            yield from fe.launch_kernel(kernel, [ptr])
            yield h.env.timeout(0.05)
        yield from fe.cuda_memcpy_d2h(ptr, 32 * MIB)
        yield from fe.cuda_free(ptr)
        yield from fe.cuda_thread_exit()

    return body()


def test_device_bytes_memoized_on_page_table_epoch():
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    seen = {}

    def checker():
        # mid-run, while the tenant has live contexts: repeated reads
        # with an unchanged table reuse the memo object
        yield h.env.timeout(1.0)
        tenant = h.runtime.qos.get("acme")
        page_table = h.memory.page_table
        first = tenant.device_bytes(page_table)
        memo = tenant._device_bytes_memo
        assert memo is not None and memo[1] == first
        assert tenant.device_bytes(page_table) == first
        seen["same_memo"] = tenant._device_bytes_memo is memo

    h.spawn(_tenant_app(h, "app0", "acme"))
    h.spawn(checker())
    h.run()
    assert seen["same_memo"]
    # contexts all exited: the derived view reads 0 without a walk
    tenant = h.runtime.qos.get("acme")
    assert tenant.contexts == []
    assert tenant.device_bytes(h.memory.page_table) == 0


def test_gauge_sampling_mostly_hits_the_memo():
    """The satellite's measurable claim: on a qos run with gauges being
    sampled repeatedly, recomputes are a small fraction of calls."""
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    profiler = SimProfiler().attach(h.env)
    h.spawn(_tenant_app(h, "app0", "acme"))
    h.spawn(_tenant_app(h, "app1", "acme"))

    def sampler():
        # a monitor tick: sample the per-tenant memory gauge repeatedly
        for _ in range(200):
            yield h.env.timeout(0.01)
            h.runtime.metrics.snapshot()

    h.spawn(sampler())
    h.run()
    profiler.detach()
    calls = profiler.counters.get("tenant_device_bytes_calls", 0)
    recomputes = profiler.counters.get("tenant_device_bytes_recomputes", 0)
    # gauge sampling only counts while the tenant has live contexts
    assert calls >= 100
    assert 0 < recomputes < calls / 4
    # the report surfaces the counters
    assert profiler.report()["counters"]["tenant_device_bytes_calls"] == calls


def test_swap_bytes_memoized_and_invalidated():
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    seen = {}

    def app():
        fe = Frontend(h.env, h.runtime.listener, name="swapper", tenant="acme")
        yield from fe.open()
        kernel = KernelDescriptor(
            name="s-k", flops=0.1 * TESLA_C2050.effective_gflops * 1e9
        )
        handle = yield from fe.register_fat_binary(FatBinary())
        yield from fe.register_function(handle, kernel)
        tenant = h.runtime.qos.get("acme")
        page_table = h.memory.page_table
        ptr = yield from fe.cuda_malloc(16 * MIB)
        first = tenant.swap_bytes(page_table)
        seen["after_malloc"] = first
        memo = tenant._swap_bytes_memo
        assert memo is not None and memo[1] == first
        assert tenant.swap_bytes(page_table) == first
        seen["same_memo"] = tenant._swap_bytes_memo is memo
        yield from fe.cuda_free(ptr)
        seen["after_free"] = tenant.swap_bytes(page_table)
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert seen["after_malloc"] == 16 * MIB
    assert seen["same_memo"]
    assert seen["after_free"] == 0


def test_rollup_memoized_until_counters_move():
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    seen = {}

    def checker():
        yield h.env.timeout(1.0)
        registry = h.runtime.qos
        page_table = h.memory.page_table
        first = registry.rollup(page_table)
        # quiet node: a second sample with nothing changed reuses the
        # memoized snapshot object
        seen["same_object"] = registry.rollup(page_table) is first
        # perturb a fingerprinted counter: the memo must invalidate
        registry.get("acme").preemptions += 1
        second = registry.rollup(page_table)
        seen["invalidated"] = second is not first
        seen["tracked"] = second["acme"]["preemptions"] == first["acme"]["preemptions"] + 1

    h.spawn(_tenant_app(h, "app0", "acme"))
    h.spawn(checker())
    h.run()
    assert seen["same_object"]
    assert seen["invalidated"]
    assert seen["tracked"]


def test_memo_invalidates_when_the_table_changes():
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    seen = {}

    def app():
        fe = Frontend(h.env, h.runtime.listener, name="grower", tenant="acme")
        yield from fe.open()
        kernel = KernelDescriptor(
            name="g-k", flops=0.1 * TESLA_C2050.effective_gflops * 1e9
        )
        handle = yield from fe.register_fat_binary(FatBinary())
        yield from fe.register_function(handle, kernel)
        tenant = h.runtime.qos.get("acme")
        page_table = h.memory.page_table
        ptr = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.cuda_memcpy_h2d(ptr, 16 * MIB)
        yield from fe.launch_kernel(kernel, [ptr])
        seen["resident"] = tenant.device_bytes(page_table)
        yield from fe.cuda_free(ptr)
        seen["after_free"] = tenant.device_bytes(page_table)
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert seen["resident"] == 16 * MIB
    assert seen["after_free"] == 0
