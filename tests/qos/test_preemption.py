"""Preemptive time-slicing and weighted-fair scheduling (repro.qos)."""

from repro.core import Frontend, RuntimeConfig
from repro.core.context import Context
from repro.core.policies import make_policy
from repro.qos import Tenant
from repro.sim import Environment
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

from tests.qos.conftest import Harness, MIB


class _App:
    """kernels x (launch + cpu gap) on one buffer; records span."""

    def __init__(self, h, name, tenant=None, kernels=4, kernel_s=0.3, cpu_s=0.05):
        self.h = h
        self.name = name
        self.tenant = tenant
        self.kernels = kernels
        self.kernel_s = kernel_s
        self.cpu_s = cpu_s
        self.finished_at = None

    def run(self):
        h = self.h
        fe = Frontend(h.env, h.runtime.listener, name=self.name, tenant=self.tenant)
        yield from fe.open()
        fatbin = FatBinary()
        k = KernelDescriptor(
            name=f"{self.name}-k",
            flops=self.kernel_s * TESLA_C2050.effective_gflops * 1e9,
        )
        handle = yield from fe.register_fat_binary(fatbin)
        yield from fe.register_function(handle, k)
        p = yield from fe.cuda_malloc(16 * MIB)
        yield from fe.cuda_memcpy_h2d(p, 16 * MIB)
        for _ in range(self.kernels):
            yield from fe.launch_kernel(k, [p])
            yield h.env.timeout(self.cpu_s)
        yield from fe.cuda_memcpy_d2h(p, 16 * MIB)
        yield from fe.cuda_thread_exit()
        self.finished_at = h.env.now


def _contended_pair(quantum):
    h = Harness(config=RuntimeConfig(
        vgpus_per_device=1, vgpu_quantum_s=quantum,
    ))
    first = _App(h, "first", kernels=6)
    second = _App(h, "second", kernels=2)

    def staged():
        h.spawn(first.run(), name="first")
        yield h.env.timeout(0.1)
        yield from second.run()

    h.spawn(staged(), name="second")
    h.run()
    return h, first, second


def test_quantum_preempts_at_call_boundaries():
    h, first, second = _contended_pair(quantum=0.3)
    assert first.finished_at is not None and second.finished_at is not None
    assert h.stats.preemptions >= 1
    # The short job slips in mid-run instead of waiting for the long one.
    assert second.finished_at < first.finished_at


def test_no_quantum_means_no_preemption():
    h, first, second = _contended_pair(quantum=None)
    assert h.stats.preemptions == 0
    # Run-to-completion: the late short job waits out the long one.
    assert second.finished_at > first.finished_at


def test_quantum_improves_short_job_turnaround():
    _, _, second_sliced = _contended_pair(quantum=0.3)
    _, _, second_fifo = _contended_pair(quantum=None)
    assert second_sliced.finished_at < second_fifo.finished_at


def test_quantum_not_charged_while_unbound():
    """The quantum resets at each binding, so a context rebinding after
    preemption starts a fresh slice rather than being preempted on its
    first post-rebind launch."""
    h, first, _second = _contended_pair(quantum=0.35)
    # 6 kernels x 0.3s with a 0.35s quantum: every kernel would trip an
    # accumulated-time check; a per-binding quantum preempts at most
    # every other launch (two launches ~ 0.6s > 0.35s per slice).
    assert 1 <= h.stats.preemptions <= 6


def test_no_preemption_without_waiters():
    h = Harness(config=RuntimeConfig(vgpus_per_device=1, vgpu_quantum_s=0.1))
    app = _App(h, "solo", kernels=5)
    h.spawn(app.run())
    h.run()
    assert app.finished_at is not None
    assert h.stats.preemptions == 0


def test_preemption_event_carries_tenant_and_usage():
    h = Harness(config=RuntimeConfig(
        vgpus_per_device=1, vgpu_quantum_s=0.3, qos_enabled=True, tracing=True,
    ))
    tenant = h.runtime.qos.register(Tenant("gold"))
    first = _App(h, "first", tenant="gold", kernels=6)
    second = _App(h, "second", kernels=2)

    def staged():
        h.spawn(first.run(), name="first")
        yield h.env.timeout(0.1)
        yield from second.run()

    h.spawn(staged(), name="second")
    h.run()
    from repro.obs import Preemption

    events = h.runtime.obs.events_of(Preemption)
    assert events, "expected at least one Preemption event"
    mine = [e for e in events if e.context == "first"]
    assert mine and mine[0].tenant == "gold"
    assert mine[0].quantum_s == 0.3
    assert mine[0].used_s >= 0.3
    assert tenant.preemptions == len(mine)


def test_default_config_is_inert():
    """With the stock config the QoS machinery exists but never acts."""
    h = Harness()
    h.spawn(h.simple_app("a"))
    h.spawn(h.simple_app("b"))
    h.run()
    assert h.stats.preemptions == 0
    assert h.stats.admission_rejects == 0
    assert h.stats.admission_queued == 0
    assert h.stats.quota_evictions == 0
    assert len(h.runtime.qos) == 0
    assert h.runtime.admission.admitted_count == 0


# ----------------------------------------------------------------------
# weighted-fair queueing
# ----------------------------------------------------------------------

def test_wfq_policy_orders_by_weight_normalized_gpu_time():
    env = Environment()
    policy = make_policy("wfq")
    gold = Tenant("gold", weight=4.0)
    econ = Tenant("econ", weight=1.0)
    gold.gpu_seconds_used = 4.0   # virtual time 1.0
    econ.gpu_seconds_used = 2.0   # virtual time 2.0
    a = Context(env, owner="a")
    a.tenant = gold
    b = Context(env, owner="b")
    b.tenant = econ
    assert policy.pick_next([b, a]) is a  # lower virtual time wins
    # Tenant-less contexts fall back to their own gpu seconds.
    c = Context(env, owner="c")
    c.gpu_seconds_used = 0.5
    assert policy.pick_next([a, b, c]) is c


def test_wfq_favors_heavier_weight_under_contention():
    """Three single-app tenants on one vGPU: at every grant two waiters
    compete, so the wfq ordering actually chooses — and the weight-4
    tenant wins slices it would have had to rotate for at weight 1."""

    def run(gold_weight):
        h = Harness(config=RuntimeConfig(
            vgpus_per_device=1, vgpu_quantum_s=0.3, qos_enabled=True,
            policy="wfq",
        ))
        h.runtime.qos.register(Tenant("econ-a", weight=1.0))
        h.runtime.qos.register(Tenant("econ-b", weight=1.0))
        h.runtime.qos.register(Tenant("gold", weight=gold_weight))
        apps = [
            _App(h, "econ-a-app", tenant="econ-a", kernels=8),
            _App(h, "econ-b-app", tenant="econ-b", kernels=8),
            _App(h, "gold-app", tenant="gold", kernels=8),
        ]
        for i, app in enumerate(apps):
            def staged(app=app, delay=0.01 * i):
                yield h.env.timeout(delay)
                yield from app.run()
            h.spawn(staged(), name=app.name)
        h.run()
        return {a.name: a.finished_at for a in apps}

    weighted = run(gold_weight=4.0)
    assert all(t is not None for t in weighted.values())
    # The weighted tenant beats both equal-demand weight-1 tenants.
    assert weighted["gold-app"] < weighted["econ-a-app"]
    assert weighted["gold-app"] < weighted["econ-b-app"]
    # And beats its own turnaround under equal weights.
    flat = run(gold_weight=1.0)
    assert weighted["gold-app"] < flat["gold-app"]


def test_wfq_aggregates_usage_across_a_tenants_apps():
    """One tenant's two apps share a single virtual clock, so a second
    tenant with one app is favored over either of them even at equal
    weights — per-tenant fairness, not per-context fairness."""
    h = Harness(config=RuntimeConfig(
        vgpus_per_device=1, vgpu_quantum_s=0.3, qos_enabled=True, policy="wfq",
    ))
    h.runtime.qos.register(Tenant("pair", weight=1.0))
    h.runtime.qos.register(Tenant("solo", weight=1.0))
    apps = [
        _App(h, "pair-1", tenant="pair", kernels=8),
        _App(h, "pair-2", tenant="pair", kernels=8),
        _App(h, "solo-1", tenant="solo", kernels=8),
    ]
    for i, app in enumerate(apps):
        def staged(app=app, delay=0.01 * i):
            yield h.env.timeout(delay)
            yield from app.run()
        h.spawn(staged(), name=app.name)
    h.run()
    assert apps[2].finished_at < apps[0].finished_at
    assert apps[2].finished_at < apps[1].finished_at
