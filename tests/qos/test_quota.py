"""Tenant resource quotas (repro.qos + memory manager enforcement)."""

import pytest

from repro.core import Frontend, RuntimeConfig
from repro.core.errors import RuntimeApiError, RuntimeErrorCode
from repro.qos import Tenant
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

from tests.qos.conftest import Harness, MIB


def _kernel(name, seconds=0.05):
    return KernelDescriptor(
        name=name, flops=seconds * TESLA_C2050.effective_gflops * 1e9
    )


def test_swap_quota_bounds_total_allocations():
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    h.runtime.qos.register(Tenant("t", swap_quota_bytes=100 * MIB))
    outcome = {}

    def app():
        fe = Frontend(h.env, h.runtime.listener, name="a", tenant="t")
        yield from fe.open()
        a = yield from fe.cuda_malloc(64 * MIB)
        try:
            yield from fe.cuda_malloc(64 * MIB)  # 128 > 100: over quota
        except RuntimeApiError as exc:
            outcome["error"] = exc
        # Freeing returns quota headroom.
        yield from fe.cuda_free(a)
        outcome["retry"] = yield from fe.cuda_malloc(64 * MIB)
        yield from fe.cuda_thread_exit()

    h.spawn(app())
    h.run()
    assert outcome["error"].code is RuntimeErrorCode.TENANT_QUOTA_EXCEEDED
    assert outcome["retry"] is not None


def test_swap_quota_inert_when_qos_disabled():
    h = Harness()
    h.runtime.qos.register(Tenant("t", swap_quota_bytes=1 * MIB))
    done = {}

    def app():
        fe = Frontend(h.env, h.runtime.listener, name="a", tenant="t")
        yield from fe.open()
        yield from fe.cuda_malloc(64 * MIB)  # far over the (ignored) quota
        yield from fe.cuda_thread_exit()
        done["ok"] = True

    h.spawn(app())
    h.run()
    assert done.get("ok")


class _QuotaApp:
    """An application that allocates N buffers and launches on each."""

    def __init__(self, h, name, tenant, bufs, buf_mib=64, tail_sleep=0.0):
        self.h = h
        self.name = name
        self.tenant = tenant
        self.bufs = bufs
        self.buf_mib = buf_mib
        self.tail_sleep = tail_sleep
        self.done = False

    def run(self):
        h = self.h
        fe = Frontend(h.env, h.runtime.listener, name=self.name, tenant=self.tenant)
        yield from fe.open()
        fatbin = FatBinary()
        k = _kernel(f"{self.name}-k")
        handle = yield from fe.register_fat_binary(fatbin)
        yield from fe.register_function(handle, k)
        ptrs = []
        for _ in range(self.bufs):
            p = yield from fe.cuda_malloc(self.buf_mib * MIB)
            yield from fe.cuda_memcpy_h2d(p, self.buf_mib * MIB)
            ptrs.append(p)
            yield from fe.launch_kernel(k, [p])
        if self.tail_sleep:
            yield h.env.timeout(self.tail_sleep)
        yield from fe.cuda_thread_exit()
        self.done = True


def test_over_quota_launch_evicts_own_lru_entries():
    """A tenant's working set over its device quota evicts the tenant's
    own least-recently-used entries, not anyone else's (the acceptance
    criterion for quota enforcement)."""
    h = Harness(config=RuntimeConfig(
        qos_enabled=True, vgpus_per_device=2, tracing=True,
    ))
    h.runtime.qos.register(Tenant("capped", device_quota_bytes=128 * MIB))
    h.runtime.qos.register(Tenant("free"))
    # The bystander allocates once and then sits in a CPU phase, staying
    # bound and resident while the capped tenant churns.
    bystander = _QuotaApp(h, "bystander", "free", bufs=1, tail_sleep=20.0)
    capped = _QuotaApp(h, "capped-app", "capped", bufs=3)  # 3 x 64 > 128

    def staged():
        h.spawn(bystander.run(), name="bystander")
        yield h.env.timeout(1.0)  # bystander resident first
        yield from capped.run()

    h.spawn(staged(), name="capped-app")
    h.run()
    assert bystander.done and capped.done
    assert h.stats.quota_evictions >= 1
    assert h.stats.quota_eviction_bytes >= 64 * MIB
    # Only the offending tenant's entries were evicted: every swap-out
    # in the run belongs to the capped tenant's context.
    from repro.obs import SwapOut

    swapped_owners = {e.context for e in h.runtime.obs.events_of(SwapOut)}
    assert "capped-app" in swapped_owners
    assert "bystander" not in swapped_owners


def test_compliant_tenant_is_not_quota_evicted():
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    h.runtime.qos.register(Tenant("roomy", device_quota_bytes=1024 * MIB))
    app = _QuotaApp(h, "a", "roomy", bufs=3)
    h.spawn(app.run())
    h.run()
    assert app.done
    assert h.stats.quota_evictions == 0


def test_quota_soft_when_working_set_alone_exceeds_it():
    """A single launch whose working set exceeds the quota still runs —
    the quota cannot starve the kernel's own arguments."""
    h = Harness(config=RuntimeConfig(qos_enabled=True))
    h.runtime.qos.register(Tenant("tiny", device_quota_bytes=32 * MIB))
    done = {}

    def app():
        fe = Frontend(h.env, h.runtime.listener, name="a", tenant="tiny")
        yield from fe.open()
        fatbin = FatBinary()
        k = _kernel("k")
        handle = yield from fe.register_fat_binary(fatbin)
        yield from fe.register_function(handle, k)
        p = yield from fe.cuda_malloc(64 * MIB)  # working set 64 > quota 32
        yield from fe.cuda_memcpy_h2d(p, 64 * MIB)
        yield from fe.launch_kernel(k, [p])
        yield from fe.cuda_thread_exit()
        done["ok"] = True

    h.spawn(app())
    h.run()
    assert done.get("ok")


def test_quota_aware_eviction_prefers_over_quota_tenants():
    """Unit-level: the quota_aware ordering sorts over-quota tenants'
    entries first, falling back to LRU among equals."""
    from repro.core.memory.eviction import make_eviction_policy
    from repro.core.memory.page_table import PageTableEntry

    policy = make_eviction_policy("quota_aware")
    overages = {"over": 100, "ok": 0}
    policy.overage_fn = lambda ctx: overages[ctx]

    def pte(last_use):
        p = PageTableEntry(0x7000_0000_0000, MIB)
        p.configure_chunks(0)
        p.last_use = last_use
        return p

    old_ok = ("ok", pte(1.0))
    new_over = ("over", pte(9.0))
    old_over = ("over", pte(2.0))
    ordered = policy.order([old_ok, new_over, old_over])
    assert ordered[:2] == [old_over, new_over]  # over-quota first, LRU within
    assert ordered[2] == old_ok

    # With no overage function everyone ties and pure LRU applies.
    policy2 = make_eviction_policy("quota_aware")
    ordered2 = policy2.order([old_ok, new_over, old_over])
    assert ordered2[0] == old_ok
