"""GPU-aware cluster scheduling (paper §2, second interaction form)."""

from repro.cluster import Cluster, Torque, TorqueMode
from repro.core import RuntimeConfig
from repro.core.monitor import node_report
from repro.sim import Environment
from repro.simcuda import TESLA_C1060, TESLA_C2050
from repro.workloads import make_job, workload


def run_mode(mode, n_jobs=16):
    env = Environment()
    cfg = RuntimeConfig(vgpus_per_device=4)
    cluster = Cluster(env)
    cluster.add_node("big", [TESLA_C2050, TESLA_C2050, TESLA_C1060],
                     runtime_config=cfg)
    cluster.add_node("small", [TESLA_C1060], runtime_config=cfg)
    env.process(cluster.start())
    env.run(until=5.0)
    torque = Torque(env, cluster.nodes, mode=mode)
    jobs = [make_job(workload("BS-S"), name=f"j{i}") for i in range(n_jobs)]
    p = env.process(torque.run_batch(jobs))
    env.run(until=p)
    env.run()
    return torque, cluster


def test_gpu_aware_placement_respects_capacity_ratio():
    torque, cluster = run_mode(TorqueMode.GPU_AWARE)
    big, small = cluster.nodes
    # 3:1 GPU ratio → the big node takes ~3/4 of the jobs, not half.
    assert big.runtime.stats.connections_accepted >= 10
    assert small.runtime.stats.connections_accepted <= 6
    assert all(o.ok for o in torque.outcomes)


def test_gpu_aware_beats_oblivious_on_unbalanced_cluster():
    aware, _ = run_mode(TorqueMode.GPU_AWARE)
    oblivious, _ = run_mode(TorqueMode.OBLIVIOUS)
    assert aware.total_execution_time < oblivious.total_execution_time


def test_gpu_aware_all_jobs_complete():
    torque, _ = run_mode(TorqueMode.GPU_AWARE, n_jobs=8)
    assert len(torque.outcomes) == 8
    assert torque.average_turnaround > 0


def test_node_report_exposes_metrics_to_scheduler():
    """The placement feed: node_report carries the registry snapshot."""
    _, cluster = run_mode(TorqueMode.GPU_AWARE, n_jobs=8)
    big = cluster.nodes[0]
    report = node_report(big.runtime)
    metrics = report["metrics"]
    # RuntimeStats counters folded in under the runtime_ prefix...
    assert metrics["runtime_connections_accepted"] == (
        big.runtime.stats.connections_accepted
    )
    assert metrics["runtime_calls_served"] > 0
    # ...histograms as {count, sum, buckets} sub-dicts...
    latency = metrics["call_latency_seconds"]
    assert latency["count"] == metrics["runtime_calls_served"]
    assert latency["sum"] > 0
    # ...and live gauges consistent with the flat report fields.
    assert metrics["vgpus_total"] == report["vgpus_total"]
    assert metrics["load_per_vgpu"] == report["load_per_vgpu"]
