"""The open-loop trace replay harness on a small cluster."""

import pytest

from repro.core.estimator import RuntimeEstimator
from repro.workloads.trace_replay import (
    TraceJob,
    _node_type_plan,
    replay_trace,
    synthetic_trace,
)

MIB = 1024**2


@pytest.fixture(scope="module")
def small_result():
    trace = synthetic_trace(40, seed=11)
    return trace, replay_trace(trace, nodes=4, gpus_per_node=2, policy="fcfs")


class TestReplay:
    def test_all_jobs_complete(self, small_result):
        trace, res = small_result
        assert len(res.records) == len(trace)
        assert res.errors == 0
        assert all(r["ok"] for r in res.records)

    def test_metrics_rollup(self, small_result):
        _, res = small_result
        m = res.metrics()
        assert m["makespan_s"] > 0
        assert 0 < m["p50_jct_s"] <= m["p99_jct_s"]
        assert m["mean_queue_delay_s"] >= 0
        assert 0 < m["jain_fairness"] <= 1.0
        # Every job at least runs for its own GPU demand.
        for r in res.completed:
            assert r["jct"] >= 0.5 * r["duration"]

    def test_users_become_tenants_with_groups(self, small_result):
        trace, res = small_result
        users = {j.user: j.group for j in trace}
        for report in res.node_reports.values():
            tenants = report["tenants"]
            for user, group in users.items():
                assert user in tenants
                assert tenants[user]["group"] == group

    def test_cloud_dashboard_present(self, small_result):
        _, res = small_result
        assert len(res.node_reports) == res.nodes == 4
        for report in res.node_reports.values():
            assert "metrics" in report

    def test_jobs_placed_on_matching_gpu_type(self, small_result):
        trace, res = small_result
        # 4 nodes host all three types; each job with a hosted type must
        # land on a node of that type (node names are stable per plan).
        plan = _node_type_plan(trace, 4)
        node_type = {f"node{i}": t for i, t in enumerate(plan)}
        for r in res.records:
            assert node_type[r["node"]] == r["gpu_type"].upper()


class TestDeterminism:
    def test_identical_seed_identical_metrics(self):
        trace = synthetic_trace(30, seed=5)
        a = replay_trace(trace, nodes=2, policy="sjf_est")
        b = replay_trace(trace, nodes=2, policy="sjf_est")
        assert a.metrics() == b.metrics()
        assert a.records == b.records

    def test_policy_changes_schedule(self):
        trace = synthetic_trace(60, seed=5, arrival_rate_per_s=30.0)
        a = replay_trace(trace, nodes=2, policy="fcfs")
        b = replay_trace(trace, nodes=2, policy="sjf_est")
        assert a.metrics() != b.metrics()


class TestEstimatorWiring:
    def test_shared_estimator_learns(self):
        trace = synthetic_trace(30, seed=2)
        est = RuntimeEstimator()
        replay_trace(trace, nodes=2, policy="sjf_est", estimator=est)
        assert est.observations >= len(trace)
        heavy = max({j.user for j in trace}, key=lambda u: sum(
            1 for j in trace if j.user == u))
        assert est.predict(heavy) is not None


class TestNodeTypePlan:
    def plan_of(self, jobs, nodes):
        return _node_type_plan(jobs, nodes)

    def job(self, gpu_type, duration=1.0):
        return TraceJob(
            job_id=f"j{gpu_type}{duration}", user="u", group="g",
            submit_time=0.0, duration=duration, gpu_type=gpu_type,
            mem_bytes=MIB,
        )

    def test_proportional(self):
        jobs = [self.job("T4", 3.0), self.job("V100", 1.0)]
        plan = self.plan_of(jobs, 4)
        assert plan.count("T4") == 3
        assert plan.count("V100") == 1

    def test_every_type_hosted(self):
        jobs = [self.job("T4", 100.0), self.job("V100", 0.01)]
        assert "V100" in self.plan_of(jobs, 4)

    def test_tiny_cluster_keeps_top_types(self):
        jobs = [
            self.job("T4", 10.0),
            self.job("V100", 5.0),
            self.job("P100", 0.1),
        ]
        plan = self.plan_of(jobs, 2)
        assert len(plan) == 2
        assert "P100" not in plan

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_trace([], nodes=2)
