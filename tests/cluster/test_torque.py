"""Cluster substrate tests: nodes, TORQUE modes, metrics."""

import pytest

from repro.cluster import Cluster, Torque, TorqueMode
from repro.core import RuntimeConfig
from repro.sim import Environment
from repro.simcuda import TESLA_C1060, TESLA_C2050
from repro.workloads import make_job, workload


def build_cluster(env, runtime_config=None):
    cluster = Cluster(env)
    cluster.add_node("nodeA", [TESLA_C2050, TESLA_C2050, TESLA_C1060],
                     runtime_config=runtime_config)
    cluster.add_node("nodeB", [TESLA_C1060], runtime_config=runtime_config)
    return cluster


def test_cluster_topology():
    env = Environment()
    cluster = build_cluster(env)
    assert cluster.total_gpus == 4
    assert [n.name for n in cluster.nodes] == ["nodeA", "nodeB"]


def test_native_mode_serializes_one_job_per_gpu():
    """GPU-aware TORQUE on the bare runtime: never more jobs on a node
    than GPUs."""
    env = Environment()
    cluster = build_cluster(env)
    env.process(cluster.start())
    torque = Torque(env, cluster.nodes, mode=TorqueMode.NATIVE)
    jobs = [make_job(workload("HS"), name=f"hs{i}", use_runtime=False) for i in range(10)]
    p = env.process(torque.run_batch(jobs))
    env.run(until=p)
    assert all(j.outcome.ok for j in jobs)
    # With 4 GPUs and ~3 s jobs, 10 jobs need at least 3 waves.
    assert torque.total_execution_time > 2.5 * 3


def test_oblivious_mode_divides_equally():
    env = Environment()
    cfg = RuntimeConfig(vgpus_per_device=4)
    cluster = build_cluster(env, runtime_config=cfg)
    env.process(cluster.start())
    torque = Torque(env, cluster.nodes, mode=TorqueMode.OBLIVIOUS)
    jobs = [make_job(workload("HS"), name=f"hs{i}") for i in range(8)]
    p = env.process(torque.run_batch(jobs))
    env.run(until=p)
    assert all(j.outcome.ok for j in jobs)
    # Round-robin: each node's runtime saw half the connections.
    a, b = cluster.nodes
    assert a.runtime.stats.connections_accepted == 4
    assert b.runtime.stats.connections_accepted == 4


def test_oblivious_overloads_small_node_without_offloading():
    """The GPU-oblivious split overloads the single-GPU node — the §5.4
    problem that offloading solves."""
    env = Environment()
    cfg = RuntimeConfig(vgpus_per_device=4)
    cluster = build_cluster(env, runtime_config=cfg)
    env.process(cluster.start())
    torque = Torque(env, cluster.nodes, mode=TorqueMode.OBLIVIOUS)
    jobs = [make_job(workload("BS-S"), name=f"j{i}") for i in range(16)]
    p = env.process(torque.run_batch(jobs))
    env.run(until=p)
    a, b = cluster.nodes
    # Node B (1 GPU) finishes its 8 jobs much later than node A finishes
    # its 8 → B's devices were the long pole.
    busy_b = b.driver.devices[0].busy_seconds
    busy_a_max = max(d.busy_seconds for d in a.driver.devices)
    assert busy_b > busy_a_max


def test_metrics_total_and_average():
    env = Environment()
    cfg = RuntimeConfig(vgpus_per_device=4)
    cluster = build_cluster(env, runtime_config=cfg)
    env.process(cluster.start())
    torque = Torque(env, cluster.nodes)
    jobs = [make_job(workload("HS"), name=f"hs{i}") for i in range(4)]
    p = env.process(torque.run_batch(jobs))
    env.run(until=p)
    assert torque.total_execution_time > 0
    assert 0 < torque.average_turnaround <= torque.total_execution_time


def test_torque_requires_nodes():
    env = Environment()
    with pytest.raises(ValueError):
        Torque(env, [])


def test_peer_runtimes_meshes_offloaders():
    env = Environment()
    cfg = RuntimeConfig(vgpus_per_device=4, offload_enabled=True)
    cluster = build_cluster(env, runtime_config=cfg)
    cluster.peer_runtimes()
    a, b = cluster.nodes
    assert len(a.runtime.offloader.peers) == 1
    assert a.runtime.offloader.peers[0].runtime is b.runtime
    assert b.runtime.offloader.peers[0].runtime is a.runtime
