"""VM-based cloud deployment tests (paper Figure 2a)."""

import pytest

from repro.cluster.node import ComputeNode
from repro.cluster.vmcloud import VM_SOCKET_LINK, CloudManager, VMSpec, VirtualMachine
from repro.core import RuntimeConfig
from repro.net.channel import AFUNIX_LINK
from repro.sim import Environment
from repro.simcuda import FatBinary, KernelDescriptor, TESLA_C2050

MIB = 1024**2


def build_cloud(n_nodes=2, cpu_threads=8):
    env = Environment()
    nodes = [
        ComputeNode(
            env,
            f"host{i}",
            [TESLA_C2050],
            cpu_threads=cpu_threads,
            runtime_config=RuntimeConfig(vgpus_per_device=4),
        )
        for i in range(n_nodes)
    ]
    for node in nodes:
        env.process(node.start())
    cloud = CloudManager(env, nodes)
    return env, nodes, cloud


def guest_app(env, vm, name, kernel_seconds=0.5, cpu_seconds=0.2):
    fe = vm.frontend(name, estimated_gpu_seconds=kernel_seconds)
    yield from fe.open()
    kernel = KernelDescriptor(
        name=f"{name}-k",
        flops=kernel_seconds * TESLA_C2050.effective_gflops * 1e9,
    )
    fb = FatBinary()
    handle = yield from fe.register_fat_binary(fb)
    yield from fe.register_function(handle, kernel)
    data = yield from fe.cuda_malloc(32 * MIB)
    yield from fe.cuda_memcpy_h2d(data, 32 * MIB)
    yield from fe.launch_kernel(kernel, [data])
    yield from vm.cpu_phase(cpu_seconds)
    yield from fe.cuda_memcpy_d2h(data, 32 * MIB)
    yield from fe.cuda_free(data)
    yield from fe.cuda_thread_exit()
    return env.now


def test_vm_placement_first_fit():
    env, nodes, cloud = build_cloud(n_nodes=2, cpu_threads=4)

    def scenario():
        vm1 = yield from cloud.launch_vm(VMSpec("vm1", vcpus=3))
        vm2 = yield from cloud.launch_vm(VMSpec("vm2", vcpus=3))
        vm3 = yield from cloud.launch_vm(VMSpec("vm3", vcpus=1))
        return vm1, vm2, vm3

    p = env.process(scenario())
    env.run(until=p)
    vm1, vm2, vm3 = p.value
    assert vm1.node is nodes[0]
    assert vm2.node is nodes[1]  # no room left on host0
    assert vm3.node is nodes[0]  # first-fit back-fills
    assert len(cloud.vms_on(nodes[0])) == 2


def test_vm_placement_exhaustion_raises():
    env, nodes, cloud = build_cloud(n_nodes=1, cpu_threads=2)

    def scenario():
        yield from cloud.launch_vm(VMSpec("big", vcpus=2))
        yield from cloud.launch_vm(VMSpec("too-much", vcpus=1))

    p = env.process(scenario())
    with pytest.raises(RuntimeError, match="no capacity"):
        env.run(until=p)


def test_guest_application_reaches_host_gpu():
    env, nodes, cloud = build_cloud()
    results = {}

    def scenario():
        vm = yield from cloud.launch_vm(VMSpec("guest", vcpus=2))
        results["t"] = yield from guest_app(env, vm, "app0")

    env.process(scenario())
    env.run()
    assert "t" in results
    assert nodes[0].driver.devices[0].kernels_executed == 1
    assert nodes[0].runtime.stats.connections_accepted == 1


def test_vm_socket_costs_more_than_afunix():
    big = 32 * MIB
    assert VM_SOCKET_LINK.transmit_seconds(big) > AFUNIX_LINK.transmit_seconds(big)
    assert VM_SOCKET_LINK.per_message_overhead_s > AFUNIX_LINK.per_message_overhead_s


def test_two_vms_share_one_gpu():
    env, nodes, cloud = build_cloud(n_nodes=1)
    results = {}

    def scenario():
        vm1 = yield from cloud.launch_vm(VMSpec("vm1", vcpus=2))
        vm2 = yield from cloud.launch_vm(VMSpec("vm2", vcpus=2))

        def tenant(vm, name):
            results[name] = yield from guest_app(env, vm, name)

        env.process(tenant(vm1, "a"))
        env.process(tenant(vm2, "b"))

    env.process(scenario())
    env.run()
    assert set(results) == {"a", "b"}
    assert nodes[0].driver.devices[0].kernels_executed == 2


def test_vcpu_contention_inside_vm():
    """Two guest threads on a 1-vCPU VM serialize their CPU phases."""
    env, nodes, cloud = build_cloud(n_nodes=1)
    done = []

    def scenario():
        vm = yield from cloud.launch_vm(VMSpec("tiny", vcpus=1))

        def burner(i):
            yield from vm.cpu_phase(1.0)
            done.append(env.now)

        t0 = env.now
        env.process(burner(0))
        env.process(burner(1))
        yield env.timeout(0)
        return t0

    p = env.process(scenario())
    env.run()
    t0 = p.value
    assert max(done) - t0 >= 2.0  # serialized on the single vCPU


def test_terminate_vm_frees_capacity():
    env, nodes, cloud = build_cloud(n_nodes=1, cpu_threads=2)

    def scenario():
        vm = yield from cloud.launch_vm(VMSpec("v", vcpus=2))
        cloud.terminate_vm(vm)
        vm2 = yield from cloud.launch_vm(VMSpec("v2", vcpus=2))
        return vm, vm2

    p = env.process(scenario())
    env.run(until=p)
    vm, vm2 = p.value
    assert not vm.running
    assert vm2.running


def test_stopped_vm_rejects_use():
    env, nodes, cloud = build_cloud(n_nodes=1)

    def scenario():
        vm = yield from cloud.launch_vm(VMSpec("v", vcpus=1))
        cloud.terminate_vm(vm)
        with pytest.raises(RuntimeError):
            vm.frontend("x")
        return True

    p = env.process(scenario())
    env.run(until=p)
    assert p.value


def test_cloud_node_reports():
    """The cloud manager's monitoring view: per-node runtime report plus
    VM occupancy, sharing node_report's schema."""
    env, nodes, cloud = build_cloud(n_nodes=2, cpu_threads=4)
    results = {}

    def scenario():
        vm1 = yield from cloud.launch_vm(VMSpec("vm1", vcpus=3))
        yield from cloud.launch_vm(VMSpec("vm2", vcpus=3))
        results["t"] = yield from guest_app(env, vm1, "app0")

    env.process(scenario())
    env.run()
    reports = cloud.node_reports()
    assert set(reports) == {"host0", "host1"}
    host0 = reports["host0"]
    assert host0["vms"] == 1
    assert host0["vcpus_committed"] == 3
    assert host0["gpus"] == 1
    # The metrics sub-dict reflects the guest app's runtime activity.
    assert host0["metrics"]["runtime_connections_accepted"] == 1
    assert host0["metrics"]["runtime_calls_served"] > 0
    assert reports["host1"]["metrics"]["runtime_connections_accepted"] == 0


def test_vmspec_validation():
    with pytest.raises(ValueError):
        VMSpec("bad", vcpus=0)
    env = Environment()
    with pytest.raises(ValueError):
        CloudManager(env, [])
