"""Flash-crowd stress: a trace burst against a small over-committed
cluster with every contention mechanism armed at once.

The regression this guards: admission queueing + preemptive
time-slicing + chunked/partial eviction interact through the same wait
queues, and a burst of hundreds of jobs arriving in seconds must drain
— every job reaches a terminal outcome (completed or a recorded error,
never a hang), the simulation terminates, and per-tenant quota
accounting stays consistent."""

import pytest

from repro.core.config import RuntimeConfig
from repro.workloads.trace_replay import (
    TraceJob,
    replay_trace,
    synthetic_trace,
)

MIB = 1024**2
GIB = 1024**3


def flash_crowd(num_jobs=120, seed=13):
    """A burst: everything arrives within ~2 simulated seconds."""
    jobs = synthetic_trace(
        num_jobs,
        seed=seed,
        arrival_rate_per_s=60.0,
        mean_duration_s=0.5,
        users=10,
        groups=3,
    )
    return [
        TraceJob(
            job_id=j.job_id,
            user=j.user,
            group=j.group,
            submit_time=min(j.submit_time, 2.0),
            duration=j.duration,
            num_gpus=j.num_gpus,
            gpu_type=j.gpu_type,
            mem_bytes=j.mem_bytes,
        )
        for j in jobs
    ]


STRESS_CONFIG = RuntimeConfig(
    qos_enabled=True,
    admission_mode="queue",
    vgpu_quantum_s=0.2,
    swap_chunk_bytes=32 * MIB,
    eviction_mode="partial",
    host_swap_capacity_bytes=128 * GIB,
)


@pytest.fixture(scope="module")
def stress_result():
    trace = flash_crowd()
    return trace, replay_trace(
        trace, nodes=2, gpus_per_node=2, policy="fairshare",
        config=STRESS_CONFIG,
    )


class TestFlashCrowd:
    def test_simulation_drains(self, stress_result):
        trace, res = stress_result
        # env.run() returned and every job produced a record: no
        # deadlock, no lost wake-up, no stuck admission queue.
        assert len(res.records) == len(trace)

    def test_all_outcomes_terminal(self, stress_result):
        _, res = stress_result
        for r in res.records:
            assert r["finished"] >= r["submitted"]
        # Errors (quota/admission) are allowed, silent loss is not.
        assert len(res.completed) + res.errors >= len(res.records)

    def test_burst_actually_queued(self, stress_result):
        _, res = stress_result
        # A 120-job burst on 4 GPUs must serialize: someone waited.
        assert res.mean_queue_delay > 0
        assert res.makespan > 2.0

    def test_preemption_and_swap_exercised(self, stress_result):
        _, res = stress_result
        assert res.stats.get("preemptions", 0) > 0

    def test_quota_accounting_consistent(self, stress_result):
        trace, res = stress_result
        for report in res.node_reports.values():
            for name, t in report["tenants"].items():
                assert t["gpu_seconds"] >= 0
                # Burst drained: nothing still attached or resident.
                assert t["contexts"] == 0
                assert t["device_bytes"] == 0
        # GPU time was attributed to the users who submitted.
        total = sum(
            t["gpu_seconds"]
            for report in res.node_reports.values()
            for t in report["tenants"].values()
        )
        assert total > 0

    def test_deterministic_under_stress(self):
        trace = flash_crowd(num_jobs=60)
        a = replay_trace(trace, nodes=2, policy="fairshare",
                         config=STRESS_CONFIG)
        b = replay_trace(trace, nodes=2, policy="fairshare",
                         config=STRESS_CONFIG)
        assert a.metrics() == b.metrics()


class TestStressAcrossPolicies:
    @pytest.mark.parametrize("policy", ["fcfs", "sjf_est", "hrrn", "wfq"])
    def test_burst_drains_under_policy(self, policy):
        trace = flash_crowd(num_jobs=40)
        res = replay_trace(trace, nodes=2, policy=policy,
                           config=STRESS_CONFIG)
        assert len(res.records) == len(trace)
        assert len(res.completed) >= len(trace) * 0.9
