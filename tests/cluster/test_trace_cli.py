"""`repro run trace` CLI mode."""

import json

from repro.cli import main


class TestRunTrace:
    def test_synthetic_replay(self, capsys, tmp_path):
        bench = tmp_path / "bench.json"
        rc = main([
            "run", "trace", "--synthetic", "20", "--nodes", "2",
            "--policy", "sjf_est", "--seed", "3",
            "--bench-out", str(bench),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "policy: sjf_est" in out
        assert "mean_jct_s" in out
        payload = json.loads(bench.read_text())
        assert payload["policy"] == "sjf_est"
        assert payload["metrics"]["jobs"] == 20

    def test_trace_file_replay(self, capsys, tmp_path):
        from repro.workloads.trace_replay import save_trace, synthetic_trace

        path = tmp_path / "trace.csv"
        save_trace(synthetic_trace(10, seed=1), str(path))
        rc = main([
            "run", "trace", "--trace", str(path), "--nodes", "2",
            "--policy", "fairshare",
        ])
        assert rc == 0
        assert "jobs: 10" in capsys.readouterr().out

    def test_needs_source(self, capsys):
        assert main(["run", "trace"]) == 2
        assert "exactly one of" in capsys.readouterr().err

    def test_batch_mode_still_needs_jobs(self, capsys):
        assert main(["run"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_new_device_presets_listed(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        for preset in ("t4", "p100", "v100"):
            assert preset in out
