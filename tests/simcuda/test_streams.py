"""Tests for CUDA streams (in-order async queues)."""

import pytest

from repro.sim import Environment
from repro.simcuda import CudaDriver, KernelDescriptor, KernelLaunch, TESLA_C2050
from repro.simcuda.streams import Stream
from repro.simcuda import timing

MIB = 1024**2


def setup():
    env = Environment()
    driver = CudaDriver(env, [TESLA_C2050])
    return env, driver


def test_stream_executes_in_order_and_synchronize_blocks():
    env, driver = setup()
    dev = driver.devices[0]
    k = KernelDescriptor(name="k", flops=TESLA_C2050.effective_gflops * 1e8)  # 0.1 s

    def app():
        ctx = yield from driver.create_context(dev)
        a = yield from driver.malloc(ctx, 100 * MIB)
        s = Stream(driver, ctx)
        s.memcpy_h2d_async(a, 100 * MIB)
        s.launch_async(KernelLaunch.simple(k, [a]))
        s.memcpy_d2h_async(a, 100 * MIB)
        t0 = env.now
        yield from s.synchronize()
        return env.now - t0

    p = env.process(app())
    env.run(until=p)
    expected = 2 * timing.copy_seconds(TESLA_C2050, 100 * MIB) + timing.kernel_seconds(
        TESLA_C2050, k
    )
    assert p.value == pytest.approx(expected, rel=0.01)
    assert dev.kernels_executed == 1


def test_two_streams_overlap_copy_and_compute():
    env, driver = setup()
    dev = driver.devices[0]
    k = KernelDescriptor(name="k", flops=TESLA_C2050.effective_gflops * 1e9)  # 1 s

    def app():
        ctx = yield from driver.create_context(dev)
        a = yield from driver.malloc(ctx, MIB)
        b = yield from driver.malloc(ctx, 500 * MIB)
        s1 = Stream(driver, ctx)
        s2 = Stream(driver, ctx)
        t0 = env.now
        s1.launch_async(KernelLaunch.simple(k, [a]))
        s2.memcpy_h2d_async(b, 500 * MIB)
        yield from s1.synchronize()
        yield from s2.synchronize()
        return env.now - t0

    p = env.process(app())
    env.run(until=p)
    # Total should be ~max(kernel, copy) = ~1 s, not the ~1.1 s sum.
    assert p.value == pytest.approx(timing.kernel_seconds(TESLA_C2050, k), rel=0.02)


def test_synchronize_on_empty_stream_returns_immediately():
    env, driver = setup()

    def app():
        ctx = yield from driver.create_context(driver.devices[0])
        s = Stream(driver, ctx)
        t0 = env.now
        yield from s.synchronize()
        return env.now - t0

    p = env.process(app())
    env.run(until=p)
    assert p.value == 0


def test_per_op_completion_events_fire_in_fifo_order():
    env, driver = setup()

    def app():
        ctx = yield from driver.create_context(driver.devices[0])
        a = yield from driver.malloc(ctx, 10 * MIB)
        s = Stream(driver, ctx)
        e1 = s.memcpy_h2d_async(a, 10 * MIB)
        e2 = s.memcpy_d2h_async(a, 10 * MIB)
        yield e2
        # In-order queue: by the time op 2 completes, op 1 has too.
        assert e1.triggered and e1.ok
        yield e1  # waiting on an already-processed event is legal
        return True

    p = env.process(app())
    env.run(until=p)
    assert p.value is True


def test_failed_op_fails_its_event_and_poisons_the_stream():
    from repro.simcuda.errors import CudaRuntimeError

    env, driver = setup()
    dev = driver.devices[0]

    def app():
        ctx = yield from driver.create_context(dev)
        a = yield from driver.malloc(ctx, 10 * MIB)
        s = Stream(driver, ctx)
        dev.fail()
        ev = s.memcpy_h2d_async(a, 10 * MIB)
        try:
            yield ev
        except CudaRuntimeError:
            pass
        else:
            raise AssertionError("waiting on a failed op must raise")
        # Poisoned: a later enqueue fails immediately, without the device.
        ev2 = s.memcpy_d2h_async(a, 10 * MIB)
        assert ev2.triggered and not ev2.ok
        try:
            yield from s.synchronize()
        except CudaRuntimeError:
            return True
        raise AssertionError("synchronize must re-raise the sticky error")

    p = env.process(app())
    env.run(until=p)
    assert p.value is True


def test_unobserved_failure_surfaces_at_synchronize_not_as_a_crash():
    from repro.simcuda.errors import CudaRuntimeError

    env, driver = setup()
    dev = driver.devices[0]

    def app():
        ctx = yield from driver.create_context(dev)
        a = yield from driver.malloc(ctx, 10 * MIB)
        s = Stream(driver, ctx)
        dev.fail()
        s.memcpy_h2d_async(a, 10 * MIB)  # fire-and-forget; never awaited
        yield env.timeout(1.0)  # failure lands unobserved: must not crash
        try:
            yield from s.synchronize()
        except CudaRuntimeError:
            return True
        raise AssertionError("sticky error must surface at synchronize")

    p = env.process(app())
    env.run(until=p)
    assert p.value is True
