"""Unit + property tests for the fragmentation-aware device allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcuda.allocator import DeviceAllocator, OutOfMemory

KIB = 1024
MIB = 1024**2


def test_allocate_returns_distinct_addresses():
    a = DeviceAllocator(1 * MIB)
    p1 = a.allocate(1000)
    p2 = a.allocate(1000)
    assert p1 != p2
    assert a.allocation_count == 2


def test_alignment():
    a = DeviceAllocator(1 * MIB)
    p = a.allocate(1)
    assert p % DeviceAllocator.ALIGNMENT == 0
    assert a.size_of(p) == DeviceAllocator.ALIGNMENT


def test_free_returns_bytes_and_coalesces():
    a = DeviceAllocator(1 * MIB)
    p1 = a.allocate(100 * KIB)
    p2 = a.allocate(100 * KIB)
    p3 = a.allocate(100 * KIB)
    a.free(p1)
    a.free(p3)
    a.free(p2)  # middle free must coalesce everything back
    assert a.free_bytes == 1 * MIB
    assert a.largest_free_block == 1 * MIB


def test_oom_on_capacity():
    a = DeviceAllocator(100 * KIB)
    a.allocate(90 * KIB)
    with pytest.raises(OutOfMemory):
        a.allocate(20 * KIB)


def test_fragmentation_blocks_large_alloc_despite_free_bytes():
    """Free bytes may be sufficient while no single block is — the reason
    the paper's runtime must also consult cudaMalloc's return code."""
    a = DeviceAllocator(1 * MIB)
    blocks = [a.allocate(128 * KIB) for _ in range(8)]
    assert a.free_bytes == 0
    # Free alternating blocks -> 512 KiB free but fragmented in 128 KiB holes
    for p in blocks[::2]:
        a.free(p)
    assert a.free_bytes == 512 * KIB
    assert a.largest_free_block == 128 * KIB
    assert not a.can_allocate(256 * KIB)
    with pytest.raises(OutOfMemory):
        a.allocate(256 * KIB)
    assert a.fragmentation() > 0.5


def test_double_free_raises():
    a = DeviceAllocator(1 * MIB)
    p = a.allocate(1000)
    a.free(p)
    with pytest.raises(KeyError):
        a.free(p)


def test_free_unknown_address_raises():
    a = DeviceAllocator(1 * MIB)
    with pytest.raises(KeyError):
        a.free(0xDEAD)


def test_zero_and_negative_sizes_rejected():
    a = DeviceAllocator(1 * MIB)
    with pytest.raises(ValueError):
        a.allocate(0)
    with pytest.raises(ValueError):
        a.allocate(-5)
    assert not a.can_allocate(0)


def test_reset_restores_full_capacity():
    a = DeviceAllocator(1 * MIB)
    for _ in range(5):
        a.allocate(10 * KIB)
    a.reset()
    assert a.free_bytes == 1 * MIB
    assert a.allocation_count == 0


def test_owns():
    a = DeviceAllocator(1 * MIB)
    p = a.allocate(100)
    assert a.owns(p)
    assert not a.owns(p + 1)
    a.free(p)
    assert not a.owns(p)


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        DeviceAllocator(0)


def test_base_address_nonzero():
    a = DeviceAllocator(1 * MIB)
    assert a.allocate(100) >= DeviceAllocator.BASE_ADDRESS


# ---------------------------------------------------------------------------
# property-based: the allocator never loses or invents memory, never
# overlaps live allocations, and always coalesces adjacent free blocks.
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 64 * KIB)),
        min_size=1,
        max_size=60,
    )
)
def test_allocator_invariants(ops):
    a = DeviceAllocator(512 * KIB)
    live = []
    for kind, size in ops:
        if kind == "alloc":
            try:
                p = a.allocate(size)
            except OutOfMemory:
                # OOM must only happen when no block fits.
                assert a.largest_free_block < a._round_up(size)
                continue
            live.append(p)
        elif live:
            idx = size % len(live)
            a.free(live.pop(idx))

        # Invariant 1: conservation of bytes.
        assert a.used_bytes + a.free_bytes == a.capacity
        # Invariant 2: live allocations do not overlap.
        spans = sorted((addr, addr + a.size_of(addr)) for addr in live)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        # Invariant 3: free list is sorted, non-overlapping, coalesced.
        free = a._free
        for (a1, n1), (a2, _n2) in zip(free, free[1:]):
            assert a1 + n1 < a2  # strictly apart (equal would mean uncoalesced)


@settings(max_examples=100, deadline=None)
@given(sizes=st.lists(st.integers(1, 32 * KIB), min_size=1, max_size=40))
def test_alloc_all_then_free_all_restores_capacity(sizes):
    a = DeviceAllocator(4 * MIB)
    ptrs = []
    for s in sizes:
        ptrs.append(a.allocate(s))
    for p in reversed(ptrs):
        a.free(p)
    assert a.free_bytes == a.capacity
    assert a.largest_free_block == a.capacity
